#include "common/crc32.h"

#include <array>
#include <cstring>

namespace dexa {

namespace {

/// Slice-by-8 lookup tables: table[0] is the classic byte-at-a-time
/// CRC-32 (IEEE, reflected 0xEDB88320) table; table[k] advances a byte
/// through k additional zero bytes. Eight bytes per iteration breaks the
/// one-byte serial dependency chain, which matters because every KB-image
/// load and journal recovery CRCs its whole payload.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = (crc >> 8) ^ tables[0][crc & 0xFFu];
      tables[k][i] = crc;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view bytes) {
  const auto& t = Tables();
  crc = ~crc;
  const char* p = bytes.data();
  size_t n = bytes.size();
  while (n >= 8) {
    // Little-endian load of the next 8 bytes; memcpy keeps it alignment-
    // and aliasing-safe (compiles to one mov on x86-64).
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<uint8_t>(*p)) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32(std::string_view bytes) { return Crc32Update(0, bytes); }

}  // namespace dexa
