#ifndef DEXA_COMMON_THREAD_ANNOTATIONS_H_
#define DEXA_COMMON_THREAD_ANNOTATIONS_H_

// Lock-discipline annotations for clang's -Wthread-safety analysis.
//
// Under clang with -DDEXA_THREAD_SAFETY=ON (CMake option, adds
// -Wthread-safety and defines DEXA_THREAD_SAFETY_ANALYSIS) these expand to
// the thread-safety attributes and the compiler proves every annotated
// field is only touched with its mutex held. Everywhere else they expand
// to nothing and serve as checked documentation: dexa-lint's
// `guarded-field` rule requires every mutable field of a mutex-owning
// class in src/engine + src/serve to carry DEXA_GUARDED_BY or an
// allow-listed contract comment, on any compiler.
//
//   std::mutex mu_;
//   std::deque<Item> queue_ DEXA_GUARDED_BY(mu_);
//   Item& Slot(Key k) DEXA_REQUIRES(mu_);   // caller must hold mu_

#if defined(DEXA_THREAD_SAFETY_ANALYSIS) && defined(__clang__)
#define DEXA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DEXA_THREAD_ANNOTATION(x)
#endif

/// Field is protected by the given mutex: every read/write must hold it.
#define DEXA_GUARDED_BY(x) DEXA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define DEXA_PT_GUARDED_BY(x) DEXA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called with the given mutex(es) held exclusively.
#define DEXA_REQUIRES(...) \
  DEXA_THREAD_ANNOTATION(exclusive_locks_required(__VA_ARGS__))

/// Function may only be called with the given mutex(es) held shared.
#define DEXA_REQUIRES_SHARED(...) \
  DEXA_THREAD_ANNOTATION(shared_locks_required(__VA_ARGS__))

/// Function body must not be entered with the given mutex(es) held.
#define DEXA_EXCLUDES(...) DEXA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#endif  // DEXA_COMMON_THREAD_ANNOTATIONS_H_
