#ifndef DEXA_COMMON_RESULT_H_
#define DEXA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dexa {

/// A value-or-error holder in the style of arrow::Result / absl::StatusOr.
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds.
///
/// Like Status, the type is [[nodiscard]]: dropping a Result drops its
/// error. Discarding intentionally requires a `(void)` cast with a reason.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an OK result holding `value`. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an errored result from a non-OK status. Intentionally
  /// implicit so functions can `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define DEXA_ASSIGN_OR_RETURN(lhs, expr)             \
  auto DEXA_CONCAT_(_dexa_res_, __LINE__) = (expr);  \
  if (!DEXA_CONCAT_(_dexa_res_, __LINE__).ok())      \
    return DEXA_CONCAT_(_dexa_res_, __LINE__).status(); \
  lhs = std::move(DEXA_CONCAT_(_dexa_res_, __LINE__)).value()

#define DEXA_CONCAT_INNER_(a, b) a##b
#define DEXA_CONCAT_(a, b) DEXA_CONCAT_INNER_(a, b)

}  // namespace dexa

#endif  // DEXA_COMMON_RESULT_H_
