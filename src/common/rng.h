#ifndef DEXA_COMMON_RNG_H_
#define DEXA_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dexa {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in dexa takes an explicit `Rng`
/// or seed so the whole evaluation is reproducible bit-for-bit; there is no
/// global RNG state anywhere in the library.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p = 0.5);

  /// Uniformly selects an index into a container of `size` elements.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  /// Random string of length `len` drawn from `alphabet`.
  std::string NextString(size_t len, const std::string& alphabet);

  /// Derives a child generator; children with distinct tags are independent
  /// streams, so components can be re-seeded stably regardless of call order.
  Rng Fork(uint64_t tag) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// splitmix64 step; exposed for stable hashing/derivation uses.
uint64_t SplitMix64(uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a). Used where deterministic,
/// platform-independent hashing is required (std::hash is not stable).
uint64_t StableHash64(const std::string& s);

/// Combines two stable hashes.
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace dexa

#endif  // DEXA_COMMON_RNG_H_
