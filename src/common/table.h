#ifndef DEXA_COMMON_TABLE_H_
#define DEXA_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dexa {

/// Fixed-width ASCII table printer used by the benchmark harnesses to print
/// the reproduced paper tables/figures in a uniform layout.
///
/// Usage:
///   TablePrinter t({"# of modules", "% of modules", "Completeness"});
///   t.AddRow({"236", "93.65", "1"});
///   t.Print(std::cout, "Table 1: Data examples completeness.");
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (with a rule under the header) preceded by `title`.
  void Print(std::ostream& os, const std::string& title = "") const;

  /// Renders to a string (used in tests).
  std::string ToString(const std::string& title = "") const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places ("0.47", "93.65").
std::string FormatFixed(double v, int digits);

/// Renders `count` as a horizontal bar of '#' characters scaled so that
/// `max_count` maps to `max_width` characters. Used for figure-style output.
std::string Bar(size_t count, size_t max_count, size_t max_width = 40);

}  // namespace dexa

#endif  // DEXA_COMMON_TABLE_H_
