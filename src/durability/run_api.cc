#include "core/run_api.h"

#include <utility>

#include "corpus/fault_injector.h"
#include "durability/journal.h"
#include "durability/run_api_internal.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace dexa {

namespace {

/// Checks the fields `kind` requires. Pointer presence only — the run
/// implementations validate semantics (arity, fingerprints, ...).
Status ValidateRequest(const RunRequest& request) {
  auto require = [&](const void* field, const char* name) -> Status {
    if (field != nullptr) return Status::OK();
    return Status::InvalidArgument(std::string(RunKindName(request.kind)) +
                                   " run requires " + name);
  };
  switch (request.kind) {
    case RunKind::kAnnotate:
      DEXA_RETURN_IF_ERROR(require(request.generator, "generator"));
      DEXA_RETURN_IF_ERROR(require(request.registry, "registry"));
      return Status::OK();
    case RunKind::kAnnotateDurable:
      DEXA_RETURN_IF_ERROR(require(request.generator, "generator"));
      DEXA_RETURN_IF_ERROR(require(request.registry, "registry"));
      DEXA_RETURN_IF_ERROR(require(request.ontology, "ontology"));
      DEXA_RETURN_IF_ERROR(require(request.journal, "journal"));
      return Status::OK();
    case RunKind::kEnact:
      DEXA_RETURN_IF_ERROR(require(request.workflow, "workflow"));
      DEXA_RETURN_IF_ERROR(require(request.registry, "registry"));
      DEXA_RETURN_IF_ERROR(require(request.engine, "engine"));
      return Status::OK();
    case RunKind::kEnactDurable:
      DEXA_RETURN_IF_ERROR(require(request.workflow, "workflow"));
      DEXA_RETURN_IF_ERROR(require(request.registry, "registry"));
      DEXA_RETURN_IF_ERROR(require(request.engine, "engine"));
      DEXA_RETURN_IF_ERROR(require(request.journal, "journal"));
      return Status::OK();
  }
  return Status::InvalidArgument("unknown run kind");
}

/// Exports the finished run into `obs.metrics` when the caller attached a
/// registry: the engine snapshot, and the trace when one was recorded.
void ExportObservability(const obs::RunObservability& obs,
                         const EngineMetricsSnapshot& snapshot) {
  if (obs.metrics == nullptr) return;
  obs.metrics->ImportEngineSnapshot(snapshot);
  if (obs.tracer != nullptr) obs.metrics->ImportTrace(*obs.tracer);
}

}  // namespace

const char* RunKindName(RunKind kind) {
  switch (kind) {
    case RunKind::kAnnotate:
      return "annotate";
    case RunKind::kAnnotateDurable:
      return "annotate_durable";
    case RunKind::kEnact:
      return "enact";
    case RunKind::kEnactDurable:
      return "enact_durable";
  }
  return "unknown";
}

Result<RunResult> SubmitRun(const RunRequest& request) {
  DEXA_RETURN_IF_ERROR(ValidateRequest(request));

  RunResult result;
  result.kind = request.kind;

  switch (request.kind) {
    case RunKind::kAnnotate: {
      auto report = AnnotateRegistry(*request.generator, *request.registry,
                                     request.obs.tracer);
      if (!report.ok()) return report.status();
      result.annotate = std::move(report).value();
      result.run_status = result.annotate.run_status;
      ExportObservability(request.obs, result.annotate.metrics);
      return result;
    }
    case RunKind::kAnnotateDurable: {
      DurableAnnotateOptions options;
      options.resume = request.resume;
      if (request.crash != nullptr) options.crash = *request.crash;
      options.kb_checksum = request.kb_checksum;
      options.obs = request.obs;
      auto report = internal::AnnotateDurableImpl(
          *request.generator, *request.registry, *request.ontology,
          *request.journal, options);
      if (!report.ok()) return report.status();
      result.annotate = std::move(report).value();
      result.run_status = result.annotate.run_status;
      ExportObservability(request.obs, result.annotate.metrics);
      return result;
    }
    case RunKind::kEnact: {
      EnactHooks hooks;
      hooks.obs = request.obs;
      auto enacted = EnactResilient(*request.workflow, *request.registry,
                                    request.inputs, *request.engine, hooks);
      if (!enacted.ok()) return enacted.status();
      result.enact = std::move(enacted).value();
      ExportObservability(request.obs, request.engine->metrics().Snapshot());
      return result;
    }
    case RunKind::kEnactDurable: {
      DurableEnactOptions options;
      options.resume = request.resume;
      if (request.crash != nullptr) options.crash = *request.crash;
      options.obs = request.obs;
      auto enacted = internal::EnactDurableImpl(
          *request.workflow, *request.registry, request.inputs,
          *request.engine, *request.journal, options);
      if (!enacted.ok()) return enacted.status();
      result.enact = std::move(enacted).value();
      ExportObservability(request.obs, request.engine->metrics().Snapshot());
      return result;
    }
  }
  return Status::InvalidArgument("unknown run kind");
}

RunRequest MakeAnnotateRun(const ExampleGenerator& generator,
                           ModuleRegistry& registry) {
  RunRequest request;
  request.kind = RunKind::kAnnotate;
  request.generator = &generator;
  request.registry = &registry;
  return request;
}

RunRequest MakeDurableAnnotateRun(const ExampleGenerator& generator,
                                  ModuleRegistry& registry,
                                  const Ontology& ontology,
                                  RunJournal& journal) {
  RunRequest request;
  request.kind = RunKind::kAnnotateDurable;
  request.generator = &generator;
  request.registry = &registry;
  request.ontology = &ontology;
  request.journal = &journal;
  return request;
}

RunRequest MakeEnactRun(const Workflow& workflow, ModuleRegistry& registry,
                        std::vector<Value> inputs, InvocationEngine& engine) {
  RunRequest request;
  request.kind = RunKind::kEnact;
  request.workflow = &workflow;
  request.registry = &registry;
  request.inputs = std::move(inputs);
  request.engine = &engine;
  return request;
}

RunRequest MakeDurableEnactRun(const Workflow& workflow,
                               ModuleRegistry& registry,
                               std::vector<Value> inputs,
                               InvocationEngine& engine, RunJournal& journal) {
  RunRequest request = MakeEnactRun(workflow, registry, std::move(inputs),
                                    engine);
  request.kind = RunKind::kEnactDurable;
  request.journal = &journal;
  return request;
}

// -- Legacy shims ----------------------------------------------------------
// The deprecated signatures delegate through the facade, so there is
// exactly one implementation path for every run family.

Result<AnnotateReport> AnnotateRegistryDurable(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal,
    const DurableAnnotateOptions& options) {
  RunRequest request =
      MakeDurableAnnotateRun(generator, registry, ontology, journal);
  request.resume = options.resume;
  request.crash = &options.crash;
  request.kb_checksum = options.kb_checksum;
  request.obs = options.obs;
  auto result = SubmitRun(request);
  if (!result.ok()) return result.status();
  return std::move(result->annotate);
}

Result<ResilientEnactmentResult> EnactResilientDurable(
    const Workflow& workflow, const ModuleRegistry& registry,
    const std::vector<Value>& inputs, InvocationEngine& engine,
    RunJournal& journal, const DurableEnactOptions& options) {
  RunRequest request;
  request.kind = RunKind::kEnactDurable;
  request.workflow = &workflow;
  // The enact path only reads the registry; the const_cast keeps the legacy
  // const-ref signature intact over the shared RunRequest field.
  request.registry = const_cast<ModuleRegistry*>(&registry);
  request.inputs = inputs;
  request.engine = &engine;
  request.journal = &journal;
  request.resume = options.resume;
  request.crash = &options.crash;
  request.obs = options.obs;
  auto result = SubmitRun(request);
  if (!result.ok()) return result.status();
  return std::move(result->enact);
}

}  // namespace dexa
