#ifndef DEXA_DURABILITY_SNAPSHOT_H_
#define DEXA_DURABILITY_SNAPSHOT_H_

#include <string>

#include "common/io_env.h"
#include "common/result.h"
#include "modules/registry.h"
#include "ontology/ontology.h"
#include "pool/instance_pool.h"
#include "provenance/trace.h"

namespace dexa {

/// Writes `content` to `path` atomically: the bytes land in a temporary
/// sibling file (`<path>.tmp`) which is flushed and then renamed over the
/// target. A crash mid-write leaves either the old file or the new one —
/// never a truncated hybrid — because rename(2) within one directory is
/// atomic on POSIX filesystems. Bytes travel through `io` (nullptr = the
/// real filesystem), so injected disk faults surface as the seam's typed
/// kResourceExhausted/kCorrupted codes with no torn target file.
[[nodiscard]] Status AtomicWriteFile(const std::string& path,
                                     const std::string& content,
                                     IoEnv* io = nullptr);

/// Reads `path` whole. NotFound when the file does not exist.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path,
                                                   IoEnv* io = nullptr);

/// File names of the three run-state artifacts inside a snapshot directory.
inline constexpr const char* kSnapshotPoolFile = "pool.dexa";
inline constexpr const char* kSnapshotAnnotationsFile = "annotations.dexa";
inline constexpr const char* kSnapshotTracesFile = "traces.dexa";

/// The full durable state of an annotation run, snapshotted together: the
/// annotated instance pool, the per-module data-example annotations, and
/// the provenance trace corpus. Each artifact is written atomically
/// (write-to-temp + rename), so a crash between files leaves a mix of old
/// and new artifacts but never a torn one.
[[nodiscard]] Status WriteRunStateSnapshot(const std::string& dir,
                             const AnnotatedInstancePool& pool,
                             const ModuleRegistry& registry,
                             const Ontology& ontology,
                             const ProvenanceCorpus& provenance,
                             IoEnv* io = nullptr);

/// What RestoreRunState recovered from a snapshot directory.
struct RestoredRunState {
  AnnotatedInstancePool pool;
  ProvenanceCorpus provenance;
  /// Modules whose annotations were restored into the registry.
  size_t modules_restored = 0;

  explicit RestoredRunState(const Ontology* ontology) : pool(ontology) {}
};

/// Restores a WriteRunStateSnapshot directory: parses the pool and trace
/// artifacts and loads the annotations back into `registry`. Corrupt or
/// truncated artifacts surface as typed errors (kCorrupted / kParseError)
/// from the underlying readers — never partial state: `registry` is only
/// mutated after every artifact parsed cleanly.
[[nodiscard]] Result<RestoredRunState> RestoreRunState(const std::string& dir,
                                         const Ontology& ontology,
                                         ModuleRegistry& registry);

}  // namespace dexa

#endif  // DEXA_DURABILITY_SNAPSHOT_H_
