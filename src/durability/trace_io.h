#ifndef DEXA_DURABILITY_TRACE_IO_H_
#define DEXA_DURABILITY_TRACE_IO_H_

#include <string>

#include "common/result.h"
#include "provenance/trace.h"

namespace dexa {

/// Serializes a provenance corpus to the textual trace format:
///
///   # dexa traces v1
///   trace <workflow-id>
///   invocation <processor-name>|<module-id>
///   in <value>
///   out <value>
///   end
///
/// Processor names and module ids may contain spaces, hence the '|'
/// separator; values use the canonical Value::ToString rendering, which is
/// single-line. The rendering is deterministic: identical corpora produce
/// identical bytes, so snapshot comparison can diff the serialized form.
std::string SaveTraces(const ProvenanceCorpus& corpus);

/// Parses the output of SaveTraces back into a corpus. Structural problems
/// in otherwise complete input (unknown directives, bad values) fail with
/// kParseError; input that ends mid-trace or mid-invocation fails with
/// kCorrupted — the file was cut off, not merely malformed.
[[nodiscard]] Result<ProvenanceCorpus> LoadTraces(const std::string& text);

}  // namespace dexa

#endif  // DEXA_DURABILITY_TRACE_IO_H_
