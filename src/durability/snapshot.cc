#include "durability/snapshot.h"

#include <filesystem>
#include <utility>

#include "durability/trace_io.h"
#include "modules/registry_io.h"
#include "pool/pool_io.h"

namespace dexa {

namespace fs = std::filesystem;

namespace {
IoEnv& EnvOrReal(IoEnv* io) { return io != nullptr ? *io : IoEnv::Real(); }
}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& content,
                       IoEnv* io) {
  return WriteFileAtomic(EnvOrReal(io), path, content);
}

Result<std::string> ReadFileToString(const std::string& path, IoEnv* io) {
  auto bytes = EnvOrReal(io).ReadFile(path);
  if (!bytes.ok() && bytes.status().IsNotFound()) {
    // Preserve the historical message shape callers print.
    return Status::NotFound("cannot read file '" + path + "'");
  }
  return bytes;
}

Status WriteRunStateSnapshot(const std::string& dir,
                             const AnnotatedInstancePool& pool,
                             const ModuleRegistry& registry,
                             const Ontology& ontology,
                             const ProvenanceCorpus& provenance, IoEnv* io) {
  IoEnv& env = EnvOrReal(io);
  DEXA_RETURN_IF_ERROR(env.CreateDirs(dir));
  const fs::path base(dir);
  DEXA_RETURN_IF_ERROR(AtomicWriteFile((base / kSnapshotPoolFile).string(),
                                       SavePool(pool), &env));
  DEXA_RETURN_IF_ERROR(
      AtomicWriteFile((base / kSnapshotAnnotationsFile).string(),
                      SaveAnnotations(registry, ontology), &env));
  DEXA_RETURN_IF_ERROR(AtomicWriteFile((base / kSnapshotTracesFile).string(),
                                       SaveTraces(provenance), &env));
  return Status::OK();
}

Result<RestoredRunState> RestoreRunState(const std::string& dir,
                                         const Ontology& ontology,
                                         ModuleRegistry& registry) {
  const fs::path base(dir);
  auto pool_text = ReadFileToString((base / kSnapshotPoolFile).string());
  if (!pool_text.ok()) return pool_text.status();
  auto annotations_text =
      ReadFileToString((base / kSnapshotAnnotationsFile).string());
  if (!annotations_text.ok()) return annotations_text.status();
  auto traces_text = ReadFileToString((base / kSnapshotTracesFile).string());
  if (!traces_text.ok()) return traces_text.status();

  RestoredRunState state(&ontology);
  auto pool = LoadPool(*pool_text, ontology);
  if (!pool.ok()) return pool.status();
  state.pool = std::move(pool).value();

  auto traces = LoadTraces(*traces_text);
  if (!traces.ok()) return traces.status();
  state.provenance = std::move(traces).value();

  // Parsed last so the registry stays untouched when the pool or trace
  // artifacts are the damaged ones (LoadAnnotations itself stages before
  // committing).
  auto restored = LoadAnnotations(*annotations_text, ontology, registry);
  if (!restored.ok()) return restored.status();
  state.modules_restored = *restored;
  return state;
}

}  // namespace dexa
