#include "durability/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "durability/trace_io.h"
#include "modules/registry_io.h"
#include "pool/pool_io.h"

namespace dexa {

namespace fs = std::filesystem;

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open temporary file '" + tmp + "'");
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      return Status::Internal("cannot write temporary file '" + tmp + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("cannot rename '" + tmp + "' over '" + path +
                            "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

Status WriteRunStateSnapshot(const std::string& dir,
                             const AnnotatedInstancePool& pool,
                             const ModuleRegistry& registry,
                             const Ontology& ontology,
                             const ProvenanceCorpus& provenance) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory '" + dir +
                            "': " + ec.message());
  }
  const fs::path base(dir);
  DEXA_RETURN_IF_ERROR(
      AtomicWriteFile((base / kSnapshotPoolFile).string(), SavePool(pool)));
  DEXA_RETURN_IF_ERROR(
      AtomicWriteFile((base / kSnapshotAnnotationsFile).string(),
                      SaveAnnotations(registry, ontology)));
  DEXA_RETURN_IF_ERROR(AtomicWriteFile((base / kSnapshotTracesFile).string(),
                                       SaveTraces(provenance)));
  return Status::OK();
}

Result<RestoredRunState> RestoreRunState(const std::string& dir,
                                         const Ontology& ontology,
                                         ModuleRegistry& registry) {
  const fs::path base(dir);
  auto pool_text = ReadFileToString((base / kSnapshotPoolFile).string());
  if (!pool_text.ok()) return pool_text.status();
  auto annotations_text =
      ReadFileToString((base / kSnapshotAnnotationsFile).string());
  if (!annotations_text.ok()) return annotations_text.status();
  auto traces_text = ReadFileToString((base / kSnapshotTracesFile).string());
  if (!traces_text.ok()) return traces_text.status();

  RestoredRunState state(&ontology);
  auto pool = LoadPool(*pool_text, ontology);
  if (!pool.ok()) return pool.status();
  state.pool = std::move(pool).value();

  auto traces = LoadTraces(*traces_text);
  if (!traces.ok()) return traces.status();
  state.provenance = std::move(traces).value();

  // Parsed last so the registry stays untouched when the pool or trace
  // artifacts are the damaged ones (LoadAnnotations itself stages before
  // committing).
  auto restored = LoadAnnotations(*annotations_text, ontology, registry);
  if (!restored.ok()) return restored.status();
  state.modules_restored = *restored;
  return state;
}

}  // namespace dexa
