#include "durability/durable_annotate.h"

#include <optional>
#include <utility>
#include <vector>

#include "durability/commit_codec.h"

namespace dexa {

namespace {

/// Parses and validates the committed prefix of a recovered journal against
/// the run about to resume: header fingerprint must match, and the commit
/// records must be a prefix of the registration order (the sequential
/// commit phase guarantees they were written that way).
Result<std::vector<ModuleCommit>> ValidateResume(
    const JournalRecovery& recovery, const std::vector<ModulePtr>& modules,
    const ModuleRegistry& registry, const GeneratorOptions& options,
    const Ontology& ontology) {
  if (recovery.records.empty()) {
    // Nothing committed (the crash beat even the header): resume is just a
    // fresh run.
    return std::vector<ModuleCommit>{};
  }
  auto header = DecodeAnnotateRunHeader(recovery.records[0]);
  if (!header.ok()) {
    return Status::Corrupted("journal's first record is not a run header: " +
                             header.status().message());
  }
  const uint64_t fingerprint = AnnotateConfigFingerprint(registry, options);
  if (header->fingerprint != fingerprint ||
      header->modules != modules.size()) {
    return Status::InvalidArgument(
        "journal belongs to a different run configuration (fingerprint " +
        std::to_string(header->fingerprint) + " vs " +
        std::to_string(fingerprint) + ")");
  }
  std::vector<ModuleCommit> committed;
  committed.reserve(recovery.records.size() - 1);
  for (size_t r = 1; r < recovery.records.size(); ++r) {
    auto commit = DecodeModuleCommit(recovery.records[r], ontology);
    if (!commit.ok()) {
      return Status::Corrupted("journal record " + std::to_string(r) +
                               " is not a module commit: " +
                               commit.status().message());
    }
    const size_t index = committed.size();
    if (index >= modules.size() ||
        commit->module_id != modules[index]->spec().id) {
      return Status::Corrupted(
          "journal commit order diverges from registration order at record " +
          std::to_string(r) + " ('" + commit->module_id + "')");
    }
    committed.push_back(std::move(commit).value());
  }
  return committed;
}

}  // namespace

Result<AnnotateReport> AnnotateRegistryDurable(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal,
    const DurableAnnotateOptions& options) {
  const std::vector<ModulePtr> modules = registry.AvailableModules();
  InvocationEngine& engine = generator.engine();

  std::vector<ModuleCommit> committed;
  bool fresh = true;
  if (options.resume != nullptr) {
    auto validated = ValidateResume(*options.resume, modules, registry,
                                    generator.options(), ontology);
    if (!validated.ok()) return validated.status();
    committed = std::move(validated).value();
    // A recovered journal with any records already carries its header —
    // even when zero commits follow it (crash before the first commit).
    fresh = options.resume->records.empty();
  }

  // Route commits through the engine's ordered commit hook into the
  // journal; cleared on every exit path so the journal does not outlive
  // this run inside a shared engine.
  engine.SetCommitHook([&journal](uint64_t, const std::string& payload) {
    return journal.Append(payload);
  });
  struct HookClearer {
    InvocationEngine* engine;
    ~HookClearer() { engine->SetCommitHook(nullptr); }
  } clearer{&engine};

  AnnotateReport report;
  if (fresh) {
    AnnotateRunHeader header;
    header.modules = modules.size();
    header.fingerprint =
        AnnotateConfigFingerprint(registry, generator.options());
    Status appended = engine.Commit(EncodeAnnotateRunHeader(header));
    if (!appended.ok()) return appended;
  }

  // Replay the committed prefix: served from the journal, not re-invoked.
  for (const ModuleCommit& commit : committed) {
    size_t examples = commit.examples.size();
    DEXA_RETURN_IF_ERROR(
        registry.SetDataExamples(commit.module_id, commit.examples));
    report.transient_exhausted += commit.transient_exhausted;
    report.examples += examples;
    if (commit.decayed) {
      ++report.decayed;
      report.decayed_ids.push_back(commit.module_id);
    } else {
      ++report.annotated;
    }
    ++report.replayed;
    engine.metrics().RecordModuleReplayed();
  }

  // Generate the remainder concurrently; outcomes are schedule-independent
  // so this fan-out cannot perturb the byte-identical-resume contract.
  const size_t start = committed.size();
  std::vector<std::optional<Result<GenerationOutcome>>> outcomes(
      modules.size());
  engine.ForEach(modules.size() - start, [&](size_t k) {
    outcomes[start + k] = generator.Generate(*modules[start + k]);
  });

  // Sequential commit phase, registration order: journal record first
  // (write-ahead), then the registry — with the crash plan consulted at
  // each unit the way a real crash would interleave with the appends.
  const CrashPlan& crash = options.crash;
  for (size_t i = start; i < modules.size(); ++i) {
    const std::string& id = modules[i]->spec().id;
    if (crash.point == CrashPoint::kCrashBeforeCommit && crash.Matches(id)) {
      report.run_status = Status::Cancelled(
          "crash injected before commit of module '" + id + "'");
      break;
    }

    Result<GenerationOutcome>& outcome = *outcomes[i];
    if (!outcome.ok()) {
      report.run_status = outcome.status();
      break;
    }

    ModuleCommit commit;
    commit.module_id = id;
    commit.decayed = outcome->stats.decayed;
    commit.transient_exhausted = outcome->stats.transient_exhausted;
    commit.examples = std::move(outcome->examples);

    Status appended = engine.Commit(EncodeModuleCommit(commit, ontology));
    if (!appended.ok()) {
      report.run_status = appended;
      break;
    }

    size_t examples = commit.examples.size();
    Status stored =
        registry.SetDataExamples(id, std::move(commit.examples));
    if (!stored.ok()) {
      report.run_status = stored;
      break;
    }
    report.transient_exhausted += commit.transient_exhausted;
    report.examples += examples;
    if (commit.decayed) {
      ++report.decayed;
      report.decayed_ids.push_back(id);
    } else {
      ++report.annotated;
    }
    engine.metrics().RecordModuleReinvoked();

    if (crash.Matches(id)) {
      if (crash.point == CrashPoint::kCrashAfterCommit) {
        report.run_status = Status::Cancelled(
            "crash injected after commit of module '" + id + "'");
        break;
      }
      if (crash.point == CrashPoint::kTornWrite) {
        // The record for `id` lands half-written: seal the stream, then
        // damage the tail the way an interrupted flush would.
        DEXA_RETURN_IF_ERROR(journal.Seal());
        DEXA_RETURN_IF_ERROR(TearJournalTail(journal.dir(), crash.seed,
                                             crash.torn_flips,
                                             crash.torn_truncate_bytes));
        report.run_status = Status::Cancelled(
            "torn-write crash injected at commit of module '" + id + "'");
        break;
      }
    }
  }

  report.metrics = engine.metrics().Snapshot();
  return report;
}

}  // namespace dexa
