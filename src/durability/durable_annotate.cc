#include "durability/durable_annotate.h"

#include <optional>
#include <utility>
#include <vector>

#include "durability/commit_codec.h"
#include "durability/run_api_internal.h"
#include "obs/trace.h"

namespace dexa {

namespace {

/// Parses and validates the committed prefix of a recovered journal against
/// the run about to resume: header fingerprint must match, and the commit
/// records must be a prefix of the registration order (the sequential
/// commit phase guarantees they were written that way).
Result<std::vector<ModuleCommit>> ValidateResume(
    const JournalRecovery& recovery, const std::vector<ModulePtr>& modules,
    const ModuleRegistry& registry, const GeneratorOptions& options,
    const Ontology& ontology, uint64_t kb_checksum) {
  if (recovery.records.empty()) {
    // Nothing committed (the crash beat even the header): resume is just a
    // fresh run.
    return std::vector<ModuleCommit>{};
  }
  auto header = DecodeAnnotateRunHeader(recovery.records[0]);
  if (!header.ok()) {
    return Status::Corrupted("journal's first record is not a run header: " +
                             header.status().message());
  }
  const uint64_t fingerprint = AnnotateConfigFingerprint(registry, options);
  if (header->fingerprint != fingerprint ||
      header->modules != modules.size()) {
    return Status::InvalidArgument(
        "journal belongs to a different run configuration (fingerprint " +
        std::to_string(header->fingerprint) + " vs " +
        std::to_string(fingerprint) + ")");
  }
  if (header->kb_checksum != kb_checksum) {
    return Status::InvalidArgument(
        "journal is pinned to a different knowledge base (kb_checksum " +
        std::to_string(header->kb_checksum) + " vs " +
        std::to_string(kb_checksum) +
        "); resume with the same KB image the run started with");
  }
  std::vector<ModuleCommit> committed;
  committed.reserve(recovery.records.size() - 1);
  for (size_t r = 1; r < recovery.records.size(); ++r) {
    auto commit = DecodeModuleCommit(recovery.records[r], ontology);
    if (!commit.ok()) {
      return Status::Corrupted("journal record " + std::to_string(r) +
                               " is not a module commit: " +
                               commit.status().message());
    }
    const size_t index = committed.size();
    if (index >= modules.size() ||
        commit->module_id != modules[index]->spec().id) {
      return Status::Corrupted(
          "journal commit order diverges from registration order at record " +
          std::to_string(r) + " ('" + commit->module_id + "')");
    }
    committed.push_back(std::move(commit).value());
  }
  return committed;
}

}  // namespace

Result<AnnotateReport> internal::AnnotateDurableImpl(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal,
    const DurableAnnotateOptions& options) {
  const std::vector<ModulePtr> modules = registry.AvailableModules();
  InvocationEngine& engine = generator.engine();

  std::vector<ModuleCommit> committed;
  bool fresh = true;
  if (options.resume != nullptr) {
    auto validated = ValidateResume(*options.resume, modules, registry,
                                    generator.options(), ontology,
                                    options.kb_checksum);
    if (!validated.ok()) return validated.status();
    committed = std::move(validated).value();
    // A recovered journal with any records already carries its header —
    // even when zero commits follow it (crash before the first commit).
    fresh = options.resume->records.empty();
  }

  // Route commits through this run's own ordered stream into the journal:
  // streams are per-run state, so concurrent durable runs sharing one
  // engine cannot interleave each other's journals.
  CommitStream commits(engine,
                       [&journal](uint64_t, const std::string& payload) {
                         return journal.Append(payload);
                       });

  obs::Tracer* tracer = options.obs.tracer;
  obs::ScopedSpan run(tracer, obs::SpanKind::kRun,
                      "annotate_registry_durable");
  const EngineMetricsSnapshot run_before = engine.metrics().Snapshot();

  AnnotateReport report;
  if (fresh) {
    AnnotateRunHeader header;
    header.modules = modules.size();
    header.fingerprint =
        AnnotateConfigFingerprint(registry, generator.options());
    header.kb_checksum = options.kb_checksum;
    Status appended = commits.Commit(EncodeAnnotateRunHeader(header));
    if (!appended.ok()) return appended;
  }

  // Replay the committed prefix: served from the journal, not re-invoked.
  // Replay spans are marked `replayed` and carry only the counters the
  // journal preserves — no live invocation deltas, because no invocation
  // happened.
  {
    obs::ScopedSpan replay(tracer, obs::SpanKind::kPhase, "replay", run.id());
    for (const ModuleCommit& commit : committed) {
      obs::ScopedSpan module_span(tracer, obs::SpanKind::kBatch,
                                  commit.module_id, replay.id());
      module_span.MarkReplayed();
      std::vector<std::pair<std::string, uint64_t>> counters;
      counters.reserve(3);
      if (!commit.examples.empty()) {
        counters.emplace_back("examples", commit.examples.size());
      }
      if (commit.decayed) counters.emplace_back("decayed", 1);
      if (commit.transient_exhausted != 0) {
        counters.emplace_back("transient_exhausted", commit.transient_exhausted);
      }
      module_span.Counters(std::move(counters));
      size_t examples = commit.examples.size();
      DEXA_RETURN_IF_ERROR(
          registry.SetDataExamples(commit.module_id, commit.examples));
      report.transient_exhausted += commit.transient_exhausted;
      report.examples += examples;
      if (commit.decayed) {
        ++report.decayed;
        report.decayed_ids.push_back(commit.module_id);
      } else {
        ++report.annotated;
      }
      ++report.replayed;
      engine.metrics().RecordModuleReplayed();
    }
  }

  // Generate the remainder concurrently; outcomes are schedule-independent
  // so this fan-out cannot perturb the byte-identical-resume contract.
  const size_t start = committed.size();
  std::vector<std::optional<Result<GenerationOutcome>>> outcomes(
      modules.size());
  {
    obs::ScopedSpan generate(tracer, obs::SpanKind::kPhase, "generate",
                             run.id());
    const EngineMetricsSnapshot before = engine.metrics().Snapshot();
    engine.ForEach(modules.size() - start, [&](size_t k) {
      outcomes[start + k] = generator.Generate(*modules[start + k]);
    });
    generate.CounterDeltas(before, engine.metrics().Snapshot());
  }

  // Sequential commit phase, registration order: journal record first
  // (write-ahead), then the registry — with the crash plan consulted at
  // each unit the way a real crash would interleave with the appends.
  const CrashPlan& crash = options.crash;
  obs::ScopedSpan commit_phase(tracer, obs::SpanKind::kPhase, "commit",
                               run.id());
  for (size_t i = start; i < modules.size(); ++i) {
    const std::string& id = modules[i]->spec().id;
    if (crash.point == CrashPoint::kCrashBeforeCommit && crash.Matches(id)) {
      report.run_status = Status::Cancelled(
          "crash injected before commit of module '" + id + "'");
      break;
    }

    Result<GenerationOutcome>& outcome = *outcomes[i];
    if (!outcome.ok()) {
      report.run_status = outcome.status();
      break;
    }

    obs::ScopedSpan module_span(tracer, obs::SpanKind::kBatch, id,
                                commit_phase.id());
    {
      // Same omit-zero, single-locked-call shape as the plain annotate
      // path, so a resumed run's live suffix traces identically.
      std::vector<std::pair<std::string, uint64_t>> counters;
      counters.reserve(5);
      auto add = [&counters](const char* name, uint64_t value) {
        if (value != 0) counters.emplace_back(name, value);
      };
      add("combinations_tried", outcome->stats.combinations_tried);
      add("invocation_errors", outcome->stats.invocation_errors);
      add("transient_exhausted", outcome->stats.transient_exhausted);
      add("decayed", outcome->stats.decayed ? 1 : 0);
      add("examples", outcome->examples.size());
      module_span.Counters(std::move(counters));
    }

    ModuleCommit commit;
    commit.module_id = id;
    commit.decayed = outcome->stats.decayed;
    commit.transient_exhausted = outcome->stats.transient_exhausted;
    commit.examples = std::move(outcome->examples);

    Status appended = commits.Commit(EncodeModuleCommit(commit, ontology));
    if (!appended.ok()) {
      report.run_status = appended;
      break;
    }

    size_t examples = commit.examples.size();
    Status stored =
        registry.SetDataExamples(id, std::move(commit.examples));
    if (!stored.ok()) {
      report.run_status = stored;
      break;
    }
    report.transient_exhausted += commit.transient_exhausted;
    report.examples += examples;
    if (commit.decayed) {
      ++report.decayed;
      report.decayed_ids.push_back(id);
    } else {
      ++report.annotated;
    }
    engine.metrics().RecordModuleReinvoked();

    if (crash.Matches(id)) {
      if (crash.point == CrashPoint::kCrashAfterCommit) {
        report.run_status = Status::Cancelled(
            "crash injected after commit of module '" + id + "'");
        break;
      }
      if (crash.point == CrashPoint::kTornWrite) {
        // The record for `id` lands half-written: seal the stream, then
        // damage the tail the way an interrupted flush would.
        DEXA_RETURN_IF_ERROR(journal.Seal());
        DEXA_RETURN_IF_ERROR(TearJournalTail(journal.dir(), crash.seed,
                                             crash.torn_flips,
                                             crash.torn_truncate_bytes));
        report.run_status = Status::Cancelled(
            "torn-write crash injected at commit of module '" + id + "'");
        break;
      }
    }
  }

  commit_phase.End();
  report.metrics = engine.metrics().Snapshot();
  run.CounterDeltas(run_before, report.metrics);
  return report;
}

}  // namespace dexa
