#include "durability/durable_enact.h"

#include <optional>
#include <string>
#include <utility>

#include "durability/commit_codec.h"
#include "durability/run_api_internal.h"

namespace dexa {

namespace {

/// Decodes the committed steps of a recovered enactment journal into a
/// per-processor replay vector, validating the header against this run.
Result<std::vector<std::optional<InvocationRecord>>> ValidateResume(
    const JournalRecovery& recovery, const Workflow& workflow,
    const std::vector<Value>& inputs) {
  std::vector<std::optional<InvocationRecord>> replayed(
      workflow.processors.size());
  if (recovery.records.empty()) return replayed;

  auto header = DecodeEnactRunHeader(recovery.records[0]);
  if (!header.ok()) {
    return Status::Corrupted("journal's first record is not a run header: " +
                             header.status().message());
  }
  const uint64_t fingerprint = EnactConfigFingerprint(workflow.id, inputs);
  if (header->fingerprint != fingerprint ||
      header->processors != workflow.processors.size()) {
    return Status::InvalidArgument(
        "journal belongs to a different enactment (workflow '" +
        header->workflow_id + "')");
  }
  for (size_t r = 1; r < recovery.records.size(); ++r) {
    auto commit = DecodeStepCommit(recovery.records[r]);
    if (!commit.ok()) {
      return Status::Corrupted("journal record " + std::to_string(r) +
                               " is not a step commit: " +
                               commit.status().message());
    }
    if (commit->processor < 0 ||
        static_cast<size_t>(commit->processor) >= replayed.size()) {
      return Status::Corrupted("journal step commit names processor " +
                               std::to_string(commit->processor) +
                               ", out of range");
    }
    replayed[static_cast<size_t>(commit->processor)] =
        std::move(commit->record);
  }
  return replayed;
}

}  // namespace

Result<ResilientEnactmentResult> internal::EnactDurableImpl(
    const Workflow& workflow, const ModuleRegistry& registry,
    const std::vector<Value>& inputs, InvocationEngine& engine,
    RunJournal& journal, const DurableEnactOptions& options) {
  std::vector<std::optional<InvocationRecord>> replayed(
      workflow.processors.size());
  bool fresh = true;
  if (options.resume != nullptr) {
    auto validated = ValidateResume(*options.resume, workflow, inputs);
    if (!validated.ok()) return validated.status();
    replayed = std::move(validated).value();
    fresh = options.resume->records.empty();
  }
  for (const std::optional<InvocationRecord>& slot : replayed) {
    if (slot.has_value()) engine.metrics().RecordModuleReplayed();
  }

  // Per-run commit stream: see durable_annotate.cc — concurrent durable
  // runs sharing one engine must not interleave journals.
  CommitStream commits(engine,
                       [&journal](uint64_t, const std::string& payload) {
                         return journal.Append(payload);
                       });

  if (fresh) {
    EnactRunHeader header;
    header.workflow_id = workflow.id;
    header.processors = workflow.processors.size();
    header.fingerprint = EnactConfigFingerprint(workflow.id, inputs);
    DEXA_RETURN_IF_ERROR(commits.Commit(EncodeEnactRunHeader(header)));
  }

  const CrashPlan& crash = options.crash;
  EnactHooks hooks;
  hooks.replayed = &replayed;
  hooks.obs = options.obs;
  hooks.on_commit = [&](int processor,
                        const InvocationRecord& record) -> Status {
    if (crash.point == CrashPoint::kCrashBeforeCommit &&
        crash.Matches(record.module_id)) {
      return Status::Cancelled("crash injected before commit of step '" +
                               record.processor_name + "'");
    }
    StepCommit commit;
    commit.processor = processor;
    commit.record = record;
    DEXA_RETURN_IF_ERROR(commits.Commit(EncodeStepCommit(commit)));
    engine.metrics().RecordModuleReinvoked();
    if (crash.Matches(record.module_id)) {
      if (crash.point == CrashPoint::kCrashAfterCommit) {
        return Status::Cancelled("crash injected after commit of step '" +
                                 record.processor_name + "'");
      }
      if (crash.point == CrashPoint::kTornWrite) {
        DEXA_RETURN_IF_ERROR(journal.Seal());
        DEXA_RETURN_IF_ERROR(TearJournalTail(journal.dir(), crash.seed,
                                             crash.torn_flips,
                                             crash.torn_truncate_bytes));
        return Status::Cancelled("torn-write crash injected at step '" +
                                 record.processor_name + "'");
      }
    }
    return Status::OK();
  };

  return EnactResilient(workflow, registry, inputs, engine, hooks);
}

}  // namespace dexa
