#include "durability/journal.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "common/crc32.h"

namespace dexa {

namespace fs = std::filesystem;

namespace {

constexpr char kRecordMagic0 = 'D';
constexpr char kRecordMagic1 = 'R';

std::string SegmentName(size_t index) {
  return "wal-" + ZeroPad(index, 5) + ".seg";
}

IoEnv& EnvOrReal(IoEnv* io) { return io != nullptr ? *io : IoEnv::Real(); }

/// Parses the numeric index out of a segment filename ("wal-00012.seg").
/// Returns false for names that do not follow the scheme.
bool ParseSegmentIndex(const fs::path& path, size_t* index) {
  const std::string name = path.filename().string();
  constexpr size_t kPrefixLen = 4;  // "wal-"
  constexpr size_t kSuffixLen = 4;  // ".seg"
  if (name.size() <= kPrefixLen + kSuffixLen) return false;
  size_t value = 0;
  for (size_t at = kPrefixLen; at < name.size() - kSuffixLen; ++at) {
    if (name[at] < '0' || name[at] > '9') return false;
    value = value * 10 + static_cast<size_t>(name[at] - '0');
  }
  *index = value;
  return true;
}

/// max(filename index) + 1 over `segments` — the only collision-free next
/// index. Positions in the sorted list are not usable: recovery may have
/// removed a header-damaged segment whole, leaving a numbering gap, after
/// which `segments.size()` names a live segment.
size_t NextSegmentIndex(const std::vector<fs::path>& segments) {
  size_t next = 0;
  for (const fs::path& segment : segments) {
    size_t index = 0;
    if (ParseSegmentIndex(segment, &index) && index + 1 > next) {
      next = index + 1;
    }
  }
  return next;
}

/// Sorted paths of the journal segments in `dir` (lexicographic order of
/// the zero-padded names is append order).
Result<std::vector<fs::path>> ListSegments(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("journal directory '" + dir + "' does not exist");
  }
  std::vector<fs::path> segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, "wal-") && EndsWith(name, ".seg")) {
      segments.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::Internal("cannot list journal directory '" + dir +
                            "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

void PutU32Le(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(std::string_view bytes, size_t at) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[at])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[at + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[at + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[at + 3])) << 24;
}

}  // namespace

SegmentScan ScanSegment(std::string_view bytes) {
  SegmentScan scan;
  if (bytes.size() < kJournalSegmentMagicLen ||
      bytes.substr(0, kJournalSegmentMagicLen) !=
          std::string_view(kJournalSegmentMagic, kJournalSegmentMagicLen)) {
    scan.status = Status::Corrupted("segment header magic missing or damaged");
    return scan;
  }
  size_t at = kJournalSegmentMagicLen;
  scan.valid_bytes = at;
  while (at < bytes.size()) {
    const size_t remaining = bytes.size() - at;
    if (remaining < kJournalFrameOverhead) {
      scan.status = Status::Corrupted(
          "torn record frame: " + std::to_string(remaining) +
          " trailing byte(s), frame needs " +
          std::to_string(kJournalFrameOverhead));
      return scan;
    }
    if (bytes[at] != kRecordMagic0 || bytes[at + 1] != kRecordMagic1) {
      scan.status = Status::Corrupted("record magic damaged at offset " +
                                      std::to_string(at));
      return scan;
    }
    const uint32_t length = GetU32Le(bytes, at + 2);
    const uint32_t crc = GetU32Le(bytes, at + 6);
    if (length > remaining - kJournalFrameOverhead) {
      scan.status = Status::Corrupted(
          "torn record at offset " + std::to_string(at) + ": length " +
          std::to_string(length) + " overruns the segment");
      return scan;
    }
    std::string_view payload =
        bytes.substr(at + kJournalFrameOverhead, length);
    if (Crc32(payload) != crc) {
      scan.status = Status::Corrupted("CRC32 mismatch at offset " +
                                      std::to_string(at));
      return scan;
    }
    scan.records.emplace_back(payload);
    at += kJournalFrameOverhead + length;
    scan.valid_bytes = at;
  }
  scan.status = Status::OK();
  return scan;
}

Result<JournalRecovery> RecoverJournal(const std::string& dir,
                                       EngineMetrics* metrics, IoEnv* io) {
  IoEnv& env = EnvOrReal(io);
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();

  JournalRecovery recovery;
  for (size_t s = 0; s < segments->size(); ++s) {
    auto bytes = env.ReadFile((*segments)[s].string());
    if (!bytes.ok()) return bytes.status();
    ++recovery.segments_scanned;
    SegmentScan scan = ScanSegment(*bytes);
    for (std::string& record : scan.records) {
      recovery.records.push_back(std::move(record));
    }
    if (scan.status.ok()) continue;

    // Damage: everything from the first bad byte on — including any later
    // segments — is the discarded tail.
    recovery.tail_status = Status::Corrupted(
        "segment '" + (*segments)[s].filename().string() +
        "': " + scan.status.message());
    recovery.damaged_segment = s;
    recovery.damaged_segment_valid_bytes = scan.valid_bytes;
    recovery.bytes_discarded = bytes->size() - scan.valid_bytes;
    for (size_t later = s + 1; later < segments->size(); ++later) {
      std::error_code ec;
      const uintmax_t later_size = fs::file_size((*segments)[later], ec);
      if (!ec) recovery.bytes_discarded += later_size;
      ++recovery.segments_scanned;
    }
    if (metrics != nullptr) metrics->RecordTornTailDiscard();
    break;
  }
  return recovery;
}

Status RunJournal::OpenSegment(size_t index) {
  const fs::path path = fs::path(dir_) / SegmentName(index);
  auto file = io_->NewWritableFile(path.string());
  if (!file.ok()) return file.status();
  out_ = std::move(*file);
  Status header = out_->Append(
      std::string_view(kJournalSegmentMagic, kJournalSegmentMagicLen));
  if (header.ok()) header = out_->Sync();
  if (!header.ok()) {
    out_.reset();
    return header;
  }
  segment_open_ = true;
  segment_index_ = index;
  segment_payload_bytes_ = 0;
  return Status::OK();
}

Result<RunJournal> RunJournal::Create(const std::string& dir,
                                      JournalOptions options,
                                      EngineMetrics* metrics, IoEnv* io) {
  IoEnv& env = EnvOrReal(io);
  DEXA_RETURN_IF_ERROR(env.CreateDirs(dir));
  // A fresh journal owns the directory's WAL namespace: stale segments of a
  // previous run would otherwise replay into this one.
  auto stale = ListSegments(dir);
  if (!stale.ok()) return stale.status();
  for (const fs::path& segment : *stale) {
    DEXA_RETURN_IF_ERROR(env.RemoveFile(segment.string()));
  }

  RunJournal journal;
  journal.dir_ = dir;
  journal.options_ = options;
  journal.metrics_ = metrics;
  journal.io_ = &env;
  DEXA_RETURN_IF_ERROR(journal.OpenSegment(0));
  return journal;
}

Result<RunJournal> RunJournal::Resume(const std::string& dir,
                                      const JournalRecovery& recovery,
                                      JournalOptions options,
                                      EngineMetrics* metrics, IoEnv* io) {
  IoEnv& env = EnvOrReal(io);
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  if (segments->empty()) {
    return Status::NotFound("no journal segments in '" + dir + "' to resume");
  }

  std::error_code ec;
  const size_t next_index = NextSegmentIndex(*segments);
  if (recovery.tail_discarded()) {
    // Truncate the damaged segment back to its valid prefix and drop every
    // segment after it — the journal must be a valid prefix before new
    // records land behind it.
    const fs::path& damaged = (*segments)[recovery.damaged_segment];
    if (recovery.damaged_segment_valid_bytes < kJournalSegmentMagicLen) {
      // Even the header is damaged: the segment holds no valid records, and
      // a truncated stub would read as damage forever. Drop it whole.
      DEXA_RETURN_IF_ERROR(env.RemoveFile(damaged.string()));
    } else {
      DEXA_RETURN_IF_ERROR(
          env.Truncate(damaged.string(), recovery.damaged_segment_valid_bytes));
    }
    for (size_t s = recovery.damaged_segment + 1; s < segments->size(); ++s) {
      DEXA_RETURN_IF_ERROR(env.RemoveFile((*segments)[s].string()));
    }
  }

  // Opening fresh truncates, so a collision with a live segment would
  // destroy committed records — refuse rather than trust the numbering.
  const fs::path next_path = fs::path(dir) / SegmentName(next_index);
  if (fs::exists(next_path, ec)) {
    return Status::Internal("refusing to resume: next segment '" +
                            next_path.string() + "' already exists");
  }

  RunJournal journal;
  journal.dir_ = dir;
  journal.options_ = options;
  journal.metrics_ = metrics;
  journal.io_ = &env;
  // Appends of the resumed run go into a fresh segment after the last valid
  // one; the crashed run's segments are sealed history.
  DEXA_RETURN_IF_ERROR(journal.OpenSegment(next_index));
  return journal;
}

Status RunJournal::Append(std::string_view payload) {
  if (failed_) {
    // A faulted journal stays faulted: appending past a torn tail would
    // bury damage behind valid-looking frames and break the valid-prefix
    // contract recovery depends on.
    return Status::Unavailable(
        "journal in '" + dir_ +
        "' is failed after a disk fault; resume to continue");
  }
  if (!segment_open_) {
    Status opened = OpenSegment(segment_index_ + 1);
    if (!opened.ok()) {
      failed_ = true;
      return opened;
    }
  } else if (segment_payload_bytes_ >= options_.segment_bytes) {
    Status rolled = Seal();
    if (rolled.ok()) rolled = OpenSegment(segment_index_ + 1);
    if (!rolled.ok()) {
      failed_ = true;
      return rolled;
    }
  }

  std::string frame;
  frame.reserve(kJournalFrameOverhead + payload.size());
  frame.push_back(kRecordMagic0);
  frame.push_back(kRecordMagic1);
  PutU32Le(frame, static_cast<uint32_t>(payload.size()));
  PutU32Le(frame, Crc32(payload));
  frame.append(payload);

  Status written = Status::OK();
  if (options_.sync_each_record) {
    written = out_->Append(frame);
    if (written.ok()) written = out_->Sync();
  } else {
    // Batched-sync journals stage frames in memory and write the whole
    // segment at once when it rolls or seals: the buffer is bounded by the
    // segment cap, and the bytes on disk are identical to the per-record
    // path's.
    pending_.append(frame);
  }
  if (!written.ok()) {
    failed_ = true;
    return written;
  }
  segment_payload_bytes_ += frame.size();
  ++records_appended_;
  if (metrics_ != nullptr) metrics_->RecordJournalRecord();
  return Status::OK();
}

Status RunJournal::Seal() {
  if (!segment_open_) return Status::OK();
  // Batched-sync journals flush the whole segment here instead of per
  // record; a failure is a disk fault like any other.
  if (!options_.sync_each_record) {
    Status synced = Status::OK();
    if (!pending_.empty()) {
      synced = out_->Append(pending_);
      pending_.clear();
    }
    if (synced.ok()) synced = out_->Sync();
    if (!synced.ok()) {
      failed_ = true;
      out_.reset();
      segment_open_ = false;
      return synced;
    }
  }
  Status closed = out_->Close();
  out_.reset();
  segment_open_ = false;
  if (!closed.ok()) {
    failed_ = true;
    return closed;
  }
  ++segments_sealed_;
  if (metrics_ != nullptr) metrics_->RecordSegmentSealed();
  return Status::OK();
}

Status TearJournalTail(const std::string& dir, uint64_t seed, int flips,
                       size_t truncate_bytes) {
  IoEnv& env = IoEnv::Real();
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  if (segments->empty()) {
    return Status::NotFound("no journal segments in '" + dir + "' to tear");
  }
  const fs::path& last = segments->back();

  auto bytes = env.ReadFile(last.string());
  if (!bytes.ok()) return bytes.status();
  std::string content = std::move(bytes).value();

  if (truncate_bytes > 0 && !content.empty()) {
    content.resize(content.size() - std::min(truncate_bytes, content.size()));
  }
  Rng rng(seed);
  for (int f = 0; f < flips && !content.empty(); ++f) {
    // Flip bytes near the tail — where a crashed writer would have landed.
    size_t span = std::min<size_t>(content.size(), 64);
    size_t pos = content.size() - 1 - rng.NextIndex(span);
    content[pos] = static_cast<char>(content[pos] ^ 0x5A);
  }

  auto out = env.NewWritableFile(last.string());
  if (!out.ok()) return out.status();
  Status written = (*out)->Append(content);
  if (written.ok()) written = (*out)->Close();
  return written;
}

}  // namespace dexa
