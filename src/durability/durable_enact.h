#ifndef DEXA_DURABILITY_DURABLE_ENACT_H_
#define DEXA_DURABILITY_DURABLE_ENACT_H_

#include <vector>

#include "common/result.h"
#include "corpus/fault_injector.h"
#include "durability/journal.h"
#include "obs/run_observability.h"
#include "workflow/enactor.h"
#include "workflow/workflow.h"

namespace dexa {

/// Knobs of a durable (journaled) resilient enactment.
struct DurableEnactOptions {
  /// When set, steps committed by the crashed run are served from the
  /// journal (outputs and provenance re-emitted, modules not re-invoked)
  /// and enactment continues from the first uncommitted step.
  const JournalRecovery* resume = nullptr;

  /// In-process crash injection, keyed on the module id of the step being
  /// committed. An armed plan makes the call fail with kCancelled (for the
  /// torn variant, after damaging the journal tail).
  CrashPlan crash;

  /// Optional run observability, forwarded as-is to EnactHooks::obs:
  /// replayed steps are marked replayed in the span tree, live steps carry
  /// their stable engine-counter deltas.
  obs::RunObservability obs;
};

/// DEPRECATED: legacy entry point, kept as a thin shim over the RunRequest
/// facade (core/run_api.h). New call sites must build a
/// RunKind::kEnactDurable request and call SubmitRun instead — dexa-lint
/// rule `legacy-run-entry` bans direct calls outside the durability layer.
///
/// EnactResilient with a write-ahead journal: every completed step is
/// appended to `journal` before its outputs feed downstream processors, so
/// a killed enactment resumes from the last committed step. Outputs and
/// provenance of a resumed enactment are byte-identical to an
/// uninterrupted one (module outcomes are deterministic given their
/// inputs; replayed steps carry their recorded outputs).
[[nodiscard]] Result<ResilientEnactmentResult> EnactResilientDurable(
    const Workflow& workflow, const ModuleRegistry& registry,
    const std::vector<Value>& inputs, InvocationEngine& engine,
    RunJournal& journal, const DurableEnactOptions& options = {});

}  // namespace dexa

#endif  // DEXA_DURABILITY_DURABLE_ENACT_H_
