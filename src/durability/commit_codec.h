#ifndef DEXA_DURABILITY_COMMIT_CODEC_H_
#define DEXA_DURABILITY_COMMIT_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/example_generator.h"
#include "modules/data_example.h"
#include "modules/registry.h"
#include "ontology/ontology.h"
#include "workflow/enactor.h"

namespace dexa {

/// The payload grammar of journal records. Every record is a small
/// line-oriented text document whose first line names the record kind;
/// the journal framing (length + CRC32) guarantees each decoded payload is
/// byte-exact, so the codec never has to defend against truncation — only
/// against records from a different run (fingerprint mismatch).

/// First record of every annotation journal: identifies the run so a resume
/// against a different registry or generator configuration is rejected
/// instead of silently replaying foreign results.
struct AnnotateRunHeader {
  uint64_t modules = 0;      ///< AvailableModules() count at run start.
  uint64_t fingerprint = 0;  ///< AnnotateConfigFingerprint of the run.
  /// Seal of the compiled KB image the run reasons over, or 0 for the
  /// in-memory backend. A resume whose image checksum differs refuses to
  /// replay: the journal's commits were derived from a different KB.
  /// Encoded only when nonzero, so in-memory journals are byte-identical
  /// to the pre-image format (old journals decode with checksum 0).
  uint64_t kb_checksum = 0;
};

/// Stable hash of everything the journal's replay semantics depend on: the
/// available module ids in registration order and the generator options.
/// Two runs with equal fingerprints produce identical per-module outcomes,
/// so one may replay the other's journal.
uint64_t AnnotateConfigFingerprint(const ModuleRegistry& registry,
                                   const GeneratorOptions& options);

std::string EncodeAnnotateRunHeader(const AnnotateRunHeader& header);
[[nodiscard]] Result<AnnotateRunHeader> DecodeAnnotateRunHeader(const std::string& payload);

/// One committed module annotation: everything AnnotateRegistry writes into
/// the registry and folds into its report for that module.
struct ModuleCommit {
  std::string module_id;
  bool decayed = false;
  uint64_t transient_exhausted = 0;
  DataExampleSet examples;
};

std::string EncodeModuleCommit(const ModuleCommit& commit,
                               const Ontology& ontology);
[[nodiscard]] Result<ModuleCommit> DecodeModuleCommit(const std::string& payload,
                                        const Ontology& ontology);

/// First record of every enactment journal.
struct EnactRunHeader {
  std::string workflow_id;
  uint64_t processors = 0;
  uint64_t fingerprint = 0;  ///< Hash of workflow id + input values.
};

uint64_t EnactConfigFingerprint(const std::string& workflow_id,
                                const std::vector<Value>& inputs);

std::string EncodeEnactRunHeader(const EnactRunHeader& header);
[[nodiscard]] Result<EnactRunHeader> DecodeEnactRunHeader(const std::string& payload);

/// One committed enactment step: the processor index in the workflow's
/// processor list plus the full invocation record, so a resumed enactment
/// serves the outputs (and re-emits the provenance) without re-invoking.
struct StepCommit {
  int processor = -1;
  InvocationRecord record;
};

std::string EncodeStepCommit(const StepCommit& commit);
[[nodiscard]] Result<StepCommit> DecodeStepCommit(const std::string& payload);

}  // namespace dexa

#endif  // DEXA_DURABILITY_COMMIT_CODEC_H_
