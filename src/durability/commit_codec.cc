#include "durability/commit_codec.h"

#include <utility>

#include "common/rng.h"
#include "common/strings.h"

namespace dexa {

namespace {

constexpr const char* kAnnotateHeaderKind = "run annotate";
constexpr const char* kModuleCommitKind = "commit module";
constexpr const char* kEnactHeaderKind = "run enact";
constexpr const char* kStepCommitKind = "commit step";

Result<uint64_t> ParseU64(const std::string& text, const char* what) {
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("malformed ") + what + " '" +
                                text + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (text.empty()) {
    return Status::ParseError(std::string("empty ") + what);
  }
  return value;
}

/// `key value` line with the given key, or ParseError.
Result<std::string> ExpectField(const std::vector<std::string>& lines,
                                size_t index, const std::string& key) {
  if (index >= lines.size() || !StartsWith(lines[index], key + " ")) {
    return Status::ParseError("journal record missing '" + key + "' field");
  }
  return lines[index].substr(key.size() + 1);
}

}  // namespace

uint64_t AnnotateConfigFingerprint(const ModuleRegistry& registry,
                                   const GeneratorOptions& options) {
  uint64_t fp = StableHash64("dexa annotate v1");
  for (const ModulePtr& module : registry.AvailableModules()) {
    fp = HashCombine(fp, StableHash64(module->spec().id));
  }
  fp = HashCombine(fp, static_cast<uint64_t>(options.max_combinations));
  fp = HashCombine(fp, static_cast<uint64_t>(options.use_realization));
  fp = HashCombine(fp, static_cast<uint64_t>(options.full_cartesian));
  fp = HashCombine(fp,
                   static_cast<uint64_t>(options.include_null_for_optional));
  return fp;
}

std::string EncodeAnnotateRunHeader(const AnnotateRunHeader& header) {
  std::string out = std::string(kAnnotateHeaderKind) + "\n";
  out += "modules " + std::to_string(header.modules) + "\n";
  out += "fingerprint " + std::to_string(header.fingerprint) + "\n";
  // Optional trailing field: absent for in-memory runs so their journals
  // stay byte-identical to the pre-image format.
  if (header.kb_checksum != 0) {
    out += "kb_checksum " + std::to_string(header.kb_checksum) + "\n";
  }
  return out;
}

Result<AnnotateRunHeader> DecodeAnnotateRunHeader(const std::string& payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty() || lines[0] != kAnnotateHeaderKind) {
    return Status::ParseError("not an annotate run header record");
  }
  AnnotateRunHeader header;
  auto modules = ExpectField(lines, 1, "modules");
  if (!modules.ok()) return modules.status();
  auto count = ParseU64(*modules, "module count");
  if (!count.ok()) return count.status();
  header.modules = *count;
  auto fingerprint = ExpectField(lines, 2, "fingerprint");
  if (!fingerprint.ok()) return fingerprint.status();
  auto fp = ParseU64(*fingerprint, "fingerprint");
  if (!fp.ok()) return fp.status();
  header.fingerprint = *fp;
  if (lines.size() > 3 && StartsWith(lines[3], "kb_checksum ")) {
    auto checksum = ParseU64(lines[3].substr(12), "kb checksum");
    if (!checksum.ok()) return checksum.status();
    header.kb_checksum = *checksum;
  }
  return header;
}

std::string EncodeModuleCommit(const ModuleCommit& commit,
                               const Ontology& ontology) {
  std::string out = std::string(kModuleCommitKind) + "\n";
  out += "id " + commit.module_id + "\n";
  out += "decayed " + std::to_string(commit.decayed ? 1 : 0) + "\n";
  out += "transient_exhausted " + std::to_string(commit.transient_exhausted) +
         "\n";
  for (const DataExample& example : commit.examples) {
    out += "example\n";
    for (size_t i = 0; i < example.inputs.size(); ++i) {
      ConceptId partition = i < example.input_partitions.size()
                                ? example.input_partitions[i]
                                : kInvalidConcept;
      out += "in ";
      out += partition == kInvalidConcept ? "-" : ontology.NameOf(partition);
      out += " " + example.inputs[i].ToString() + "\n";
    }
    for (const Value& output : example.outputs) {
      out += "out " + output.ToString() + "\n";
    }
    out += "end\n";
  }
  return out;
}

Result<ModuleCommit> DecodeModuleCommit(const std::string& payload,
                                        const Ontology& ontology) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty() || lines[0] != kModuleCommitKind) {
    return Status::ParseError("not a module commit record");
  }
  ModuleCommit commit;
  auto id = ExpectField(lines, 1, "id");
  if (!id.ok()) return id.status();
  commit.module_id = *id;
  auto decayed = ExpectField(lines, 2, "decayed");
  if (!decayed.ok()) return decayed.status();
  commit.decayed = *decayed == "1";
  auto exhausted = ExpectField(lines, 3, "transient_exhausted");
  if (!exhausted.ok()) return exhausted.status();
  auto count = ParseU64(*exhausted, "transient_exhausted");
  if (!count.ok()) return count.status();
  commit.transient_exhausted = *count;

  DataExample example;
  bool in_example = false;
  for (size_t n = 4; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    auto err = [&](const std::string& msg) {
      return Status::ParseError("module commit line " + std::to_string(n + 1) +
                                ": " + msg);
    };
    if (line.empty()) continue;
    if (line == "example") {
      if (in_example) return err("nested example");
      in_example = true;
      example = DataExample();
    } else if (StartsWith(line, "in ")) {
      if (!in_example) return err("'in' outside an example");
      std::string rest = line.substr(3);
      size_t space = rest.find(' ');
      if (space == std::string::npos) return err("malformed 'in' line");
      std::string concept_name = rest.substr(0, space);
      ConceptId partition = kInvalidConcept;
      if (concept_name != "-") {
        partition = ontology.Find(concept_name);
        if (partition == kInvalidConcept) {
          return err("unknown concept '" + concept_name + "'");
        }
      }
      auto value = Value::Parse(rest.substr(space + 1));
      if (!value.ok()) return err(value.status().ToString());
      example.inputs.push_back(std::move(value).value());
      example.input_partitions.push_back(partition);
    } else if (StartsWith(line, "out ")) {
      if (!in_example) return err("'out' outside an example");
      auto value = Value::Parse(line.substr(4));
      if (!value.ok()) return err(value.status().ToString());
      example.outputs.push_back(std::move(value).value());
    } else if (line == "end") {
      if (!in_example) return err("'end' outside an example");
      in_example = false;
      commit.examples.push_back(std::move(example));
    } else {
      return err("unrecognized line '" + line + "'");
    }
  }
  if (in_example) {
    return Status::ParseError("module commit record ends inside an example");
  }
  return commit;
}

uint64_t EnactConfigFingerprint(const std::string& workflow_id,
                                const std::vector<Value>& inputs) {
  uint64_t fp = StableHash64("dexa enact v1");
  fp = HashCombine(fp, StableHash64(workflow_id));
  for (const Value& input : inputs) fp = HashCombine(fp, input.Hash());
  return fp;
}

std::string EncodeEnactRunHeader(const EnactRunHeader& header) {
  std::string out = std::string(kEnactHeaderKind) + "\n";
  out += "workflow " + header.workflow_id + "\n";
  out += "processors " + std::to_string(header.processors) + "\n";
  out += "fingerprint " + std::to_string(header.fingerprint) + "\n";
  return out;
}

Result<EnactRunHeader> DecodeEnactRunHeader(const std::string& payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty() || lines[0] != kEnactHeaderKind) {
    return Status::ParseError("not an enact run header record");
  }
  EnactRunHeader header;
  auto workflow = ExpectField(lines, 1, "workflow");
  if (!workflow.ok()) return workflow.status();
  header.workflow_id = *workflow;
  auto processors = ExpectField(lines, 2, "processors");
  if (!processors.ok()) return processors.status();
  auto count = ParseU64(*processors, "processor count");
  if (!count.ok()) return count.status();
  header.processors = *count;
  auto fingerprint = ExpectField(lines, 3, "fingerprint");
  if (!fingerprint.ok()) return fingerprint.status();
  auto fp = ParseU64(*fingerprint, "fingerprint");
  if (!fp.ok()) return fp.status();
  header.fingerprint = *fp;
  return header;
}

std::string EncodeStepCommit(const StepCommit& commit) {
  std::string out = std::string(kStepCommitKind) + "\n";
  out += "processor " + std::to_string(commit.processor) + "\n";
  out += "workflow " + commit.record.workflow_id + "\n";
  out += "name " + commit.record.processor_name + "\n";
  out += "module " + commit.record.module_id + "\n";
  for (const Value& input : commit.record.inputs) {
    out += "in " + input.ToString() + "\n";
  }
  for (const Value& output : commit.record.outputs) {
    out += "out " + output.ToString() + "\n";
  }
  return out;
}

Result<StepCommit> DecodeStepCommit(const std::string& payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty() || lines[0] != kStepCommitKind) {
    return Status::ParseError("not a step commit record");
  }
  StepCommit commit;
  auto processor = ExpectField(lines, 1, "processor");
  if (!processor.ok()) return processor.status();
  auto index = ParseU64(*processor, "processor index");
  if (!index.ok()) return index.status();
  commit.processor = static_cast<int>(*index);
  auto workflow = ExpectField(lines, 2, "workflow");
  if (!workflow.ok()) return workflow.status();
  commit.record.workflow_id = *workflow;
  auto name = ExpectField(lines, 3, "name");
  if (!name.ok()) return name.status();
  commit.record.processor_name = *name;
  auto module = ExpectField(lines, 4, "module");
  if (!module.ok()) return module.status();
  commit.record.module_id = *module;
  for (size_t n = 5; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    if (line.empty()) continue;
    if (StartsWith(line, "in ")) {
      auto value = Value::Parse(line.substr(3));
      if (!value.ok()) return value.status();
      commit.record.inputs.push_back(std::move(value).value());
    } else if (StartsWith(line, "out ")) {
      auto value = Value::Parse(line.substr(4));
      if (!value.ok()) return value.status();
      commit.record.outputs.push_back(std::move(value).value());
    } else {
      return Status::ParseError("step commit: unrecognized line '" + line +
                                "'");
    }
  }
  return commit;
}

}  // namespace dexa
