#include "durability/trace_io.h"

#include <utility>

#include "common/strings.h"

namespace dexa {

namespace {
constexpr const char* kHeader = "# dexa traces v1";
}  // namespace

std::string SaveTraces(const ProvenanceCorpus& corpus) {
  std::string out = std::string(kHeader) + "\n";
  for (const WorkflowTrace& trace : corpus.traces()) {
    out += "trace " + trace.workflow_id + "\n";
    for (const InvocationRecord& record : trace.invocations) {
      out += "invocation " + record.processor_name + "|" + record.module_id +
             "\n";
      for (const Value& input : record.inputs) {
        out += "in " + input.ToString() + "\n";
      }
      for (const Value& output : record.outputs) {
        out += "out " + output.ToString() + "\n";
      }
      out += "end\n";
    }
  }
  return out;
}

Result<ProvenanceCorpus> LoadTraces(const std::string& text) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || lines[0] != kHeader) {
    return Status::ParseError("missing dexa traces header");
  }

  ProvenanceCorpus corpus;
  WorkflowTrace current_trace;
  InvocationRecord current_record;
  bool in_trace = false;
  bool in_invocation = false;

  auto flush_trace = [&]() {
    if (!in_trace) return;
    corpus.AddTrace(std::move(current_trace));
    current_trace = WorkflowTrace();
    in_trace = false;
  };

  for (size_t n = 1; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    auto err = [&](const std::string& msg) {
      return Status::ParseError("line " + std::to_string(n + 1) + ": " + msg);
    };
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "trace ")) {
      if (in_invocation) return err("'trace' inside an invocation");
      flush_trace();
      current_trace.workflow_id = line.substr(6);
      in_trace = true;
    } else if (StartsWith(line, "invocation ")) {
      if (!in_trace) return err("'invocation' before any trace");
      if (in_invocation) return err("nested invocation");
      std::string rest = line.substr(11);
      size_t bar = rest.find('|');
      if (bar == std::string::npos) return err("malformed invocation line");
      current_record = InvocationRecord();
      current_record.workflow_id = current_trace.workflow_id;
      current_record.processor_name = rest.substr(0, bar);
      current_record.module_id = rest.substr(bar + 1);
      in_invocation = true;
    } else if (StartsWith(line, "in ")) {
      if (!in_invocation) return err("'in' outside an invocation");
      auto value = Value::Parse(line.substr(3));
      if (!value.ok()) return err(value.status().ToString());
      current_record.inputs.push_back(std::move(value).value());
    } else if (StartsWith(line, "out ")) {
      if (!in_invocation) return err("'out' outside an invocation");
      auto value = Value::Parse(line.substr(4));
      if (!value.ok()) return err(value.status().ToString());
      current_record.outputs.push_back(std::move(value).value());
    } else if (line == "end") {
      if (!in_invocation) return err("'end' outside an invocation");
      current_trace.invocations.push_back(std::move(current_record));
      in_invocation = false;
    } else {
      return err("unrecognized line '" + line + "'");
    }
  }
  if (in_invocation) {
    // The file stops mid-record: that is a truncation (e.g. a snapshot that
    // was never atomically renamed), not a grammar error.
    return Status::Corrupted("trace file ends inside an invocation record");
  }
  flush_trace();
  return corpus;
}

}  // namespace dexa
