#ifndef DEXA_DURABILITY_JOURNAL_H_
#define DEXA_DURABILITY_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/io_env.h"
#include "common/result.h"
#include "engine/metrics.h"

namespace dexa {

/// Configuration of a RunJournal.
struct JournalOptions {
  /// Soft cap on segment size: a segment whose payload bytes exceed this is
  /// sealed and the next record opens a fresh segment file. Small values
  /// exercise multi-segment recovery; the default keeps a 252-module
  /// annotation run in a handful of segments.
  size_t segment_bytes = 64 * 1024;
  /// When true (the default, and the right setting for every live durable
  /// run), each Append fsyncs before the commit is acknowledged. Bulk
  /// writers of *derived* journals — the shard merge, whose output is
  /// deterministically rebuildable from the per-shard journals that were
  /// themselves synced record-by-record — may clear this to sync once per
  /// segment (at Seal) instead. The on-disk bytes are identical either
  /// way; only the crash-durability granularity changes.
  bool sync_each_record = true;
};

/// The on-disk framing of the journal (see docs/DURABILITY.md):
///
///   segment file  wal-<index>.seg :=  "DEXAWAL1" record*
///   record        :=  'D' 'R'  length:u32le  crc32:u32le  payload
///
/// `crc32` is the IEEE CRC-32 of the payload alone; `length` is the payload
/// byte count. A record is valid iff its magic, length and checksum all
/// check out; the first invalid byte ends the journal — everything after it
/// is a damaged tail, discarded by recovery with Status kCorrupted.
inline constexpr char kJournalSegmentMagic[] = "DEXAWAL1";
inline constexpr size_t kJournalSegmentMagicLen = 8;
inline constexpr size_t kJournalFrameOverhead = 10;  // magic+length+crc.

/// A checksummed, segmented write-ahead journal for one annotation (or
/// enactment) run. Every committed unit of work is appended as one framed
/// record and flushed before the commit is acknowledged, so a process that
/// dies mid-run loses at most the record being written — and a torn or
/// bit-flipped tail is detected, not trusted.
///
/// All bytes go through an IoEnv (default: IoEnv::Real()), so disk faults —
/// injected by a FaultyIoEnv or real — surface as the seam's typed codes:
/// Append returns kResourceExhausted when the disk fills (the journal on
/// disk stays a valid prefix; resume after space is freed replays it
/// byte-identically) and kCorrupted on EIO/fsync loss.
///
/// Not thread-safe: the engine's commit hook serializes appends (commits
/// happen on the sequential-commit phase only).
class RunJournal {
 public:
  /// Starts a fresh journal in `dir` (created if missing); any segments of
  /// a previous journal in the directory are removed. `metrics` (optional)
  /// receives RecordJournalRecord/RecordSegmentSealed. `io` (optional)
  /// carries every byte; nullptr means the real filesystem.
  [[nodiscard]] static Result<RunJournal> Create(const std::string& dir,
                                   JournalOptions options = {},
                                   EngineMetrics* metrics = nullptr,
                                   IoEnv* io = nullptr);

  /// Re-opens the journal in `dir` for appending after a crash: truncates
  /// the damaged tail identified by `recovery` (RecoverJournal), removes
  /// any segments past the damage, and directs new records into a fresh
  /// segment after the last valid one.
  [[nodiscard]] static Result<RunJournal> Resume(const std::string& dir,
                                   const struct JournalRecovery& recovery,
                                   JournalOptions options = {},
                                   EngineMetrics* metrics = nullptr,
                                   IoEnv* io = nullptr);

  RunJournal(RunJournal&&) = default;
  RunJournal& operator=(RunJournal&&) = default;

  /// Appends one record (frame + CRC32) and flushes it to the OS. Rolls to
  /// a new segment first when the current one is past the size cap. On a
  /// disk fault the typed seam status comes back verbatim
  /// (kResourceExhausted / kCorrupted) and the journal refuses further
  /// appends — the valid prefix on disk is the contract.
  [[nodiscard]] Status Append(std::string_view payload);

  /// Seals the current segment; the next Append opens a new one. Idempotent.
  [[nodiscard]] Status Seal();

  const std::string& dir() const { return dir_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t segments_sealed() const { return segments_sealed_; }
  size_t current_segment_index() const { return segment_index_; }

 private:
  RunJournal() = default;

  [[nodiscard]] Status OpenSegment(size_t index);

  std::string dir_;
  JournalOptions options_;
  EngineMetrics* metrics_ = nullptr;
  IoEnv* io_ = nullptr;
  std::unique_ptr<WritableIoFile> out_;
  /// Frames staged for the batched-sync path (!sync_each_record): written
  /// and synced as one unit when the segment rolls or seals. Bounded by
  /// the segment size cap.
  std::string pending_;
  bool segment_open_ = false;
  bool failed_ = false;
  size_t segment_index_ = 0;
  size_t segment_payload_bytes_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t segments_sealed_ = 0;
};

/// What RecoverJournal salvaged from a journal directory.
struct JournalRecovery {
  /// Valid record payloads, in append order across all segments.
  std::vector<std::string> records;

  size_t segments_scanned = 0;

  /// OK when every byte of every segment parsed; kCorrupted when a torn or
  /// bit-flipped tail was discarded (detail in the message). Recovery never
  /// fails because of damage — the valid prefix is always returned.
  Status tail_status;

  bool tail_discarded() const { return !tail_status.ok(); }

  /// Bytes discarded as damaged tail (across the damaged segment and any
  /// segments after it).
  size_t bytes_discarded = 0;

  /// Index (into the sorted segment list) of the segment holding the first
  /// damaged byte, and the length of its valid prefix — the truncation
  /// point RunJournal::Resume applies. Meaningful only when
  /// tail_discarded().
  size_t damaged_segment = 0;
  size_t damaged_segment_valid_bytes = 0;
};

/// Scans the journal segments of `dir` in order, validates every record's
/// framing and CRC32, and returns the valid prefix. Damage (torn write,
/// flipped bytes, truncation) ends the journal at the first bad byte:
/// later records — even intact ones in later segments — are discarded,
/// because a WAL's contract is a valid prefix, not a valid subset.
/// Fails (as a Result error) only on environmental problems: missing or
/// unreadable directory.
[[nodiscard]] Result<JournalRecovery> RecoverJournal(const std::string& dir,
                                       EngineMetrics* metrics = nullptr,
                                       IoEnv* io = nullptr);

/// One segment's in-memory scan (exposed for fuzzing and tests): parses
/// `bytes` as a segment file image and returns the records of the valid
/// prefix plus where (and whether) it went bad.
struct SegmentScan {
  std::vector<std::string> records;
  size_t valid_bytes = 0;  ///< Length of the cleanly-parsed prefix.
  Status status;           ///< OK, or kCorrupted at the first bad byte.
};
SegmentScan ScanSegment(std::string_view bytes);

/// Deliberately damages the journal tail in `dir` — the in-process stand-in
/// for a crash landing mid-write: truncates `truncate_bytes` off the last
/// segment, then flips `flips` bytes near its end, positions drawn from
/// `seed`. Used by crash-point injection (kTornWrite) and the recovery
/// tests.
[[nodiscard]] Status TearJournalTail(const std::string& dir, uint64_t seed, int flips,
                       size_t truncate_bytes);

}  // namespace dexa

#endif  // DEXA_DURABILITY_JOURNAL_H_
