#ifndef DEXA_DURABILITY_RUN_API_INTERNAL_H_
#define DEXA_DURABILITY_RUN_API_INTERNAL_H_

#include <vector>

#include "common/result.h"
#include "core/example_generator.h"
#include "durability/durable_annotate.h"
#include "durability/durable_enact.h"
#include "durability/journal.h"
#include "modules/registry.h"
#include "ontology/ontology.h"
#include "workflow/enactor.h"
#include "workflow/workflow.h"

namespace dexa::internal {

// The real bodies of the durable run families. Only the SubmitRun facade
// (durability/run_api.cc) may call these; the public legacy signatures in
// durable_annotate.h / durable_enact.h are shims that route through the
// facade, and everything else goes through RunRequest.

[[nodiscard]] Result<AnnotateReport> AnnotateDurableImpl(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal,
    const DurableAnnotateOptions& options);

[[nodiscard]] Result<ResilientEnactmentResult> EnactDurableImpl(
    const Workflow& workflow, const ModuleRegistry& registry,
    const std::vector<Value>& inputs, InvocationEngine& engine,
    RunJournal& journal, const DurableEnactOptions& options);

}  // namespace dexa::internal

#endif  // DEXA_DURABILITY_RUN_API_INTERNAL_H_
