#ifndef DEXA_DURABILITY_DURABLE_ANNOTATE_H_
#define DEXA_DURABILITY_DURABLE_ANNOTATE_H_

#include "common/result.h"
#include "core/example_generator.h"
#include "corpus/fault_injector.h"
#include "durability/journal.h"
#include "modules/registry.h"
#include "obs/run_observability.h"
#include "ontology/ontology.h"

namespace dexa {

/// Resume marker for the durable AnnotateRegistry overload: wraps the
/// JournalRecovery of a crashed run's journal, making the call read as
/// `AnnotateRegistry(generator, registry, ontology, journal,
/// ResumeFrom(recovery))`.
struct ResumeFrom {
  explicit ResumeFrom(const JournalRecovery& r) : recovery(&r) {}
  const JournalRecovery* recovery;
};

/// Knobs of a durable annotation run.
struct DurableAnnotateOptions {
  /// When set, the run replays this recovery's committed prefix (modules
  /// served from the journal, not re-invoked) and resumes generation from
  /// the first uncommitted module. The recovery must come from a journal
  /// of the same run configuration (module list + generator options) —
  /// checked via the run-header fingerprint.
  const JournalRecovery* resume = nullptr;

  /// In-process crash injection: the run stops (Status kCancelled in
  /// AnnotateReport::run_status) at the chosen commit, optionally tearing
  /// the journal tail. Inert when the plan is unarmed.
  CrashPlan crash;

  /// Seal of the compiled KB image this run reasons over (CompiledKb
  /// checksum), or 0 for the in-memory backend. Recorded in the run header
  /// and enforced on resume: a journal pinned to a different KB image (or
  /// to the in-memory backend) is refused instead of silently replaying
  /// commits derived from different knowledge.
  uint64_t kb_checksum = 0;

  /// Optional run observability. The durable run records the same
  /// run → phase → batch tree as plain AnnotateRegistry plus a "replay"
  /// phase whose batch spans are marked replayed — served from the journal,
  /// not live work.
  obs::RunObservability obs;
};

/// DEPRECATED: legacy entry point, kept as a thin shim over the RunRequest
/// facade (core/run_api.h). New call sites must build a
/// RunKind::kAnnotateDurable request and call SubmitRun instead — dexa-lint
/// rule `legacy-run-entry` bans direct calls outside the durability layer.
///
/// AnnotateRegistry with a write-ahead journal: every module's annotation
/// is appended to `journal` (through a per-run ordered CommitStream)
/// before it is committed to the registry, in registration order — so a
/// process that dies mid-run can resume from the last committed module.
///
/// Determinism: generation outcomes are schedule-independent (retry jitter
/// and fault draws are keyed on stable hashes, never thread ids or wall
/// time), so a resumed run — replaying the committed prefix and generating
/// only the remainder — produces a registry, pool and provenance state
/// byte-identical to an uninterrupted run at any thread count.
///
/// An injected crash (options.crash) does not produce an error Result: the
/// report comes back with run_status = kCancelled and its counters covering
/// the committed prefix, mirroring what a monitoring process would read
/// from the journal after a real crash.
[[nodiscard]] Result<AnnotateReport> AnnotateRegistryDurable(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal,
    const DurableAnnotateOptions& options = {});

/// DEPRECATED sugar: the resume spelling from the durability design notes;
/// same shim status as AnnotateRegistryDurable above.
[[nodiscard]] inline Result<AnnotateReport> AnnotateRegistry(
    const ExampleGenerator& generator, ModuleRegistry& registry,
    const Ontology& ontology, RunJournal& journal, ResumeFrom resume) {
  DurableAnnotateOptions options;
  options.resume = resume.recovery;
  return AnnotateRegistryDurable(generator, registry, ontology, journal,
                                 options);
}

}  // namespace dexa

#endif  // DEXA_DURABILITY_DURABLE_ANNOTATE_H_
