#ifndef DEXA_POOL_INSTANCE_POOL_H_
#define DEXA_POOL_INSTANCE_POOL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"
#include "types/structural_type.h"
#include "types/value.h"

namespace dexa {

/// The pool of annotated instances (`pl` in Section 3.2): data values, each
/// annotated with the most specific ontology concept known for it. In the
/// paper the pool is harvested from workflow provenance corpora; in dexa it
/// is populated by provenance::HarvestPool (or directly, in tests).
///
/// `GetInstance(c)` implements the realization semantics of Section 3.2: it
/// returns a value annotated with `c` *itself*, never with a strict
/// sub-concept of `c` — a realization of the concept. If no realization
/// exists (e.g. the concept's domain is covered by its sub-concepts), the
/// lookup fails and the caller creates no data example for that partition.
class AnnotatedInstancePool {
 public:
  explicit AnnotatedInstancePool(const Ontology* ontology)
      : ontology_(ontology) {}

  /// Adds `value` annotated with concept `c`. Duplicate values under the
  /// same concept are stored once.
  void Add(ConceptId c, const Value& value);

  /// Number of distinct (concept, value) entries.
  size_t size() const { return total_; }

  /// Number of distinct values annotated with exactly `c`.
  size_t CountFor(ConceptId c) const;

  /// All values annotated with exactly `c`, in insertion order.
  const std::vector<Value>& InstancesOf(ConceptId c) const;

  /// A realization of `c`: the first pooled value annotated with `c` itself
  /// (not any strict sub-concept). NotFound if the pool holds none.
  [[nodiscard]] Result<Value> GetInstance(ConceptId c) const;

  /// Like GetInstance, but additionally requires structural compatibility
  /// with `type` (Section 3.2). If `type` is a list type and only scalar
  /// instances of `c` are pooled, a singleton-list instance is synthesized
  /// from up to `max_list_elements` pooled scalars.
  [[nodiscard]] Result<Value> GetInstanceCompatible(ConceptId c, const StructuralType& type,
                                      size_t max_list_elements = 4) const;

  /// Concepts that have at least one pooled instance.
  std::vector<ConceptId> PopulatedConcepts() const;

  const Ontology& ontology() const { return *ontology_; }

 private:
  const Ontology* ontology_;
  std::unordered_map<ConceptId, std::vector<Value>> by_concept_;
  std::unordered_map<ConceptId, std::unordered_map<uint64_t, size_t>>
      hashes_by_concept_;
  size_t total_ = 0;
};

}  // namespace dexa

#endif  // DEXA_POOL_INSTANCE_POOL_H_
