#include "pool/pool_io.h"

#include "common/strings.h"

namespace dexa {

namespace {
constexpr const char* kHeader = "# dexa pool v1";
}  // namespace

std::string SavePool(const AnnotatedInstancePool& pool) {
  std::string out = std::string(kHeader) + "\n";
  for (ConceptId concept_id : pool.PopulatedConcepts()) {
    const std::string& name = pool.ontology().NameOf(concept_id);
    for (const Value& value : pool.InstancesOf(concept_id)) {
      out += "instance " + name + " " + value.ToString() + "\n";
    }
  }
  return out;
}

Result<AnnotatedInstancePool> LoadPool(const std::string& text,
                                       const Ontology& ontology) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || lines[0] != kHeader) {
    return Status::ParseError("missing dexa pool header");
  }
  AnnotatedInstancePool pool(&ontology);
  for (size_t n = 1; n < lines.size(); ++n) {
    const std::string& line = lines[n];
    if (line.empty() || line[0] == '#') continue;
    auto err = [&](const std::string& msg) {
      return Status::ParseError("line " + std::to_string(n + 1) + ": " + msg);
    };
    if (!StartsWith(line, "instance ")) {
      return err("expected 'instance' line");
    }
    std::string rest = line.substr(9);
    size_t space = rest.find(' ');
    if (space == std::string::npos) return err("malformed instance line");
    std::string concept_name = rest.substr(0, space);
    ConceptId concept_id = ontology.Find(concept_name);
    if (concept_id == kInvalidConcept) {
      return err("unknown concept '" + concept_name + "'");
    }
    auto value = Value::Parse(rest.substr(space + 1));
    if (!value.ok()) return err(value.status().ToString());
    pool.Add(concept_id, std::move(value).value());
  }
  return pool;
}

}  // namespace dexa
