#include "pool/instance_pool.h"

#include <algorithm>

namespace dexa {

void AnnotatedInstancePool::Add(ConceptId c, const Value& value) {
  uint64_t hash = value.Hash();
  auto& hashes = hashes_by_concept_[c];
  auto& values = by_concept_[c];
  auto [it, inserted] = hashes.emplace(hash, values.size());
  if (!inserted) {
    // Hash hit: confirm true equality (hash collisions keep both).
    if (values[it->second].Equals(value)) return;
  }
  values.push_back(value);
  ++total_;
}

size_t AnnotatedInstancePool::CountFor(ConceptId c) const {
  auto it = by_concept_.find(c);
  return it == by_concept_.end() ? 0 : it->second.size();
}

const std::vector<Value>& AnnotatedInstancePool::InstancesOf(
    ConceptId c) const {
  static const std::vector<Value>* empty = new std::vector<Value>();
  auto it = by_concept_.find(c);
  return it == by_concept_.end() ? *empty : it->second;
}

Result<Value> AnnotatedInstancePool::GetInstance(ConceptId c) const {
  const std::vector<Value>& values = InstancesOf(c);
  if (values.empty()) {
    return Status::NotFound("pool holds no realization of concept '" +
                            ontology_->NameOf(c) + "'");
  }
  return values.front();
}

Result<Value> AnnotatedInstancePool::GetInstanceCompatible(
    ConceptId c, const StructuralType& type, size_t max_list_elements) const {
  const std::vector<Value>& values = InstancesOf(c);
  for (const Value& value : values) {
    if (value.MatchesType(type)) return value;
  }
  if (type.kind() == TypeKind::kList) {
    // Synthesize a list from scalar instances of the element concept.
    std::vector<Value> elements;
    for (const Value& value : values) {
      if (value.MatchesType(type.element())) {
        elements.push_back(value);
        if (elements.size() >= max_list_elements) break;
      }
    }
    if (!elements.empty()) return Value::ListOf(std::move(elements));
  }
  if (values.empty()) {
    return Status::NotFound("pool holds no realization of concept '" +
                            ontology_->NameOf(c) + "'");
  }
  return Status::NotFound("pool realizations of concept '" +
                          ontology_->NameOf(c) +
                          "' are structurally incompatible with " +
                          type.ToString());
}

std::vector<ConceptId> AnnotatedInstancePool::PopulatedConcepts() const {
  std::vector<ConceptId> out;
  out.reserve(by_concept_.size());
  for (const auto& [concept_id, values] : by_concept_) {
    if (!values.empty()) out.push_back(concept_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dexa
