#ifndef DEXA_POOL_POOL_IO_H_
#define DEXA_POOL_POOL_IO_H_

#include <string>

#include "common/result.h"
#include "pool/instance_pool.h"

namespace dexa {

/// Serializes the annotated instance pool to a line-oriented text format
/// (one `instance <Concept> <value>` line per entry, insertion order
/// preserved per concept — order matters because the first instance of a
/// concept is its canonical realization).
std::string SavePool(const AnnotatedInstancePool& pool);

/// Parses the SavePool format into a new pool over `ontology`.
[[nodiscard]] Result<AnnotatedInstancePool> LoadPool(const std::string& text,
                                       const Ontology& ontology);

}  // namespace dexa

#endif  // DEXA_POOL_POOL_IO_H_
