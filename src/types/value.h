#ifndef DEXA_TYPES_VALUE_H_
#define DEXA_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "types/structural_type.h"

namespace dexa {

/// A dynamically-typed data value flowing between modules: the `ins` of a
/// data example (Section 2). Values are immutable after construction and
/// value-semantic (lists/records share state on copy).
///
/// Supported shapes mirror StructuralType: null (used for optional module
/// inputs, Section 2), booleans, 64-bit integers, doubles, strings,
/// homogeneous lists and named-field records.
class Value {
 public:
  /// Null value (absent optional parameter).
  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Str(std::string v);
  static Value ListOf(std::vector<Value> items);
  static Value RecordOf(std::vector<std::pair<std::string, Value>> fields);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_record() const { return kind_ == Kind::kRecord; }

  /// Typed accessors; the value must hold the requested shape.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsList() const;
  const std::vector<std::pair<std::string, Value>>& AsRecord() const;

  /// Record field lookup; NotFound if absent (requires is_record()).
  [[nodiscard]] Result<Value> Field(std::string_view name) const;

  /// True if this record has a field `name` (requires is_record()).
  bool HasField(std::string_view name) const;

  /// Deep structural equality. Doubles compare exactly (the evaluation
  /// pipeline never derives doubles in ways that would require tolerance).
  bool Equals(const Value& other) const;

  /// Deterministic, platform-stable deep hash (used by pools and matchers).
  uint64_t Hash() const;

  /// True if this value conforms to `type` (nulls conform to everything —
  /// they stand for absent optional inputs).
  bool MatchesType(const StructuralType& type) const;

  /// JSON-style rendering: `"abc"`, `42`, `[1, 2]`, `{"id": "P12345"}`.
  std::string ToString() const;

  /// Parses the JSON-style rendering produced by ToString(). Round-trips
  /// all values except doubles with non-finite payloads (never produced).
  [[nodiscard]] static Result<Value> Parse(std::string_view text);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kList, kRecord };

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::shared_ptr<const std::string> string_;
  std::shared_ptr<const std::vector<Value>> list_;
  std::shared_ptr<const std::vector<std::pair<std::string, Value>>> record_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

}  // namespace dexa

#endif  // DEXA_TYPES_VALUE_H_
