#include "types/structural_type.h"

#include <cassert>

namespace dexa {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kString:
      return "String";
    case TypeKind::kInteger:
      return "Integer";
    case TypeKind::kDouble:
      return "Double";
    case TypeKind::kBoolean:
      return "Boolean";
    case TypeKind::kList:
      return "List";
    case TypeKind::kRecord:
      return "Record";
  }
  return "Unknown";
}

StructuralType StructuralType::MakePrimitive(TypeKind kind) {
  auto rep = std::make_shared<Rep>();
  rep->kind = kind;
  return StructuralType(std::move(rep));
}

StructuralType StructuralType::String() {
  return MakePrimitive(TypeKind::kString);
}
StructuralType StructuralType::Integer() {
  return MakePrimitive(TypeKind::kInteger);
}
StructuralType StructuralType::Double() {
  return MakePrimitive(TypeKind::kDouble);
}
StructuralType StructuralType::Boolean() {
  return MakePrimitive(TypeKind::kBoolean);
}

StructuralType StructuralType::List(StructuralType element) {
  auto rep = std::make_shared<Rep>();
  rep->kind = TypeKind::kList;
  rep->element = std::make_shared<const StructuralType>(std::move(element));
  return StructuralType(std::move(rep));
}

StructuralType StructuralType::Record(
    std::vector<std::pair<std::string, StructuralType>> fields) {
  auto rep = std::make_shared<Rep>();
  rep->kind = TypeKind::kRecord;
  rep->fields = std::move(fields);
  return StructuralType(std::move(rep));
}

const StructuralType& StructuralType::element() const {
  assert(kind() == TypeKind::kList);
  return *rep_->element;
}

const std::vector<std::pair<std::string, StructuralType>>&
StructuralType::fields() const {
  assert(kind() == TypeKind::kRecord);
  return rep_->fields;
}

bool StructuralType::Equals(const StructuralType& other) const {
  if (rep_ == other.rep_) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case TypeKind::kList:
      return element().Equals(other.element());
    case TypeKind::kRecord: {
      const auto& a = fields();
      const auto& b = other.fields();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first || !a[i].second.Equals(b[i].second)) {
          return false;
        }
      }
      return true;
    }
    default:
      return true;  // Same primitive kind.
  }
}

std::string StructuralType::ToString() const {
  switch (kind()) {
    case TypeKind::kList:
      return "List<" + element().ToString() + ">";
    case TypeKind::kRecord: {
      std::string out = "Record{";
      const auto& fs = fields();
      for (size_t i = 0; i < fs.size(); ++i) {
        if (i > 0) out += ", ";
        out += fs[i].first + ":" + fs[i].second.ToString();
      }
      out += "}";
      return out;
    }
    default:
      return TypeKindName(kind());
  }
}

namespace {

/// Recursive-descent parser over the ToString() grammar.
class TypeParser {
 public:
  explicit TypeParser(const std::string& text) : text_(text) {}

  Result<StructuralType> Parse() {
    auto type = ParseType();
    if (!type.ok()) return type;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters in type '" + text_ + "'");
    }
    return type;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  bool Consume(const std::string& token) {
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<StructuralType> ParseType() {
    SkipSpace();
    if (Consume("List<")) {
      auto element = ParseType();
      if (!element.ok()) return element;
      if (!Consume(">")) return Status::ParseError("expected '>' in List type");
      return StructuralType::List(std::move(element).value());
    }
    if (Consume("Record{")) {
      std::vector<std::pair<std::string, StructuralType>> fields;
      SkipSpace();
      if (Consume("}")) return StructuralType::Record(std::move(fields));
      for (;;) {
        SkipSpace();
        size_t colon = text_.find(':', pos_);
        if (colon == std::string::npos) {
          return Status::ParseError("expected ':' in Record field");
        }
        std::string name = text_.substr(pos_, colon - pos_);
        pos_ = colon + 1;
        auto field_type = ParseType();
        if (!field_type.ok()) return field_type;
        fields.emplace_back(std::move(name), std::move(field_type).value());
        SkipSpace();
        if (Consume("}")) return StructuralType::Record(std::move(fields));
        if (!Consume(",")) {
          return Status::ParseError("expected ',' or '}' in Record type");
        }
      }
    }
    if (Consume("String")) return StructuralType::String();
    if (Consume("Integer")) return StructuralType::Integer();
    if (Consume("Double")) return StructuralType::Double();
    if (Consume("Boolean")) return StructuralType::Boolean();
    return Status::ParseError("unknown type at '" + text_.substr(pos_) + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<StructuralType> ParseStructuralType(const std::string& text) {
  return TypeParser(text).Parse();
}

}  // namespace dexa
