#ifndef DEXA_TYPES_STRUCTURAL_TYPE_H_
#define DEXA_TYPES_STRUCTURAL_TYPE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dexa {

/// Kinds of structural (data) types a module parameter can carry, `str(i)`
/// in the paper's data model (Section 2).
enum class TypeKind {
  kString,
  kInteger,
  kDouble,
  kBoolean,
  kList,
  kRecord,
};

const char* TypeKindName(TypeKind kind);

/// An immutable structural type: a primitive, a homogeneous list, or a
/// record with named, ordered fields. Value-semantic (cheap shared-state
/// copies).
class StructuralType {
 public:
  /// Primitives.
  static StructuralType String();
  static StructuralType Integer();
  static StructuralType Double();
  static StructuralType Boolean();
  /// List with elements of `element` type.
  static StructuralType List(StructuralType element);
  /// Record with the given ordered fields.
  static StructuralType Record(
      std::vector<std::pair<std::string, StructuralType>> fields);

  TypeKind kind() const { return rep_->kind; }
  bool is_primitive() const {
    return rep_->kind != TypeKind::kList && rep_->kind != TypeKind::kRecord;
  }

  /// Element type; requires kind() == kList.
  const StructuralType& element() const;

  /// Record fields; requires kind() == kRecord.
  const std::vector<std::pair<std::string, StructuralType>>& fields() const;

  /// Structural equality (deep).
  bool Equals(const StructuralType& other) const;

  /// Structural compatibility as used when selecting pool instances for a
  /// parameter (Section 3.2: "the data structure of the instances selected
  /// need to be compatible with the data structure of the input parameter").
  /// Currently compatibility is structural equality; kept as a distinct
  /// entry point because callers depend on the *notion*, not the relation.
  bool IsCompatibleWith(const StructuralType& other) const {
    return Equals(other);
  }

  /// "String", "List<String>", "Record{id:String, mass:Double}".
  std::string ToString() const;

 private:
  struct Rep {
    TypeKind kind;
    std::shared_ptr<const StructuralType> element;  // kList
    std::vector<std::pair<std::string, StructuralType>> fields;  // kRecord
  };
  explicit StructuralType(std::shared_ptr<const Rep> rep)
      : rep_(std::move(rep)) {}

  static StructuralType MakePrimitive(TypeKind kind);

  std::shared_ptr<const Rep> rep_;
};

inline bool operator==(const StructuralType& a, const StructuralType& b) {
  return a.Equals(b);
}
inline bool operator!=(const StructuralType& a, const StructuralType& b) {
  return !a.Equals(b);
}

/// Parses the ToString() rendering back into a type ("String",
/// "List<Double>", "Record{id:String, mass:Double}"). Round-trips
/// ToString() for all types.
[[nodiscard]] Result<StructuralType> ParseStructuralType(const std::string& text);

}  // namespace dexa

#endif  // DEXA_TYPES_STRUCTURAL_TYPE_H_
