#include "types/value.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "common/strings.h"

namespace dexa {

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.kind_ = Kind::kDouble;
  out.double_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.string_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::ListOf(std::vector<Value> items) {
  Value out;
  out.kind_ = Kind::kList;
  out.list_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return out;
}

Value Value::RecordOf(std::vector<std::pair<std::string, Value>> fields) {
  Value out;
  out.kind_ = Kind::kRecord;
  out.record_ =
      std::make_shared<const std::vector<std::pair<std::string, Value>>>(
          std::move(fields));
  return out;
}

bool Value::AsBool() const {
  assert(is_bool());
  return bool_;
}

int64_t Value::AsInt() const {
  assert(is_int());
  return int_;
}

double Value::AsDouble() const {
  assert(is_double());
  return double_;
}

const std::string& Value::AsString() const {
  assert(is_string());
  return *string_;
}

const std::vector<Value>& Value::AsList() const {
  assert(is_list());
  return *list_;
}

const std::vector<std::pair<std::string, Value>>& Value::AsRecord() const {
  assert(is_record());
  return *record_;
}

Result<Value> Value::Field(std::string_view name) const {
  if (!is_record()) {
    return Status::InvalidArgument("Field() on a non-record value");
  }
  for (const auto& [field_name, value] : *record_) {
    if (field_name == name) return value;
  }
  return Status::NotFound("record has no field '" + std::string(name) + "'");
}

bool Value::HasField(std::string_view name) const {
  if (!is_record()) return false;
  for (const auto& [field_name, value] : *record_) {
    (void)value;
    if (field_name == name) return true;
  }
  return false;
}

bool Value::Equals(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kString:
      return string_ == other.string_ || *string_ == *other.string_;
    case Kind::kList: {
      if (list_ == other.list_) return true;
      if (list_->size() != other.list_->size()) return false;
      for (size_t i = 0; i < list_->size(); ++i) {
        if (!(*list_)[i].Equals((*other.list_)[i])) return false;
      }
      return true;
    }
    case Kind::kRecord: {
      if (record_ == other.record_) return true;
      if (record_->size() != other.record_->size()) return false;
      for (size_t i = 0; i < record_->size(); ++i) {
        if ((*record_)[i].first != (*other.record_)[i].first) return false;
        if (!(*record_)[i].second.Equals((*other.record_)[i].second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

uint64_t Value::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind_) * 0x9e3779b97f4a7c15ULL + 1;
  switch (kind_) {
    case Kind::kNull:
      return h;
    case Kind::kBool:
      return HashCombine(h, bool_ ? 2 : 1);
    case Kind::kInt:
      return HashCombine(h, static_cast<uint64_t>(int_));
    case Kind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      std::memcpy(&bits, &double_, sizeof(bits));
      return HashCombine(h, bits);
    }
    case Kind::kString:
      return HashCombine(h, StableHash64(*string_));
    case Kind::kList:
      for (const Value& v : *list_) h = HashCombine(h, v.Hash());
      return h;
    case Kind::kRecord:
      for (const auto& [name, v] : *record_) {
        h = HashCombine(h, StableHash64(name));
        h = HashCombine(h, v.Hash());
      }
      return h;
  }
  return h;
}

bool Value::MatchesType(const StructuralType& type) const {
  if (is_null()) return true;  // Optional inputs conform to any type.
  switch (type.kind()) {
    case TypeKind::kString:
      return is_string();
    case TypeKind::kInteger:
      return is_int();
    case TypeKind::kDouble:
      return is_double();
    case TypeKind::kBoolean:
      return is_bool();
    case TypeKind::kList: {
      if (!is_list()) return false;
      for (const Value& v : *list_) {
        if (!v.MatchesType(type.element())) return false;
      }
      return true;
    }
    case TypeKind::kRecord: {
      if (!is_record()) return false;
      const auto& fields = type.fields();
      if (record_->size() != fields.size()) return false;
      for (size_t i = 0; i < fields.size(); ++i) {
        if ((*record_)[i].first != fields[i].first) return false;
        if (!(*record_)[i].second.MatchesType(fields[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

void EscapeInto(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

void RenderInto(const Value& v, std::string& out);

}  // namespace

std::string Value::ToString() const {
  std::string out;
  RenderInto(*this, out);
  return out;
}

namespace {

void RenderInto(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.AsBool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.AsInt());
  } else if (v.is_double()) {
    std::string rendered = StrFormat("%.17g", v.AsDouble());
    // Keep doubles distinguishable from integers across a round trip:
    // integral values get an explicit fraction.
    if (rendered.find_first_of(".eE") == std::string::npos) rendered += ".0";
    out += rendered;
  } else if (v.is_string()) {
    EscapeInto(v.AsString(), out);
  } else if (v.is_list()) {
    out.push_back('[');
    const auto& items = v.AsList();
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      RenderInto(items[i], out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    const auto& fields = v.AsRecord();
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ", ";
      EscapeInto(fields[i].first, out);
      out += ": ";
      RenderInto(fields[i].second, out);
    }
    out.push_back('}');
  }
}

/// Minimal recursive-descent parser for the ToString() grammar.
class ValueParser {
 public:
  explicit ValueParser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    SkipSpace();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after value");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (Consume("null")) return Value::Null();
    if (Consume("true")) return Value::Bool(true);
    if (Consume("false")) return Value::Bool(false);
    if (c == '"') return ParseString();
    if (c == '[') return ParseList();
    if (c == '{') return ParseRecord();
    return ParseNumber();
  }

  Result<Value> ParseString() {
    auto s = ParseRawString();
    if (!s.ok()) return s.status();
    return Value::Str(std::move(s).value());
  }

  Result<std::string> ParseRawString() {
    if (text_[pos_] != '"') return Err("expected '\"'");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          default:
            return Err(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid inside exponents but strtod validates fully.
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return Err("expected a value");
    if (!is_double) {
      int64_t i;
      if (ParseInt64(token, &i)) return Value::Int(i);
    }
    double d;
    if (ParseDouble(token, &d)) return Value::Real(d);
    return Err("malformed number '" + std::string(token) + "'");
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipSpace();
    if (Consume("]")) return Value::ListOf(std::move(items));
    for (;;) {
      auto v = ParseValue();
      if (!v.ok()) return v;
      items.push_back(std::move(v).value());
      SkipSpace();
      if (Consume("]")) return Value::ListOf(std::move(items));
      if (!Consume(",")) return Err("expected ',' or ']'");
    }
  }

  Result<Value> ParseRecord() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> fields;
    SkipSpace();
    if (Consume("}")) return Value::RecordOf(std::move(fields));
    for (;;) {
      SkipSpace();
      auto name = ParseRawString();
      if (!name.ok()) return name.status();
      SkipSpace();
      if (!Consume(":")) return Err("expected ':'");
      auto v = ParseValue();
      if (!v.ok()) return v;
      fields.emplace_back(std::move(name).value(), std::move(v).value());
      SkipSpace();
      if (Consume("}")) return Value::RecordOf(std::move(fields));
      if (!Consume(",")) return Err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Value::Parse(std::string_view text) {
  return ValueParser(text).Parse();
}

}  // namespace dexa
