#ifndef DEXA_FORMATS_REPORTS_H_
#define DEXA_FORMATS_REPORTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dexa {

/// One hit in an alignment (homology-search) report.
struct AlignmentHit {
  std::string accession;
  std::string description;
  double score = 0.0;
  double evalue = 0.0;
  double identity = 0.0;  ///< Fraction in [0,1].
};

/// BLAST-style alignment report: the output of homology-search modules such
/// as the paper's SearchSimple / GetHomologous.
struct AlignmentReportData {
  std::string program;   ///< e.g. "blastp".
  std::string database;  ///< e.g. "uniprot".
  std::string query_accession;
  std::vector<AlignmentHit> hits;
};
std::string RenderAlignmentReport(const AlignmentReportData& data);
[[nodiscard]] Result<AlignmentReportData> ParseAlignmentReport(std::string_view text);

/// Output of peptide-mass-fingerprint identification (the paper's Identify
/// module): the best-matching protein for a list of peptide masses.
struct IdentificationReportData {
  std::string matched_accession;
  double score = 0.0;
  double error_tolerance = 0.0;  ///< Percentage used for matching.
  size_t peptide_count = 0;
};
std::string RenderIdentificationReport(const IdentificationReportData& data);
[[nodiscard]] Result<IdentificationReportData> ParseIdentificationReport(
    std::string_view text);

/// Generic key/value statistics block produced by analysis modules.
struct StatisticsReportData {
  std::string title;
  std::vector<std::pair<std::string, double>> stats;
};
std::string RenderStatisticsReport(const StatisticsReportData& data);
[[nodiscard]] Result<StatisticsReportData> ParseStatisticsReport(std::string_view text);

}  // namespace dexa

#endif  // DEXA_FORMATS_REPORTS_H_
