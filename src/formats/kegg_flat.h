#ifndef DEXA_FORMATS_KEGG_FLAT_H_
#define DEXA_FORMATS_KEGG_FLAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dexa {

/// Generic KEGG-style flat-file block: 12-column keys, continuation lines
/// indented, terminated by "///".
///
///   ENTRY       hsa:7157          CDS
///   NAME        TP53
///   PATHWAY     path:hsa04110
///               path:hsa04115
///   ///
///
/// All KEGG-family records (gene, enzyme, glycan, ligand, compound, pathway)
/// render into and parse out of this structure.
struct KeggFlatRecord {
  /// Ordered key -> values multimap; a key appears once, with one string per
  /// physical line.
  std::vector<std::pair<std::string, std::vector<std::string>>> fields;

  /// Returns the values for `key`, or an empty vector.
  const std::vector<std::string>& Get(std::string_view key) const;

  /// First value for `key`, or "".
  std::string GetFirst(std::string_view key) const;

  /// Appends a single-line field.
  void Add(std::string key, std::string value);

  /// Appends a multi-line field (omitted entirely if `values` is empty).
  void AddAll(std::string key, std::vector<std::string> values);
};

/// Renders with the canonical 12-column layout and trailing "///".
std::string RenderKeggFlat(const KeggFlatRecord& record);

/// Parses the layout produced by RenderKeggFlat.
[[nodiscard]] Result<KeggFlatRecord> ParseKeggFlat(std::string_view text);

}  // namespace dexa

#endif  // DEXA_FORMATS_KEGG_FLAT_H_
