#include "formats/reports.h"

#include "common/strings.h"

namespace dexa {

// ----------------------------------------------------- Alignment report --

std::string RenderAlignmentReport(const AlignmentReportData& data) {
  std::string out;
  out += "PROGRAM  " + data.program + "\n";
  out += "DATABASE " + data.database + "\n";
  out += "QUERY    " + data.query_accession + "\n";
  out += StrFormat("HITS     %zu\n", data.hits.size());
  for (const AlignmentHit& hit : data.hits) {
    out += StrFormat("HIT %s score=%.1f evalue=%.3g identity=%.3f %s\n",
                     hit.accession.c_str(), hit.score, hit.evalue,
                     hit.identity, hit.description.c_str());
  }
  out += "END\n";
  return out;
}

Result<AlignmentReportData> ParseAlignmentReport(std::string_view text) {
  AlignmentReportData data;
  bool terminated = false;
  for (const std::string& line : SplitLines(text)) {
    if (line == "END") {
      terminated = true;
      break;
    }
    if (StartsWith(line, "PROGRAM  ")) {
      data.program = Trim(line.substr(9));
    } else if (StartsWith(line, "DATABASE ")) {
      data.database = Trim(line.substr(9));
    } else if (StartsWith(line, "QUERY    ")) {
      data.query_accession = Trim(line.substr(9));
    } else if (StartsWith(line, "HITS     ")) {
      // Count line is redundant with the HIT lines; validated below.
    } else if (StartsWith(line, "HIT ")) {
      // HIT <acc> score=<s> evalue=<e> identity=<i> <description...>
      std::vector<std::string> tokens;
      for (const std::string& t : Split(line.substr(4), ' ')) {
        if (!t.empty()) tokens.push_back(t);
      }
      if (tokens.size() < 4) {
        return Status::ParseError("alignment: malformed HIT line");
      }
      AlignmentHit hit;
      hit.accession = tokens[0];
      auto field = [&](const std::string& token, const char* prefix,
                       double* out_value) -> Status {
        if (!StartsWith(token, prefix)) {
          return Status::ParseError("alignment: expected '" +
                                    std::string(prefix) + "' in HIT line");
        }
        if (!ParseDouble(token.substr(std::string(prefix).size()),
                         out_value)) {
          return Status::ParseError("alignment: bad number in '" + token +
                                    "'");
        }
        return Status::OK();
      };
      DEXA_RETURN_IF_ERROR(field(tokens[1], "score=", &hit.score));
      DEXA_RETURN_IF_ERROR(field(tokens[2], "evalue=", &hit.evalue));
      DEXA_RETURN_IF_ERROR(field(tokens[3], "identity=", &hit.identity));
      if (tokens.size() > 4) {
        hit.description = Join(
            std::vector<std::string>(tokens.begin() + 4, tokens.end()), " ");
      }
      data.hits.push_back(std::move(hit));
    } else if (!Trim(line).empty()) {
      return Status::ParseError("alignment: unknown line '" + line + "'");
    }
  }
  if (!terminated) return Status::ParseError("alignment: missing END");
  return data;
}

// ------------------------------------------------ Identification report --

std::string RenderIdentificationReport(const IdentificationReportData& data) {
  std::string out;
  out += "IDENTIFICATION REPORT\n";
  out += "MATCH     " + data.matched_accession + "\n";
  out += StrFormat("SCORE     %.2f\n", data.score);
  out += StrFormat("TOLERANCE %.2f%%\n", data.error_tolerance);
  out += StrFormat("PEPTIDES  %zu\n", data.peptide_count);
  return out;
}

Result<IdentificationReportData> ParseIdentificationReport(
    std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || lines[0] != "IDENTIFICATION REPORT") {
    return Status::ParseError("identification: missing header");
  }
  IdentificationReportData data;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "MATCH     ")) {
      data.matched_accession = Trim(line.substr(10));
    } else if (StartsWith(line, "SCORE     ")) {
      if (!ParseDouble(line.substr(10), &data.score)) {
        return Status::ParseError("identification: bad SCORE");
      }
    } else if (StartsWith(line, "TOLERANCE ")) {
      std::string tolerance = Trim(line.substr(10));
      if (EndsWith(tolerance, "%")) tolerance.pop_back();
      if (!ParseDouble(tolerance, &data.error_tolerance)) {
        return Status::ParseError("identification: bad TOLERANCE");
      }
    } else if (StartsWith(line, "PEPTIDES  ")) {
      int64_t count;
      if (!ParseInt64(line.substr(10), &count) || count < 0) {
        return Status::ParseError("identification: bad PEPTIDES");
      }
      data.peptide_count = static_cast<size_t>(count);
    } else if (!Trim(line).empty()) {
      return Status::ParseError("identification: unknown line '" + line + "'");
    }
  }
  return data;
}

// -------------------------------------------------- Statistics report ----

std::string RenderStatisticsReport(const StatisticsReportData& data) {
  std::string out = "STATISTICS " + data.title + "\n";
  for (const auto& [key, value] : data.stats) {
    out += StrFormat("%-24s %.6g\n", key.c_str(), value);
  }
  out += "END\n";
  return out;
}

Result<StatisticsReportData> ParseStatisticsReport(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || !StartsWith(lines[0], "STATISTICS ")) {
    return Status::ParseError("statistics: missing header");
  }
  StatisticsReportData data;
  data.title = Trim(lines[0].substr(11));
  bool terminated = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line == "END") {
      terminated = true;
      break;
    }
    if (Trim(line).empty()) continue;
    size_t split = line.find_last_of(' ');
    if (split == std::string::npos) {
      return Status::ParseError("statistics: malformed line '" + line + "'");
    }
    std::string key = Trim(line.substr(0, split));
    double value;
    if (!ParseDouble(line.substr(split + 1), &value)) {
      return Status::ParseError("statistics: bad value in '" + line + "'");
    }
    data.stats.emplace_back(std::move(key), value);
  }
  if (!terminated) return Status::ParseError("statistics: missing END");
  return data;
}

}  // namespace dexa
