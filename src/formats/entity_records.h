#ifndef DEXA_FORMATS_ENTITY_RECORDS_H_
#define DEXA_FORMATS_ENTITY_RECORDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dexa {

/// Typed contents of the non-sequence database records served by the
/// synthetic knowledge base. Each struct has a deterministic flat-file
/// rendering (KEGG-style for the KEGG family, OBO-style for GO terms,
/// Pfam/InterPro/Disease-style stanzas otherwise) and a parser that accepts
/// exactly the renderer's output.

/// KEGG gene entry ("hsa:7157" style ids).
struct GeneRecordData {
  std::string gene_id;
  std::string symbol;
  std::string organism;
  std::string definition;
  std::vector<std::string> pathway_ids;
  std::vector<std::string> go_term_ids;
};
std::string RenderGeneRecord(const GeneRecordData& data);
[[nodiscard]] Result<GeneRecordData> ParseGeneRecord(std::string_view text);

/// KEGG/ENZYME entry ("1.1.1.1" EC numbers).
struct EnzymeRecordData {
  std::string ec_number;
  std::string name;
  std::string reaction;
  std::vector<std::string> substrate_ids;  ///< Compound ids.
  std::vector<std::string> product_ids;    ///< Compound ids.
  std::vector<std::string> gene_ids;
};
std::string RenderEnzymeRecord(const EnzymeRecordData& data);
[[nodiscard]] Result<EnzymeRecordData> ParseEnzymeRecord(std::string_view text);

/// KEGG GLYCAN entry ("G00001").
struct GlycanRecordData {
  std::string glycan_id;
  std::string name;
  std::string composition;
  double mass = 0.0;
};
std::string RenderGlycanRecord(const GlycanRecordData& data);
[[nodiscard]] Result<GlycanRecordData> ParseGlycanRecord(std::string_view text);

/// Ligand entry ("L000001").
struct LigandRecordData {
  std::string ligand_id;
  std::string name;
  std::string formula;
  double mass = 0.0;
  std::vector<std::string> target_accessions;  ///< Uniprot accessions.
};
std::string RenderLigandRecord(const LigandRecordData& data);
[[nodiscard]] Result<LigandRecordData> ParseLigandRecord(std::string_view text);

/// KEGG COMPOUND entry ("C00001").
struct CompoundRecordData {
  std::string compound_id;
  std::string name;
  std::string formula;
  double mass = 0.0;
  std::vector<std::string> pathway_ids;
};
std::string RenderCompoundRecord(const CompoundRecordData& data);
[[nodiscard]] Result<CompoundRecordData> ParseCompoundRecord(std::string_view text);

/// KEGG PATHWAY entry ("path:hsa04110").
struct PathwayRecordData {
  std::string pathway_id;
  std::string name;
  std::string organism;
  std::vector<std::string> gene_ids;
  std::vector<std::string> compound_ids;
};
std::string RenderPathwayRecord(const PathwayRecordData& data);
[[nodiscard]] Result<PathwayRecordData> ParsePathwayRecord(std::string_view text);

/// GO term ("GO:0008150"), rendered as an OBO stanza.
struct GoTermData {
  std::string go_id;
  std::string name;
  std::string nspace;  ///< biological_process / molecular_function / ...
  std::string definition;
};
std::string RenderGoTerm(const GoTermData& data);
[[nodiscard]] Result<GoTermData> ParseGoTerm(std::string_view text);

/// InterPro entry ("IPR000001").
struct InterProRecordData {
  std::string interpro_id;
  std::string name;
  std::string entry_type;  ///< Family / Domain / Site.
  std::vector<std::string> member_accessions;
};
std::string RenderInterProRecord(const InterProRecordData& data);
[[nodiscard]] Result<InterProRecordData> ParseInterProRecord(std::string_view text);

/// Pfam entry ("PF00001").
struct PfamRecordData {
  std::string pfam_id;
  std::string name;
  std::string clan;
  std::string description;
};
std::string RenderPfamRecord(const PfamRecordData& data);
[[nodiscard]] Result<PfamRecordData> ParsePfamRecord(std::string_view text);

/// Disease entry ("H00001").
struct DiseaseRecordData {
  std::string disease_id;
  std::string name;
  std::string description;
  std::vector<std::string> gene_ids;
};
std::string RenderDiseaseRecord(const DiseaseRecordData& data);
[[nodiscard]] Result<DiseaseRecordData> ParseDiseaseRecord(std::string_view text);

}  // namespace dexa

#endif  // DEXA_FORMATS_ENTITY_RECORDS_H_
