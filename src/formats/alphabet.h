#ifndef DEXA_FORMATS_ALPHABET_H_
#define DEXA_FORMATS_ALPHABET_H_

#include <string>
#include <string_view>

namespace dexa {

/// Residue alphabets of biological sequences.
enum class SeqAlphabet {
  kDna,      // ACGT
  kRna,      // ACGU
  kProtein,  // 20 amino acids
};

const char* SeqAlphabetName(SeqAlphabet a);

/// The residue characters of `a` ("ACGT", "ACGU", "ACDEFGHIKLMNPQRSTVWY").
std::string_view AlphabetChars(SeqAlphabet a);

/// True if every character of `seq` belongs to the alphabet (uppercase).
bool IsValidSequence(std::string_view seq, SeqAlphabet a);

/// Classifies a raw sequence: DNA if only ACGT, RNA if only ACGU with at
/// least one U, protein otherwise (if valid protein); nullopt-like result is
/// expressed by returning `fallback`.
SeqAlphabet ClassifySequence(std::string_view seq,
                             SeqAlphabet fallback = SeqAlphabet::kProtein);

/// DNA -> RNA transcription (T -> U). Requires a valid DNA sequence.
std::string Transcribe(std::string_view dna);

/// RNA -> DNA back-transcription (U -> T). Requires a valid RNA sequence.
std::string ReverseTranscribe(std::string_view rna);

/// Reverse complement of a DNA sequence.
std::string ReverseComplementDna(std::string_view dna);

/// Translates DNA/RNA to protein using the standard genetic code, reading
/// frame 0, stopping at the first stop codon. Incomplete trailing codons are
/// ignored.
std::string Translate(std::string_view nucleotides);

/// Fraction of G/C residues in a nucleotide sequence (0 for empty input).
double GcContent(std::string_view nucleotides);

/// Monoisotopic-ish molecular weight of a protein sequence (didactic
/// approximation: sum of per-residue average masses + water).
double ProteinMass(std::string_view protein);

}  // namespace dexa

#endif  // DEXA_FORMATS_ALPHABET_H_
