#ifndef DEXA_FORMATS_TERM_INSTANCE_H_
#define DEXA_FORMATS_TERM_INSTANCE_H_

#include <string>
#include <string_view>

namespace dexa {

/// Instances of the OntologyTerm concepts are strings of the form
/// "<SOURCE>:<id> ! <label>" (the OBO cross-reference notation), e.g.
/// "GO:0008150 ! protein folding" or "PW:hsa00100 ! Cell cycle".
/// These helpers construct and dissect such instances.

/// Builds a term instance string.
std::string MakeTermInstance(std::string_view source, std::string_view id,
                             std::string_view label);

/// True if `s` is a term instance of the given source prefix.
bool IsTermOfSource(std::string_view s, std::string_view source);

/// The "<SOURCE>:<id>" part, or "" if malformed.
std::string TermId(std::string_view s);

/// The "<SOURCE>" part, or "" if malformed.
std::string TermSource(std::string_view s);

/// The label part, or "" if malformed.
std::string TermLabel(std::string_view s);

}  // namespace dexa

#endif  // DEXA_FORMATS_TERM_INSTANCE_H_
