#include "formats/term_instance.h"

#include "common/strings.h"

namespace dexa {

std::string MakeTermInstance(std::string_view source, std::string_view id,
                             std::string_view label) {
  return std::string(source) + ":" + std::string(id) + " ! " +
         std::string(label);
}

bool IsTermOfSource(std::string_view s, std::string_view source) {
  return StartsWith(s, std::string(source) + ":") && Contains(s, " ! ");
}

std::string TermId(std::string_view s) {
  size_t bang = s.find(" ! ");
  if (bang == std::string_view::npos) return "";
  return std::string(s.substr(0, bang));
}

std::string TermSource(std::string_view s) {
  std::string id = TermId(s);
  size_t colon = id.find(':');
  if (colon == std::string::npos) return "";
  return id.substr(0, colon);
}

std::string TermLabel(std::string_view s) {
  size_t bang = s.find(" ! ");
  if (bang == std::string_view::npos) return "";
  return std::string(s.substr(bang + 3));
}

}  // namespace dexa
