#include "formats/sequence_record.h"

#include <cmath>

#include "common/strings.h"

namespace dexa {

bool operator==(const SequenceData& a, const SequenceData& b) {
  return a.accession == b.accession && a.name == b.name &&
         a.organism == b.organism && a.description == b.description &&
         a.sequence == b.sequence && a.alphabet == b.alphabet;
}

namespace {

/// Units keyword for a LOCUS/ID style length field.
const char* LengthUnits(SeqAlphabet a) {
  return a == SeqAlphabet::kProtein ? "AA" : "BP";
}

const char* MoleculeToken(SeqAlphabet a) {
  switch (a) {
    case SeqAlphabet::kDna:
      return "DNA";
    case SeqAlphabet::kRna:
      return "RNA";
    case SeqAlphabet::kProtein:
      return "PRT";
  }
  return "UNK";
}

Result<SeqAlphabet> AlphabetFromToken(std::string_view token) {
  if (token == "DNA") return SeqAlphabet::kDna;
  if (token == "RNA") return SeqAlphabet::kRna;
  if (token == "PRT") return SeqAlphabet::kProtein;
  return Status::ParseError("unknown molecule token '" + std::string(token) +
                            "'");
}

/// Renders `seq` in blocks of 10 residues, 6 blocks per line, with the given
/// left margin — the EMBL/Uniprot sequence-paragraph layout.
std::string RenderBlockedSequence(std::string_view seq, const char* margin) {
  std::string out;
  for (size_t i = 0; i < seq.size(); i += 60) {
    out += margin;
    std::string_view line = seq.substr(i, 60);
    for (size_t j = 0; j < line.size(); j += 10) {
      if (j > 0) out += ' ';
      out += line.substr(j, 10);
    }
    out += '\n';
  }
  return out;
}

/// Strips spaces and digits from sequence-paragraph lines.
std::string UnblockSequence(const std::vector<std::string>& lines,
                            size_t first, size_t last) {
  std::string seq;
  for (size_t i = first; i < last; ++i) {
    for (char c : lines[i]) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        seq.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
    }
  }
  return seq;
}

}  // namespace

// ---------------------------------------------------------------- FASTA --

std::string RenderFasta(const SequenceData& data) {
  std::string out = ">" + data.accession;
  if (!data.name.empty()) out += " " + data.name;
  if (!data.description.empty()) out += " " + data.description;
  if (!data.organism.empty()) out += " [" + data.organism + "]";
  out += "\n";
  for (const std::string& line : WrapFixed(data.sequence, 60)) {
    out += line;
    out += "\n";
  }
  return out;
}

Result<SequenceData> ParseFasta(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || lines[0].empty() || lines[0][0] != '>') {
    return Status::ParseError("FASTA: missing '>' header line");
  }
  SequenceData data;
  std::string header = lines[0].substr(1);
  // Trailing "[organism]".
  size_t ob = header.rfind('[');
  if (ob != std::string::npos && EndsWith(Trim(header), "]")) {
    data.organism = Trim(header.substr(ob + 1, header.rfind(']') - ob - 1));
    header = Trim(header.substr(0, ob));
  } else {
    header = Trim(header);
  }
  std::vector<std::string> tokens = Split(header, ' ');
  if (tokens.empty() || tokens[0].empty()) {
    return Status::ParseError("FASTA: empty accession");
  }
  data.accession = tokens[0];
  if (tokens.size() > 1) data.name = tokens[1];
  if (tokens.size() > 2) {
    data.description =
        Join(std::vector<std::string>(tokens.begin() + 2, tokens.end()), " ");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty()) continue;
    data.sequence += line;
  }
  data.alphabet = ClassifySequence(data.sequence);
  return data;
}

// -------------------------------------------------------------- Uniprot --

std::string RenderUniprot(const SequenceData& data) {
  std::string out;
  out += StrFormat("ID   %-20s Reviewed; %8zu %s.\n", data.name.c_str(),
                   data.sequence.size(), LengthUnits(data.alphabet));
  out += "AC   " + data.accession + ";\n";
  out += "DE   RecName: Full=" + data.description + ";\n";
  out += "OS   " + data.organism + ".\n";
  out += StrFormat("SQ   SEQUENCE %8zu %s; %10.0f MW;\n", data.sequence.size(),
                   LengthUnits(data.alphabet),
                   std::floor(ProteinMass(data.sequence)));
  out += RenderBlockedSequence(data.sequence, "     ");
  out += "//\n";
  return out;
}

Result<SequenceData> ParseUniprot(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  SequenceData data;
  size_t seq_start = lines.size();
  size_t seq_end = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "ID   ")) {
      std::string rest = Trim(line.substr(5));
      size_t space = rest.find(' ');
      data.name = rest.substr(0, space);
    } else if (StartsWith(line, "AC   ")) {
      std::string acc = Trim(line.substr(5));
      if (EndsWith(acc, ";")) acc.pop_back();
      data.accession = acc;
    } else if (StartsWith(line, "DE   ")) {
      std::string de = Trim(line.substr(5));
      if (StartsWith(de, "RecName: Full=")) de = de.substr(14);
      if (EndsWith(de, ";")) de.pop_back();
      data.description = de;
    } else if (StartsWith(line, "OS   ")) {
      std::string os_line = Trim(line.substr(5));
      if (EndsWith(os_line, ".")) os_line.pop_back();
      data.organism = os_line;
    } else if (StartsWith(line, "SQ   ")) {
      seq_start = i + 1;
    } else if (line == "//") {
      seq_end = i;
      break;
    }
  }
  if (data.accession.empty()) {
    return Status::ParseError("Uniprot: missing AC line");
  }
  if (seq_start >= lines.size()) {
    return Status::ParseError("Uniprot: missing SQ paragraph");
  }
  data.sequence = UnblockSequence(lines, seq_start, seq_end);
  data.alphabet = ClassifySequence(data.sequence);
  return data;
}

// ----------------------------------------------------------------- EMBL --

std::string RenderEmbl(const SequenceData& data) {
  std::string out;
  out += StrFormat("ID   %s; SV 1; linear; %s; STD; %zu %s.\n",
                   data.name.c_str(), MoleculeToken(data.alphabet),
                   data.sequence.size(), LengthUnits(data.alphabet));
  out += "AC   " + data.accession + ";\n";
  out += "DE   " + data.description + "\n";
  out += "OS   " + data.organism + "\n";
  out += StrFormat("SQ   Sequence %zu %s;\n", data.sequence.size(),
                   LengthUnits(data.alphabet));
  out += RenderBlockedSequence(data.sequence, "     ");
  out += "//\n";
  return out;
}

Result<SequenceData> ParseEmbl(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  SequenceData data;
  bool saw_id = false;
  size_t seq_start = lines.size();
  size_t seq_end = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "ID   ")) {
      saw_id = true;
      std::vector<std::string> parts = Split(line.substr(5), ';');
      if (parts.size() < 4) return Status::ParseError("EMBL: malformed ID");
      data.name = Trim(parts[0]);
      auto alpha = AlphabetFromToken(Trim(parts[3]));
      if (!alpha.ok()) return alpha.status();
      data.alphabet = *alpha;
    } else if (StartsWith(line, "AC   ")) {
      std::string acc = Trim(line.substr(5));
      if (EndsWith(acc, ";")) acc.pop_back();
      data.accession = acc;
    } else if (StartsWith(line, "DE   ")) {
      data.description = Trim(line.substr(5));
    } else if (StartsWith(line, "OS   ")) {
      data.organism = Trim(line.substr(5));
    } else if (StartsWith(line, "SQ   ")) {
      seq_start = i + 1;
    } else if (line == "//") {
      seq_end = i;
      break;
    }
  }
  if (!saw_id) return Status::ParseError("EMBL: missing ID line");
  if (seq_start >= lines.size()) {
    return Status::ParseError("EMBL: missing SQ paragraph");
  }
  data.sequence = UnblockSequence(lines, seq_start, seq_end);
  return data;
}

// -------------------------------------------------------------- GenBank --

std::string RenderGenBank(const SequenceData& data) {
  std::string units = data.alphabet == SeqAlphabet::kProtein ? "aa" : "bp";
  std::string out;
  out += StrFormat("LOCUS       %-16s %8zu %s    %s     linear\n",
                   data.name.c_str(), data.sequence.size(), units.c_str(),
                   MoleculeToken(data.alphabet));
  out += "DEFINITION  " + data.description + ".\n";
  out += "ACCESSION   " + data.accession + "\n";
  out += "SOURCE      " + data.organism + "\n";
  out += "ORIGIN\n";
  const std::string lower = ToLower(data.sequence);
  for (size_t i = 0; i < lower.size(); i += 60) {
    out += StrFormat("%9zu", i + 1);
    std::string_view line = std::string_view(lower).substr(i, 60);
    for (size_t j = 0; j < line.size(); j += 10) {
      out += ' ';
      out += line.substr(j, 10);
    }
    out += '\n';
  }
  out += "//\n";
  return out;
}

Result<SequenceData> ParseGenBank(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  SequenceData data;
  bool saw_locus = false;
  size_t seq_start = lines.size();
  size_t seq_end = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "LOCUS")) {
      saw_locus = true;
      std::vector<std::string> tokens;
      for (const std::string& t : Split(Trim(line.substr(5)), ' ')) {
        if (!t.empty()) tokens.push_back(t);
      }
      if (tokens.size() < 4) return Status::ParseError("GenBank: bad LOCUS");
      data.name = tokens[0];
      auto alpha = AlphabetFromToken(tokens[3]);
      if (!alpha.ok()) return alpha.status();
      data.alphabet = *alpha;
    } else if (StartsWith(line, "DEFINITION  ")) {
      std::string def = Trim(line.substr(12));
      if (EndsWith(def, ".")) def.pop_back();
      data.description = def;
    } else if (StartsWith(line, "ACCESSION   ")) {
      data.accession = Trim(line.substr(12));
    } else if (StartsWith(line, "SOURCE      ")) {
      data.organism = Trim(line.substr(12));
    } else if (StartsWith(line, "ORIGIN")) {
      seq_start = i + 1;
    } else if (line == "//") {
      seq_end = i;
      break;
    }
  }
  if (!saw_locus) return Status::ParseError("GenBank: missing LOCUS line");
  if (seq_start >= lines.size()) {
    return Status::ParseError("GenBank: missing ORIGIN paragraph");
  }
  data.sequence = UnblockSequence(lines, seq_start, seq_end);
  return data;
}

// ------------------------------------------------------------------ PDB --

namespace {

/// Residue <-> 3-letter code tables for SEQRES lines.
constexpr struct {
  char one;
  const char* three;
} kProteinCodes[] = {
    {'A', "ALA"}, {'C', "CYS"}, {'D', "ASP"}, {'E', "GLU"}, {'F', "PHE"},
    {'G', "GLY"}, {'H', "HIS"}, {'I', "ILE"}, {'K', "LYS"}, {'L', "LEU"},
    {'M', "MET"}, {'N', "ASN"}, {'P', "PRO"}, {'Q', "GLN"}, {'R', "ARG"},
    {'S', "SER"}, {'T', "THR"}, {'V', "VAL"}, {'W', "TRP"}, {'Y', "TYR"},
};

std::string ThreeLetter(char residue, SeqAlphabet a) {
  if (a == SeqAlphabet::kProtein) {
    for (const auto& c : kProteinCodes) {
      if (c.one == residue) return c.three;
    }
    return "UNK";
  }
  // Nucleotide chains use " DA"/" DC"... for DNA and single letters for RNA.
  if (a == SeqAlphabet::kDna) return std::string(" D") + residue;
  return std::string("  ") + residue;
}

Result<char> OneLetter(const std::string& code) {
  for (const auto& c : kProteinCodes) {
    if (code == c.three) return c.one;
  }
  if (code.size() == 2 && code[0] == 'D') return code[1];  // DNA "DA" etc.
  if (code.size() == 1) return code[0];                    // RNA.
  return Status::ParseError("PDB: unknown residue code '" + code + "'");
}

}  // namespace

std::string RenderPdb(const SequenceData& data) {
  std::string out;
  out += StrFormat("HEADER    %-40s%s\n", "MACROMOLECULE",
                   data.accession.c_str());
  out += "TITLE     " + data.description + "\n";
  out += "COMPND    MOL_ID: 1; MOLECULE: " + data.name +
         "; ORGANISM: " + data.organism + "\n";
  size_t line_no = 1;
  for (size_t i = 0; i < data.sequence.size(); i += 13) {
    out += StrFormat("SEQRES %3zu A %4zu ", line_no++, data.sequence.size());
    std::string_view chunk = std::string_view(data.sequence).substr(i, 13);
    for (size_t j = 0; j < chunk.size(); ++j) {
      if (j > 0) out += ' ';
      out += StrFormat("%3s", ThreeLetter(chunk[j], data.alphabet).c_str());
    }
    out += '\n';
  }
  out += "END\n";
  return out;
}

Result<SequenceData> ParsePdb(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  SequenceData data;
  bool saw_header = false;
  for (const std::string& line : lines) {
    if (StartsWith(line, "HEADER")) {
      saw_header = true;
      std::string rest = Trim(line.substr(6));
      size_t last_space = rest.rfind(' ');
      data.accession = last_space == std::string::npos
                           ? rest
                           : rest.substr(last_space + 1);
    } else if (StartsWith(line, "TITLE     ")) {
      data.description = Trim(line.substr(10));
    } else if (StartsWith(line, "COMPND    ")) {
      for (const std::string& part : Split(line.substr(10), ';')) {
        std::string field = Trim(part);
        if (StartsWith(field, "MOLECULE: ")) data.name = field.substr(10);
        if (StartsWith(field, "ORGANISM: ")) data.organism = field.substr(10);
      }
    } else if (StartsWith(line, "SEQRES")) {
      // Columns: SEQRES <ln> <chain> <len> <codes...>
      std::vector<std::string> tokens;
      for (const std::string& t : Split(Trim(line.substr(6)), ' ')) {
        if (!t.empty()) tokens.push_back(t);
      }
      if (tokens.size() < 3) return Status::ParseError("PDB: bad SEQRES");
      for (size_t i = 3; i < tokens.size(); ++i) {
        auto residue = OneLetter(tokens[i]);
        if (!residue.ok()) return residue.status();
        data.sequence.push_back(*residue);
      }
    }
  }
  if (!saw_header) return Status::ParseError("PDB: missing HEADER line");
  data.alphabet = ClassifySequence(data.sequence);
  return data;
}

}  // namespace dexa
