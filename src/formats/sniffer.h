#ifndef DEXA_FORMATS_SNIFFER_H_
#define DEXA_FORMATS_SNIFFER_H_

#include <string>
#include <string_view>

namespace dexa {

/// Identifies the flat-file format of `text` and returns the name of the
/// corresponding myGrid concept ("FastaRecord", "UniprotRecord",
/// "KEGGGeneRecord", "GORecord", "AlignmentReport", ...), or "" if the text
/// matches no known format.
///
/// The sniffer powers the simulated users of Section 5 (a user "recognizes"
/// an output they have seen before) and the validation of format-
/// transformation modules.
std::string SniffFormat(std::string_view text);

}  // namespace dexa

#endif  // DEXA_FORMATS_SNIFFER_H_
