#ifndef DEXA_FORMATS_SEQUENCE_RECORD_H_
#define DEXA_FORMATS_SEQUENCE_RECORD_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "formats/alphabet.h"

namespace dexa {

/// The canonical content of a sequence database entry, independent of its
/// flat-file serialization. Format-transformation modules parse one
/// serialization into this struct and render another — the "shim" role the
/// paper highlights (Section 5, Format transformation).
struct SequenceData {
  std::string accession;     ///< Primary accession, e.g. "P12345".
  std::string name;          ///< Entry name / locus, e.g. "CYC_HUMAN".
  std::string organism;      ///< Species, e.g. "Homo sapiens".
  std::string description;   ///< Free-text description line.
  std::string sequence;      ///< Residues, uppercase, unwrapped.
  SeqAlphabet alphabet = SeqAlphabet::kProtein;
};

bool operator==(const SequenceData& a, const SequenceData& b);

/// Serializations of SequenceData. Renderers are deterministic; parsers
/// accept exactly what the corresponding renderer produces plus benign
/// whitespace variation, and fail with ParseError otherwise.
///
/// FASTA:   >ACC NAME DESCRIPTION / wrapped residues
std::string RenderFasta(const SequenceData& data);
[[nodiscard]] Result<SequenceData> ParseFasta(std::string_view text);

/// Uniprot-style flat file: ID/AC/DE/OS/SQ stanza, '//' terminator.
std::string RenderUniprot(const SequenceData& data);
[[nodiscard]] Result<SequenceData> ParseUniprot(std::string_view text);

/// EMBL-style flat file: ID/AC/DE/OS/SQ with numbered sequence lines.
std::string RenderEmbl(const SequenceData& data);
[[nodiscard]] Result<SequenceData> ParseEmbl(std::string_view text);

/// GenBank-style flat file: LOCUS/DEFINITION/ACCESSION/SOURCE/ORIGIN.
std::string RenderGenBank(const SequenceData& data);
[[nodiscard]] Result<SequenceData> ParseGenBank(std::string_view text);

/// PDB-style header: HEADER/TITLE/COMPND/SEQRES lines.
std::string RenderPdb(const SequenceData& data);
[[nodiscard]] Result<SequenceData> ParsePdb(std::string_view text);

}  // namespace dexa

#endif  // DEXA_FORMATS_SEQUENCE_RECORD_H_
