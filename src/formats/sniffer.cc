#include "formats/sniffer.h"

#include "common/strings.h"
#include "formats/kegg_flat.h"

namespace dexa {

std::string SniffFormat(std::string_view text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return "";

  if (trimmed[0] == '>') return "FastaRecord";
  if (StartsWith(trimmed, "[Term]")) return "GORecord";
  if (StartsWith(trimmed, "#=GF AC")) return "PfamRecord";
  if (StartsWith(trimmed, "AC   IPR")) return "InterProRecord";
  if (StartsWith(trimmed, "LOCUS")) return "GenBankRecord";
  if (StartsWith(trimmed, "HEADER")) return "PDBRecord";
  if (StartsWith(trimmed, "PROGRAM  ")) return "AlignmentReport";
  if (StartsWith(trimmed, "IDENTIFICATION REPORT")) {
    return "IdentificationReport";
  }
  if (StartsWith(trimmed, "STATISTICS ")) return "StatisticsReport";

  if (StartsWith(trimmed, "ID   ")) {
    // Uniprot and EMBL both open with an ID line; EMBL's carries "; SV ".
    if (Contains(trimmed, "; SV ")) return "EMBLRecord";
    return "UniprotRecord";
  }

  if (StartsWith(trimmed, "ENTRY")) {
    // KEGG family: the ENTRY line's trailing keyword names the database.
    auto record = ParseKeggFlat(text);
    if (!record.ok()) return "";
    std::string entry = record->GetFirst("ENTRY");
    if (EndsWith(entry, "CDS")) return "KEGGGeneRecord";
    if (EndsWith(entry, "Enzyme")) return "EnzymeRecord";
    if (EndsWith(entry, "Glycan")) return "GlycanRecord";
    if (EndsWith(entry, "Ligand")) return "LigandRecord";
    if (EndsWith(entry, "Compound")) return "CompoundRecord";
    if (EndsWith(entry, "Pathway")) return "PathwayRecord";
    if (EndsWith(entry, "Disease")) return "DiseaseRecord";
    return "";
  }

  return "";
}

}  // namespace dexa
