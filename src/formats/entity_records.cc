#include "formats/entity_records.h"

#include "common/strings.h"
#include "common/table.h"
#include "formats/kegg_flat.h"

namespace dexa {

namespace {

/// Requires a non-empty ENTRY field whose first token is returned.
Result<std::string> EntryId(const KeggFlatRecord& record,
                            std::string_view what) {
  std::string entry = record.GetFirst("ENTRY");
  if (entry.empty()) {
    return Status::ParseError(std::string(what) + ": missing ENTRY");
  }
  size_t space = entry.find(' ');
  return space == std::string::npos ? entry : entry.substr(0, space);
}

Result<double> ParseMassField(const KeggFlatRecord& record,
                              std::string_view what) {
  std::string raw = record.GetFirst("MASS");
  if (raw.empty()) return Status::ParseError(std::string(what) + ": no MASS");
  double mass;
  if (!ParseDouble(raw, &mass)) {
    return Status::ParseError(std::string(what) + ": bad MASS '" + raw + "'");
  }
  return mass;
}

}  // namespace

// ----------------------------------------------------------------- Gene --

std::string RenderGeneRecord(const GeneRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.gene_id + "  CDS");
  record.Add("NAME", data.symbol);
  record.Add("DEFINITION", data.definition);
  record.Add("ORGANISM", data.organism);
  record.AddAll("PATHWAY", data.pathway_ids);
  record.AddAll("GO", data.go_term_ids);
  return RenderKeggFlat(record);
}

Result<GeneRecordData> ParseGeneRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  GeneRecordData data;
  auto id = EntryId(*record, "gene");
  if (!id.ok()) return id.status();
  data.gene_id = *id;
  data.symbol = record->GetFirst("NAME");
  data.definition = record->GetFirst("DEFINITION");
  data.organism = record->GetFirst("ORGANISM");
  data.pathway_ids = record->Get("PATHWAY");
  data.go_term_ids = record->Get("GO");
  return data;
}

// --------------------------------------------------------------- Enzyme --

std::string RenderEnzymeRecord(const EnzymeRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", "EC " + data.ec_number + "  Enzyme");
  record.Add("NAME", data.name);
  record.Add("REACTION", data.reaction);
  record.AddAll("SUBSTRATE", data.substrate_ids);
  record.AddAll("PRODUCT", data.product_ids);
  record.AddAll("GENES", data.gene_ids);
  return RenderKeggFlat(record);
}

Result<EnzymeRecordData> ParseEnzymeRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  EnzymeRecordData data;
  std::string entry = record->GetFirst("ENTRY");
  if (!StartsWith(entry, "EC ")) {
    return Status::ParseError("enzyme: ENTRY must start with 'EC '");
  }
  std::string rest = entry.substr(3);
  size_t space = rest.find(' ');
  data.ec_number = space == std::string::npos ? rest : rest.substr(0, space);
  data.name = record->GetFirst("NAME");
  data.reaction = record->GetFirst("REACTION");
  data.substrate_ids = record->Get("SUBSTRATE");
  data.product_ids = record->Get("PRODUCT");
  data.gene_ids = record->Get("GENES");
  return data;
}

// --------------------------------------------------------------- Glycan --

std::string RenderGlycanRecord(const GlycanRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.glycan_id + "  Glycan");
  record.Add("NAME", data.name);
  record.Add("COMPOSITION", data.composition);
  record.Add("MASS", FormatFixed(data.mass, 2));
  return RenderKeggFlat(record);
}

Result<GlycanRecordData> ParseGlycanRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  GlycanRecordData data;
  auto id = EntryId(*record, "glycan");
  if (!id.ok()) return id.status();
  data.glycan_id = *id;
  data.name = record->GetFirst("NAME");
  data.composition = record->GetFirst("COMPOSITION");
  auto mass = ParseMassField(*record, "glycan");
  if (!mass.ok()) return mass.status();
  data.mass = *mass;
  return data;
}

// --------------------------------------------------------------- Ligand --

std::string RenderLigandRecord(const LigandRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.ligand_id + "  Ligand");
  record.Add("NAME", data.name);
  record.Add("FORMULA", data.formula);
  record.Add("MASS", FormatFixed(data.mass, 2));
  record.AddAll("TARGET", data.target_accessions);
  return RenderKeggFlat(record);
}

Result<LigandRecordData> ParseLigandRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  LigandRecordData data;
  auto id = EntryId(*record, "ligand");
  if (!id.ok()) return id.status();
  data.ligand_id = *id;
  data.name = record->GetFirst("NAME");
  data.formula = record->GetFirst("FORMULA");
  auto mass = ParseMassField(*record, "ligand");
  if (!mass.ok()) return mass.status();
  data.mass = *mass;
  data.target_accessions = record->Get("TARGET");
  return data;
}

// ------------------------------------------------------------- Compound --

std::string RenderCompoundRecord(const CompoundRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.compound_id + "  Compound");
  record.Add("NAME", data.name);
  record.Add("FORMULA", data.formula);
  record.Add("MASS", FormatFixed(data.mass, 2));
  record.AddAll("PATHWAY", data.pathway_ids);
  return RenderKeggFlat(record);
}

Result<CompoundRecordData> ParseCompoundRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  CompoundRecordData data;
  auto id = EntryId(*record, "compound");
  if (!id.ok()) return id.status();
  data.compound_id = *id;
  data.name = record->GetFirst("NAME");
  data.formula = record->GetFirst("FORMULA");
  auto mass = ParseMassField(*record, "compound");
  if (!mass.ok()) return mass.status();
  data.mass = *mass;
  data.pathway_ids = record->Get("PATHWAY");
  return data;
}

// -------------------------------------------------------------- Pathway --

std::string RenderPathwayRecord(const PathwayRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.pathway_id + "  Pathway");
  record.Add("NAME", data.name);
  record.Add("ORGANISM", data.organism);
  record.AddAll("GENE", data.gene_ids);
  record.AddAll("COMPOUND", data.compound_ids);
  return RenderKeggFlat(record);
}

Result<PathwayRecordData> ParsePathwayRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  PathwayRecordData data;
  auto id = EntryId(*record, "pathway");
  if (!id.ok()) return id.status();
  data.pathway_id = *id;
  data.name = record->GetFirst("NAME");
  data.organism = record->GetFirst("ORGANISM");
  data.gene_ids = record->Get("GENE");
  data.compound_ids = record->Get("COMPOUND");
  return data;
}

// -------------------------------------------------------------- GO term --

std::string RenderGoTerm(const GoTermData& data) {
  std::string out = "[Term]\n";
  out += "id: " + data.go_id + "\n";
  out += "name: " + data.name + "\n";
  out += "namespace: " + data.nspace + "\n";
  out += "def: \"" + data.definition + "\"\n";
  return out;
}

Result<GoTermData> ParseGoTerm(std::string_view text) {
  std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || Trim(lines[0]) != "[Term]") {
    return Status::ParseError("GO: missing [Term] stanza header");
  }
  GoTermData data;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty()) continue;
    if (StartsWith(line, "id: ")) {
      data.go_id = line.substr(4);
    } else if (StartsWith(line, "name: ")) {
      data.name = line.substr(6);
    } else if (StartsWith(line, "namespace: ")) {
      data.nspace = line.substr(11);
    } else if (StartsWith(line, "def: ")) {
      std::string def = line.substr(5);
      if (def.size() >= 2 && def.front() == '"' && def.back() == '"') {
        def = def.substr(1, def.size() - 2);
      }
      data.definition = def;
    } else {
      return Status::ParseError("GO: unknown line '" + line + "'");
    }
  }
  if (data.go_id.empty()) return Status::ParseError("GO: missing id");
  return data;
}

// ------------------------------------------------------------- InterPro --

std::string RenderInterProRecord(const InterProRecordData& data) {
  std::string out;
  out += "AC   " + data.interpro_id + "\n";
  out += "NA   " + data.name + "\n";
  out += "TY   " + data.entry_type + "\n";
  for (const std::string& member : data.member_accessions) {
    out += "MB   " + member + "\n";
  }
  out += "//\n";
  return out;
}

Result<InterProRecordData> ParseInterProRecord(std::string_view text) {
  InterProRecordData data;
  bool terminated = false;
  for (const std::string& line : SplitLines(text)) {
    if (line == "//") {
      terminated = true;
      break;
    }
    if (StartsWith(line, "AC   ")) {
      data.interpro_id = Trim(line.substr(5));
    } else if (StartsWith(line, "NA   ")) {
      data.name = Trim(line.substr(5));
    } else if (StartsWith(line, "TY   ")) {
      data.entry_type = Trim(line.substr(5));
    } else if (StartsWith(line, "MB   ")) {
      data.member_accessions.push_back(Trim(line.substr(5)));
    } else if (!Trim(line).empty()) {
      return Status::ParseError("InterPro: unknown line '" + line + "'");
    }
  }
  if (!terminated) return Status::ParseError("InterPro: missing terminator");
  if (data.interpro_id.empty()) {
    return Status::ParseError("InterPro: missing AC line");
  }
  return data;
}

// ----------------------------------------------------------------- Pfam --

std::string RenderPfamRecord(const PfamRecordData& data) {
  std::string out;
  out += "#=GF AC   " + data.pfam_id + "\n";
  out += "#=GF ID   " + data.name + "\n";
  out += "#=GF CL   " + data.clan + "\n";
  out += "#=GF DE   " + data.description + "\n";
  out += "//\n";
  return out;
}

Result<PfamRecordData> ParsePfamRecord(std::string_view text) {
  PfamRecordData data;
  bool terminated = false;
  for (const std::string& line : SplitLines(text)) {
    if (line == "//") {
      terminated = true;
      break;
    }
    if (StartsWith(line, "#=GF AC   ")) {
      data.pfam_id = Trim(line.substr(10));
    } else if (StartsWith(line, "#=GF ID   ")) {
      data.name = Trim(line.substr(10));
    } else if (StartsWith(line, "#=GF CL   ")) {
      data.clan = Trim(line.substr(10));
    } else if (StartsWith(line, "#=GF DE   ")) {
      data.description = Trim(line.substr(10));
    } else if (!Trim(line).empty()) {
      return Status::ParseError("Pfam: unknown line '" + line + "'");
    }
  }
  if (!terminated) return Status::ParseError("Pfam: missing terminator");
  if (data.pfam_id.empty()) return Status::ParseError("Pfam: missing AC");
  return data;
}

// -------------------------------------------------------------- Disease --

std::string RenderDiseaseRecord(const DiseaseRecordData& data) {
  KeggFlatRecord record;
  record.Add("ENTRY", data.disease_id + "  Disease");
  record.Add("NAME", data.name);
  record.Add("DESCRIPTION", data.description);
  record.AddAll("GENE", data.gene_ids);
  return RenderKeggFlat(record);
}

Result<DiseaseRecordData> ParseDiseaseRecord(std::string_view text) {
  auto record = ParseKeggFlat(text);
  if (!record.ok()) return record.status();
  DiseaseRecordData data;
  auto id = EntryId(*record, "disease");
  if (!id.ok()) return id.status();
  data.disease_id = *id;
  data.name = record->GetFirst("NAME");
  data.description = record->GetFirst("DESCRIPTION");
  data.gene_ids = record->Get("GENE");
  return data;
}

}  // namespace dexa
