#include "formats/kegg_flat.h"

#include "common/strings.h"

namespace dexa {

namespace {
const std::vector<std::string>& EmptyValues() {
  static const auto* empty = new std::vector<std::string>();
  return *empty;
}
constexpr size_t kKeyColumns = 12;
}  // namespace

const std::vector<std::string>& KeggFlatRecord::Get(
    std::string_view key) const {
  for (const auto& [k, values] : fields) {
    if (k == key) return values;
  }
  return EmptyValues();
}

std::string KeggFlatRecord::GetFirst(std::string_view key) const {
  const auto& values = Get(key);
  return values.empty() ? std::string() : values[0];
}

void KeggFlatRecord::Add(std::string key, std::string value) {
  fields.emplace_back(std::move(key),
                      std::vector<std::string>{std::move(value)});
}

void KeggFlatRecord::AddAll(std::string key, std::vector<std::string> values) {
  if (values.empty()) return;
  fields.emplace_back(std::move(key), std::move(values));
}

std::string RenderKeggFlat(const KeggFlatRecord& record) {
  std::string out;
  for (const auto& [key, values] : record.fields) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (i == 0) {
        out += key;
        if (key.size() < kKeyColumns) {
          out += std::string(kKeyColumns - key.size(), ' ');
        } else {
          out += ' ';
        }
      } else {
        out += std::string(kKeyColumns, ' ');
      }
      out += values[i];
      out += '\n';
    }
  }
  out += "///\n";
  return out;
}

Result<KeggFlatRecord> ParseKeggFlat(std::string_view text) {
  KeggFlatRecord record;
  bool terminated = false;
  for (const std::string& line : SplitLines(text)) {
    if (line == "///") {
      terminated = true;
      break;
    }
    if (Trim(line).empty()) continue;
    if (line[0] == ' ') {
      // Continuation of the previous key.
      if (record.fields.empty()) {
        return Status::ParseError("KEGG: continuation line before any key");
      }
      record.fields.back().second.push_back(Trim(line));
      continue;
    }
    size_t key_end = line.find(' ');
    if (key_end == std::string::npos) {
      return Status::ParseError("KEGG: key line without value: '" + line +
                                "'");
    }
    std::string key = line.substr(0, key_end);
    std::string value = Trim(line.substr(key_end));
    record.Add(std::move(key), std::move(value));
  }
  if (!terminated) return Status::ParseError("KEGG: missing '///' terminator");
  if (record.fields.empty()) return Status::ParseError("KEGG: empty record");
  return record;
}

}  // namespace dexa
