#include "formats/alphabet.h"

#include <array>
#include <cassert>
#include <unordered_map>

namespace dexa {

const char* SeqAlphabetName(SeqAlphabet a) {
  switch (a) {
    case SeqAlphabet::kDna:
      return "DNA";
    case SeqAlphabet::kRna:
      return "RNA";
    case SeqAlphabet::kProtein:
      return "Protein";
  }
  return "Unknown";
}

std::string_view AlphabetChars(SeqAlphabet a) {
  switch (a) {
    case SeqAlphabet::kDna:
      return "ACGT";
    case SeqAlphabet::kRna:
      return "ACGU";
    case SeqAlphabet::kProtein:
      return "ACDEFGHIKLMNPQRSTVWY";
  }
  return "";
}

bool IsValidSequence(std::string_view seq, SeqAlphabet a) {
  std::string_view chars = AlphabetChars(a);
  for (char c : seq) {
    if (chars.find(c) == std::string_view::npos) return false;
  }
  return true;
}

SeqAlphabet ClassifySequence(std::string_view seq, SeqAlphabet fallback) {
  if (!seq.empty() && IsValidSequence(seq, SeqAlphabet::kDna)) {
    return SeqAlphabet::kDna;
  }
  if (!seq.empty() && IsValidSequence(seq, SeqAlphabet::kRna)) {
    return SeqAlphabet::kRna;
  }
  if (!seq.empty() && IsValidSequence(seq, SeqAlphabet::kProtein)) {
    return SeqAlphabet::kProtein;
  }
  return fallback;
}

std::string Transcribe(std::string_view dna) {
  assert(IsValidSequence(dna, SeqAlphabet::kDna));
  std::string out(dna);
  for (char& c : out) {
    if (c == 'T') c = 'U';
  }
  return out;
}

std::string ReverseTranscribe(std::string_view rna) {
  assert(IsValidSequence(rna, SeqAlphabet::kRna));
  std::string out(rna);
  for (char& c : out) {
    if (c == 'U') c = 'T';
  }
  return out;
}

std::string ReverseComplementDna(std::string_view dna) {
  assert(IsValidSequence(dna, SeqAlphabet::kDna));
  std::string out;
  out.reserve(dna.size());
  for (auto it = dna.rbegin(); it != dna.rend(); ++it) {
    switch (*it) {
      case 'A':
        out.push_back('T');
        break;
      case 'T':
        out.push_back('A');
        break;
      case 'G':
        out.push_back('C');
        break;
      case 'C':
        out.push_back('G');
        break;
    }
  }
  return out;
}

namespace {

/// Standard genetic code over RNA codons.
const std::unordered_map<std::string, char>& CodonTable() {
  static const auto* table = new std::unordered_map<std::string, char>{
      {"UUU", 'F'}, {"UUC", 'F'}, {"UUA", 'L'}, {"UUG", 'L'}, {"CUU", 'L'},
      {"CUC", 'L'}, {"CUA", 'L'}, {"CUG", 'L'}, {"AUU", 'I'}, {"AUC", 'I'},
      {"AUA", 'I'}, {"AUG", 'M'}, {"GUU", 'V'}, {"GUC", 'V'}, {"GUA", 'V'},
      {"GUG", 'V'}, {"UCU", 'S'}, {"UCC", 'S'}, {"UCA", 'S'}, {"UCG", 'S'},
      {"CCU", 'P'}, {"CCC", 'P'}, {"CCA", 'P'}, {"CCG", 'P'}, {"ACU", 'T'},
      {"ACC", 'T'}, {"ACA", 'T'}, {"ACG", 'T'}, {"GCU", 'A'}, {"GCC", 'A'},
      {"GCA", 'A'}, {"GCG", 'A'}, {"UAU", 'Y'}, {"UAC", 'Y'}, {"UAA", '*'},
      {"UAG", '*'}, {"CAU", 'H'}, {"CAC", 'H'}, {"CAA", 'Q'}, {"CAG", 'Q'},
      {"AAU", 'N'}, {"AAC", 'N'}, {"AAA", 'K'}, {"AAG", 'K'}, {"GAU", 'D'},
      {"GAC", 'D'}, {"GAA", 'E'}, {"GAG", 'E'}, {"UGU", 'C'}, {"UGC", 'C'},
      {"UGA", '*'}, {"UGG", 'W'}, {"CGU", 'R'}, {"CGC", 'R'}, {"CGA", 'R'},
      {"CGG", 'R'}, {"AGU", 'S'}, {"AGC", 'S'}, {"AGA", 'R'}, {"AGG", 'R'},
      {"GGU", 'G'}, {"GGC", 'G'}, {"GGA", 'G'}, {"GGG", 'G'},
  };
  return *table;
}

}  // namespace

std::string Translate(std::string_view nucleotides) {
  std::string rna;
  if (IsValidSequence(nucleotides, SeqAlphabet::kDna)) {
    rna = Transcribe(nucleotides);
  } else {
    rna = std::string(nucleotides);
  }
  std::string protein;
  const auto& table = CodonTable();
  for (size_t i = 0; i + 3 <= rna.size(); i += 3) {
    auto it = table.find(rna.substr(i, 3));
    if (it == table.end()) break;  // Invalid codon terminates translation.
    if (it->second == '*') break;
    protein.push_back(it->second);
  }
  return protein;
}

double GcContent(std::string_view nucleotides) {
  if (nucleotides.empty()) return 0.0;
  size_t gc = 0;
  for (char c : nucleotides) {
    if (c == 'G' || c == 'C') ++gc;
  }
  return static_cast<double>(gc) / static_cast<double>(nucleotides.size());
}

double ProteinMass(std::string_view protein) {
  // Average residue masses (Da), as used in peptide-mass fingerprinting.
  static constexpr struct {
    char residue;
    double mass;
  } kMasses[] = {
      {'A', 71.08},  {'C', 103.14}, {'D', 115.09}, {'E', 129.12},
      {'F', 147.18}, {'G', 57.05},  {'H', 137.14}, {'I', 113.16},
      {'K', 128.17}, {'L', 113.16}, {'M', 131.19}, {'N', 114.10},
      {'P', 97.12},  {'Q', 128.13}, {'R', 156.19}, {'S', 87.08},
      {'T', 101.10}, {'V', 99.13},  {'W', 186.21}, {'Y', 163.18},
  };
  double total = 18.02;  // Water.
  for (char c : protein) {
    for (const auto& m : kMasses) {
      if (m.residue == c) {
        total += m.mass;
        break;
      }
    }
  }
  return total;
}

}  // namespace dexa
