#ifndef DEXA_CORPUS_BEHAVIORS_H_
#define DEXA_CORPUS_BEHAVIORS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "formats/reports.h"
#include "formats/sequence_record.h"
#include "kb/knowledge_base.h"

namespace dexa {

/// Shared behavior implementations of the corpus modules. Everything here
/// is deterministic and total over the knowledge base's own entities; a
/// lookup of a foreign id fails with NotFound, which module invocation
/// surfaces as abnormal termination.

/// The record families served by retrieval modules (mirrors the Record
/// sub-concepts of the myGrid ontology).
enum class RecordKind {
  kUniprot,
  kFasta,
  kEmbl,
  kGenBank,
  kPdb,
  kKeggGene,
  kEnzyme,
  kGlycan,
  kLigand,
  kCompound,
  kPathway,
  kGo,
  kInterPro,
  kPfam,
  kDisease,
};

/// Ontology concept name of a record kind ("UniprotRecord", ...).
const char* RecordKindConcept(RecordKind kind);

/// Retrieves and renders the record of `kind` for `accession`. The
/// accession namespace must suit the kind (Uniprot/Fasta want a Uniprot
/// accession, EMBL/GenBank an EMBL accession, PDB a PDB id, and so on).
[[nodiscard]] Result<std::string> RetrieveRecord(const KnowledgeBase& kb, RecordKind kind,
                                   const std::string& accession);

/// The five sequence flat-file serializations.
enum class SeqFormat { kFasta, kUniprot, kEmbl, kGenBank, kPdb };

const char* SeqFormatConcept(SeqFormat format);

/// Parses `text` into SequenceData by sniffing its format; `format_out`
/// (optional) receives the detected format.
[[nodiscard]] Result<SequenceData> ParseSequenceRecordAny(const std::string& text,
                                            SeqFormat* format_out = nullptr);

/// Renders `data` in `format`.
std::string RenderSequenceData(const SequenceData& data, SeqFormat format);

/// Extracts the primary identifier from any record format (sniff-dispatch):
/// sequence records yield their accession, KEGG-family records their ENTRY
/// id, GO/InterPro/Pfam their stanza id.
[[nodiscard]] Result<std::string> ExtractPrimaryId(const std::string& record);

/// Extracts the entry name/symbol from any record format.
[[nodiscard]] Result<std::string> ExtractEntryName(const std::string& record);

/// One-line summary of any record ("<id> <name>").
[[nodiscard]] Result<std::string> SummarizeRecordLine(const std::string& record);

/// The sequence carried by any *sequence* record format.
[[nodiscard]] Result<std::string> ExtractSequenceText(const std::string& record);

/// The sequence (protein or coding DNA) behind a sequence-database
/// accession: Uniprot/PDB accessions yield the protein sequence,
/// EMBL/KEGG-gene accessions the coding DNA (the GetBiologicalSequence
/// behavior of Figure 7).
[[nodiscard]] Result<std::string> LookupSequenceForAccession(const KnowledgeBase& kb,
                                               const std::string& accession);

/// Uniform single-nucleotide-code statistics (the behavior pool of the
/// NucleotideSequence analysis modules; every statistic treats DNA and RNA
/// by the same rule, which is what makes their ontology partitioning
/// redundant).
enum class NucStat {
  kGcContent,
  kAtContent,   ///< A + (T or U) fraction.
  kCountA,
  kCountC,
  kCountG,
  kCountCgDinucleotide,
  kPurineCount,      ///< A + G.
  kPyrimidineCount,  ///< C + T/U.
  kShannonEntropy,
  kLinguisticComplexity,  ///< Distinct 3-mers / possible 3-mers.
  kMaxHomopolymerRun,
  kGcSkew,  ///< (G - C) / (G + C).
  kChecksum,
  kBasicMeltingTemp,  ///< 2*(A+T/U) + 4*(G+C), the Wallace rule.
};

/// Evaluates `stat` on a nucleotide sequence (DNA or RNA).
double NucleotideStatistic(NucStat stat, const std::string& sequence);

/// Protein/sequence properties with a hidden long-sequence code path (the
/// under-partitioned analysis modules of Table 1): sequences longer than
/// `kLongSequenceThreshold` are evaluated with a cheaper sampled estimate —
/// a genuinely different behavior class the ontology cannot see.
inline constexpr size_t kLongSequenceThreshold = 500;

enum class SeqProperty {
  kMolecularWeight,
  kIsoelectricPoint,
  kHydrophobicity,
  kAromaticity,
  kInstabilityIndex,
  kAliphaticIndex,
  kChargeAtPh7,
  kExtinctionCoefficient,
};

/// Evaluates `property` on any biological sequence. Dispatches internally
/// on the alphabet and, for proteins, on the long-sequence threshold.
double SequenceProperty(SeqProperty property, const std::string& sequence);

/// Text mining over the knowledge base's vocabulary: pathway concepts
/// mentioned in a document (the paper's GetConcept example) and gene ids
/// resolved from mentioned symbols.
std::vector<std::string> MinePathwayConcepts(const KnowledgeBase& kb,
                                             const std::string& text);
std::vector<std::string> MineGeneIds(const KnowledgeBase& kb,
                                     const std::string& text);

/// Builds a homology-search alignment report for `accession` with the given
/// program/database stamp.
[[nodiscard]] Result<AlignmentReportData> HomologySearch(const KnowledgeBase& kb,
                                           const std::string& accession,
                                           const std::string& program,
                                           const std::string& database,
                                           size_t max_hits = 5);

}  // namespace dexa

#endif  // DEXA_CORPUS_BEHAVIORS_H_
