#include "corpus/scale.h"

#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "corpus/synthetic_module.h"
#include "types/structural_type.h"
#include "types/value.h"

namespace dexa {

namespace {

/// Deterministic per-(module, input) draw: every behavioral decision in the
/// scale corpus derives from this, never from call order or wall time.
uint64_t Mix(uint64_t salt, const std::string& s) {
  return HashCombine(salt, StableHash64(s));
}

constexpr ModuleKind kScaleKinds[] = {
    ModuleKind::kFormatTransformation, ModuleKind::kDataRetrieval,
    ModuleKind::kMappingIdentifiers,   ModuleKind::kFiltering,
    ModuleKind::kDataAnalysis,         ModuleKind::kStatefulService,
    ModuleKind::kPaginatedRetrieval,   ModuleKind::kRateLimited,
    ModuleKind::kSchemaDrifting,
};
constexpr size_t kScaleKindCount =
    sizeof(kScaleKinds) / sizeof(kScaleKinds[0]);

const char* ScaleKindSlug(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kFormatTransformation:
      return "fmt";
    case ModuleKind::kDataRetrieval:
      return "get";
    case ModuleKind::kMappingIdentifiers:
      return "map";
    case ModuleKind::kFiltering:
      return "filter";
    case ModuleKind::kDataAnalysis:
      return "score";
    case ModuleKind::kStatefulService:
      return "session";
    case ModuleKind::kPaginatedRetrieval:
      return "page";
    case ModuleKind::kRateLimited:
      return "limited";
    case ModuleKind::kSchemaDrifting:
      return "drift";
  }
  return "unknown";
}

/// Parses the "s:<k>:<tag>" session-state format; returns false on anything
/// else (the module rejects such inputs with kInvalidArgument).
bool ParseSessionState(const std::string& state, uint64_t& step) {
  if (!StartsWith(state, "s:")) return false;
  size_t i = 2;
  if (i >= state.size() || state[i] < '0' || state[i] > '9') return false;
  uint64_t value = 0;
  while (i < state.size() && state[i] >= '0' && state[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(state[i] - '0');
    ++i;
  }
  if (i < state.size() && state[i] != ':') return false;
  step = value;
  return true;
}

/// Parses "cursor:<k>" / "cursor:end"; `exhausted` reports the end marker.
bool ParseCursor(const std::string& cursor, uint64_t& page, bool& exhausted) {
  if (!StartsWith(cursor, "cursor:")) return false;
  const std::string rest = cursor.substr(7);
  if (rest == "end") {
    exhausted = true;
    return true;
  }
  if (rest.empty()) return false;
  uint64_t value = 0;
  for (char c : rest) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  page = value;
  exhausted = false;
  return true;
}

/// A rate-limited endpoint: a deterministic half of its inputs answer the
/// first attempt with kTransient (HTTP 429 semantics) and succeed from the
/// second attempt on. The draw keys on (module salt, input, attempt) only,
/// so outcomes are schedule-independent: a retrying engine always recovers
/// the example, a fail-fast one deterministically records the exhaustion.
class RateLimitedModule : public SyntheticModule {
 public:
  RateLimitedModule(ModuleSpec spec, Behavior behavior, uint64_t salt)
      : SyntheticModule(std::move(spec), std::move(behavior)), salt_(salt) {}

 protected:
  [[nodiscard]] Result<std::vector<Value>> InvokeWithContext(
      const std::vector<Value>& inputs,
      InvocationContext& context) const override {
    if (context.attempt == 0 && !inputs.empty() && inputs[0].is_string() &&
        Mix(salt_, inputs[0].AsString()) % 2 == 0) {
      context.charged_ns += 1000;  // throttled attempts are slow attempts
      return Status::Transient("rate limited (429): retry after backoff");
    }
    return SyntheticModule::InvokeWithContext(inputs, context);
  }

 private:
  uint64_t salt_;
};

struct ScaleConcepts {
  ConceptId token = kInvalidConcept;
  ConceptId cursor = kInvalidConcept;
  ConceptId session = kInvalidConcept;
  ConceptId record_v1 = kInvalidConcept;
  ConceptId score = kInvalidConcept;
};

Parameter P(std::string name, ConceptId semantic,
            StructuralType type = StructuralType::String()) {
  Parameter p;
  p.name = std::move(name);
  p.structural_type = std::move(type);
  p.semantic_type = semantic;
  return p;
}

}  // namespace

ModuleKind ScaleKindOf(size_t index) {
  return kScaleKinds[index % kScaleKindCount];
}

Result<ScaleCorpus> BuildScaleCorpus(const ScaleCorpusOptions& options) {
  if (options.modules == 0) {
    return Status::InvalidArgument("scale corpus needs at least one module");
  }
  ScaleCorpus corpus;
  corpus.ontology = std::make_shared<Ontology>("scale-ontology");
  Ontology& onto = *corpus.ontology;

  // Dedicated small ontology: one covered token family (three realizable
  // partitions), flat cursor/session/score domains, and a covered record
  // family whose versions the drifting modules migrate between.
  auto token = onto.AddRoot("Token", /*covered=*/true);
  if (!token.ok()) return token.status();
  auto alpha = onto.AddConcept("AlphaToken", {"Token"});
  if (!alpha.ok()) return alpha.status();
  auto num = onto.AddConcept("NumToken", {"Token"});
  if (!num.ok()) return num.status();
  auto hex = onto.AddConcept("HexToken", {"Token"});
  if (!hex.ok()) return hex.status();
  auto cursor = onto.AddRoot("Cursor");
  if (!cursor.ok()) return cursor.status();
  auto session = onto.AddRoot("SessionState");
  if (!session.ok()) return session.status();
  auto record = onto.AddRoot("RecordDoc", /*covered=*/true);
  if (!record.ok()) return record.status();
  auto record_v1 = onto.AddConcept("RecordV1", {"RecordDoc"});
  if (!record_v1.ok()) return record_v1.status();
  auto record_v2 = onto.AddConcept("RecordV2", {"RecordDoc"});
  if (!record_v2.ok()) return record_v2.status();
  auto score = onto.AddRoot("Score");
  if (!score.ok()) return score.status();

  ScaleConcepts ids;
  ids.token = *token;
  ids.cursor = *cursor;
  ids.session = *session;
  ids.record_v1 = *record_v1;
  ids.score = *score;

  // One realization per partition, pooled directly: the generator then
  // enumerates exactly one combination per realizable partition, keeping
  // per-module cost flat as the corpus grows.
  corpus.pool = std::make_shared<AnnotatedInstancePool>(corpus.ontology.get());
  corpus.pool->Add(*alpha, Value::Str("alpha"));
  corpus.pool->Add(*num, Value::Str("12345"));
  corpus.pool->Add(*hex, Value::Str("0xbeef"));
  corpus.pool->Add(*cursor, Value::Str("cursor:0"));
  corpus.pool->Add(*session, Value::Str("s:0:init"));
  corpus.pool->Add(*record_v1, Value::Str("v1|id=seed"));
  corpus.pool->Add(*record_v2, Value::Str("v2|id=seed;rev=2"));
  corpus.pool->Add(*score, Value::Real(0.5));

  corpus.world = std::make_shared<ScaleWorld>();
  corpus.registry = std::make_shared<ModuleRegistry>();
  corpus.module_ids.reserve(options.modules);

  const std::shared_ptr<ScaleWorld> world = corpus.world;
  for (size_t n = 0; n < options.modules; ++n) {
    const ModuleKind kind = ScaleKindOf(n);
    const std::string id = "s" + ZeroPad(n, 6);
    const uint64_t salt = HashCombine(options.seed, StableHash64(id));

    ModuleSpec spec;
    spec.id = id;
    spec.name = std::string("scale-") + ScaleKindSlug(kind) + "-" +
                ZeroPad(n, 6);
    spec.kind = kind;

    ModulePtr module;
    switch (kind) {
      case ModuleKind::kFormatTransformation: {
        spec.inputs = {P("value", ids.token)};
        spec.outputs = {P("formatted", ids.token)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const std::string& v = in[0].AsString();
              return std::vector<Value>{Value::Str(
                  "fmt:" + v + ":" + std::to_string(Mix(salt, v) % 1000))};
            },
            /*num_classes=*/3, [](const std::vector<Value>& in) {
              const std::string& v = in[0].AsString();
              if (StartsWith(v, "0x")) return 2;
              return (!v.empty() && v[0] >= '0' && v[0] <= '9') ? 1 : 0;
            });
        break;
      }
      case ModuleKind::kDataRetrieval: {
        spec.inputs = {P("key", ids.token)};
        spec.outputs = {P("record", ids.record_v1)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const std::string& key = in[0].AsString();
              return std::vector<Value>{Value::Str(
                  "v1|key=" + key + "|ver=" +
                  std::to_string(Mix(salt, key) % 7))};
            });
        break;
      }
      case ModuleKind::kMappingIdentifiers: {
        spec.inputs = {P("from", ids.token)};
        spec.outputs = {P("to", ids.token)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              return std::vector<Value>{Value::Str(
                  "id:" +
                  std::to_string(Mix(salt, in[0].AsString()) % 100000))};
            });
        break;
      }
      case ModuleKind::kFiltering: {
        spec.inputs = {P("candidate", ids.token)};
        spec.outputs = {P("kept", ids.token)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const std::string& v = in[0].AsString();
              if (Mix(salt ^ 0xF117, v) % 2 != 0) {
                return Status::InvalidArgument("filtered out: " + v);
              }
              return std::vector<Value>{in[0]};
            });
        break;
      }
      case ModuleKind::kDataAnalysis: {
        spec.inputs = {P("sample", ids.token)};
        spec.outputs = {P("score", ids.score, StructuralType::Double())};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const uint64_t draw = Mix(salt, in[0].AsString()) % 1000;
              return std::vector<Value>{
                  Value::Real(static_cast<double>(draw) / 1000.0)};
            });
        break;
      }
      case ModuleKind::kStatefulService: {
        spec.inputs = {P("state", ids.session)};
        spec.outputs = {P("next", ids.session)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const std::string& state = in[0].AsString();
              uint64_t step = 0;
              if (!ParseSessionState(state, step)) {
                return Status::InvalidArgument("unparseable session state '" +
                                               state + "'");
              }
              // A pure transition function: the output is itself a valid
              // input, so state carries over by chaining invocations.
              return std::vector<Value>{Value::Str(
                  "s:" + std::to_string(step + 1) + ":" +
                  std::to_string(Mix(salt, state) % 9973))};
            });
        break;
      }
      case ModuleKind::kPaginatedRetrieval: {
        spec.inputs = {P("cursor", ids.cursor)};
        spec.outputs = {P("page", ids.record_v1), P("next", ids.cursor)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const std::string& cursor = in[0].AsString();
              uint64_t page = 0;
              bool exhausted = false;
              if (!ParseCursor(cursor, page, exhausted)) {
                return Status::InvalidArgument("unparseable cursor '" +
                                               cursor + "'");
              }
              if (exhausted) {
                return Status::InvalidArgument("cursor exhausted");
              }
              const std::string body =
                  "v1|page=" + std::to_string(page) + "|ref=" +
                  std::to_string(Mix(salt, cursor) % 997);
              const std::string next =
                  page >= 2 ? std::string("cursor:end")
                            : "cursor:" + std::to_string(page + 1);
              return std::vector<Value>{Value::Str(body), Value::Str(next)};
            });
        break;
      }
      case ModuleKind::kRateLimited: {
        spec.inputs = {P("request", ids.token)};
        spec.outputs = {P("response", ids.token)};
        module = std::make_shared<RateLimitedModule>(
            std::move(spec),
            [salt](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              return std::vector<Value>{
                  Value::Str("ok:" + in[0].AsString() + ":" +
                             std::to_string(Mix(salt, "ok") % 100))};
            },
            salt);
        break;
      }
      case ModuleKind::kSchemaDrifting: {
        spec.inputs = {P("key", ids.token)};
        spec.outputs = {P("record", ids.record_v1)};
        module = std::make_shared<SyntheticModule>(
            std::move(spec),
            [salt,
             world](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              const uint64_t epoch = world->epoch();
              if (epoch != 0) {
                // The provider rolled an incompatible schema out from under
                // its consumers: permanent-class decay, exactly what
                // repair/ScanForDecay probes for.
                return Status::Permanent(
                    "schema drift: provider now emits record schema v" +
                    std::to_string(epoch + 1) +
                    ", incompatible with the annotated v1 contract");
              }
              const std::string& key = in[0].AsString();
              return std::vector<Value>{Value::Str(
                  "v1|key=" + key + "|rev=" +
                  std::to_string(Mix(salt, key) % 13))};
            });
        break;
      }
    }
    DEXA_RETURN_IF_ERROR(corpus.registry->Register(std::move(module)));
    corpus.module_ids.push_back(id);
  }
  return corpus;
}

}  // namespace dexa
