#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "corpus/behaviors.h"
#include "corpus/builder_internal.h"
#include "corpus/term_values.h"
#include "engine/invocation_engine.h"
#include "formats/alphabet.h"
#include "formats/reports.h"
#include "kb/accessions.h"

namespace dexa {
namespace corpus_internal {

namespace {

const StructuralType kStr = StructuralType::String();
const StructuralType kStrList = StructuralType::List(StructuralType::String());
const StructuralType kDoubleList =
    StructuralType::List(StructuralType::Double());

/// Copies the interface of an available module (fresh name) and delegates
/// behavior, optionally post-processing the outputs. This models the
/// retired KEGG SOAP services whose REST twins stayed online (Section 6) —
/// the twin's interface and behavior were identical.
void AddDelegatingTwin(
    CorpusBuilder& b, const std::string& twin_name,
    const std::string& target_name,
    std::function<Result<std::vector<Value>>(const std::vector<Value>&,
                                             std::vector<Value>)>
        post = nullptr) {
  auto target = b.registry().FindByName(target_name);
  if (!target.ok()) {
    b.Fail(Status::Internal("retired-twin target '" + target_name +
                            "' missing: " + target.status().ToString()));
    return;
  }
  ModulePtr target_module = *target;
  const ModuleSpec& spec = target_module->spec();
  b.Add(true, spec.kind, twin_name, spec.inputs, spec.outputs,
        [target_module, post](const std::vector<Value>& in)
            -> Result<std::vector<Value>> {
          // Delegation is itself a module invocation: meter it through the
          // (serial, thread-safe) engine like every other consumer.
          auto out = InvocationEngine::Serial().Invoke(*target_module, in);
          if (!out.ok()) return out;
          if (post == nullptr) return out;
          return post(in, std::move(out).value());
        });
}

/// Inserts a legacy annotation line before a flat-file terminator.
std::string WithLegacyLine(const std::string& record) {
  if (Contains(record, "\n//\n")) {
    size_t pos = record.rfind("\n//\n");
    return record.substr(0, pos) + "\nCC   legacy annotation" +
           record.substr(pos);
  }
  if (Contains(record, "\n///\n")) {
    size_t pos = record.rfind("\n///\n");
    return record.substr(0, pos) + "\nREMARK      legacy" + record.substr(pos);
  }
  return record + ";legacy\n";
}

/// Drift rule of the "v1_" legacy record services: records of odd-parity
/// entities carried an extra annotation line the current services dropped.
void AddDriftingRecordTwin(CorpusBuilder& b, const std::string& twin_name,
                           const std::string& target_name) {
  AddDelegatingTwin(
      b, twin_name, target_name,
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        if (IdDigitsParity(in[0].AsString()) == 1 && out[0].is_string()) {
          out[0] = Value::Str(WithLegacyLine(out[0].AsString()));
        }
        return out;
      });
}

/// Case-drifting twin for id-mapping services.
void AddDriftingMappingTwin(CorpusBuilder& b, const std::string& twin_name,
                            const std::string& target_name, bool upper) {
  AddDelegatingTwin(
      b, twin_name, target_name,
      [upper](const std::vector<Value>& in,
              std::vector<Value> out) -> Result<std::vector<Value>> {
        if (IdDigitsParity(in[0].AsString()) == 1 && out[0].is_string()) {
          out[0] = Value::Str(upper ? ToUpper(out[0].AsString())
                                    : ToLower(out[0].AsString()));
        }
        return out;
      });
}

}  // namespace

void AddRetiredModules(CorpusBuilder& b) {
  using KbPtr = std::shared_ptr<const KnowledgeBase>;
  KbPtr kb = b.kb_ptr();

  // ------------------------------------------------------------------
  // 16 retired modules with exactly equivalent current counterparts: the
  // interrupted KEGG SOAP endpoints whose REST twins remain (the paper's
  // Section 6 example).
  AddDelegatingTwin(b, "soap_binfo", "binfo");
  AddDelegatingTwin(b, "soap_link", "link");
  AddDelegatingTwin(b, "soap_get_genes_by_pathway", "get_genes_by_pathway");
  AddDelegatingTwin(b, "soap_get_compounds_by_pathway",
                    "get_compounds_by_pathway");
  AddDelegatingTwin(b, "soap_get_pathways_by_gene", "get_pathways_by_gene");
  AddDelegatingTwin(b, "soap_get_pathways_by_compound",
                    "get_pathways_by_compound");
  AddDelegatingTwin(b, "soap_get_genes_by_enzyme", "get_genes_by_enzyme");
  AddDelegatingTwin(b, "soap_get_enzymes_by_compound",
                    "get_enzymes_by_compound");
  AddDelegatingTwin(b, "soap_get_targets_by_ligand", "get_targets_by_ligand");
  AddDelegatingTwin(b, "soap_get_orthologs", "get_orthologs");
  AddDelegatingTwin(b, "soap_get_genes_by_go_term", "get_genes_by_go_term");
  AddDelegatingTwin(b, "soap_GetKEGGGeneRecord", "KEGG_GetKEGGGeneRecord");
  AddDelegatingTwin(b, "soap_GetPathwayRecord", "KEGG_GetPathwayRecord");
  AddDelegatingTwin(b, "soap_GetCompoundRecord", "KEGG_GetCompoundRecord");
  AddDelegatingTwin(b, "soap_GetEnzymeRecord", "KEGG_GetEnzymeRecord");
  AddDelegatingTwin(b, "soap_GetGlycanRecord", "KEGG_GetGlycanRecord");

  // ------------------------------------------------------------------
  // 23 retired modules with overlapping current counterparts: legacy "v1"
  // versions that agree with the current services on part of the domain.
  AddDriftingRecordTwin(b, "v1_GetUniprotRecord", "EBI_GetUniprotRecord");
  AddDriftingRecordTwin(b, "v1_GetFastaRecord", "EBI_GetFastaRecord");
  AddDriftingRecordTwin(b, "v1_GetKEGGGeneRecord", "KEGG_GetKEGGGeneRecord");
  AddDriftingRecordTwin(b, "v1_GetPathwayRecord", "KEGG_GetPathwayRecord");
  AddDriftingRecordTwin(b, "v1_GetEMBLRecord", "EBI_GetEMBLRecord");
  AddDriftingRecordTwin(b, "v1_GetCompoundRecord", "KEGG_GetCompoundRecord");
  AddDriftingRecordTwin(b, "v1_GetEnzymeRecord", "KEGG_GetEnzymeRecord");
  AddDriftingRecordTwin(b, "v1_GetGORecord", "EBI_GetGORecord");
  AddDriftingRecordTwin(b, "v1_GetGlycanRecord", "KEGG_GetGlycanRecord");
  AddDriftingRecordTwin(b, "v1_GetLigandRecord", "EBI_GetLigandRecord");
  // PDB ids carry no useful digits; the drift keys on the protein behind
  // the structure.
  AddDelegatingTwin(
      b, "v1_GetPDBRecord", "EBI_GetPDBRecord",
      [kb](const std::vector<Value>& in,
           std::vector<Value> out) -> Result<std::vector<Value>> {
        auto protein = kb->FindProteinByPdb(in[0].AsString());
        if (protein.ok() && IdDigitsParity((*protein)->accession) == 1) {
          out[0] = Value::Str(WithLegacyLine(out[0].AsString()));
        }
        return out;
      });

  AddDriftingMappingTwin(b, "v1_Uniprot2KeggGene", "EBI_Uniprot2KeggGene",
                         /*upper=*/true);
  AddDriftingMappingTwin(b, "v1_KeggGene2Uniprot", "EBI_KeggGene2Uniprot",
                         /*upper=*/false);
  AddDriftingMappingTwin(b, "v1_Uniprot2EMBL", "EBI_Uniprot2EMBL",
                         /*upper=*/false);
  AddDelegatingTwin(
      b, "v1_Gene2Pathways", "EBI_Gene2Pathways",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        (void)in;
        // The legacy endpoint returned only the primary pathway.
        if (out[0].is_list() && out[0].AsList().size() > 1) {
          out[0] = Value::ListOf({out[0].AsList()[0]});
        }
        return out;
      });

  auto odd_length_lowercase =
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
    if (in[0].AsString().size() % 2 == 1 && out[0].is_string()) {
      out[0] = Value::Str(ToLower(out[0].AsString()));
    }
    return out;
  };
  AddDelegatingTwin(b, "v1_Transcribe", "EBI_Transcribe",
                    odd_length_lowercase);
  AddDelegatingTwin(b, "v1_ReverseComplement", "EBI_ReverseComplement",
                    odd_length_lowercase);
  AddDelegatingTwin(
      b, "v1_AnyToFasta", "EBI_AnyToFasta",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        auto data = ParseSequenceRecordAny(in[0].AsString());
        if (data.ok() && IdDigitsParity(data->accession) == 1) {
          // The legacy converter dropped the organism from the header.
          SequenceData stripped = *data;
          stripped.organism.clear();
          out[0] = Value::Str(RenderFasta(stripped));
        }
        return out;
      });
  AddDelegatingTwin(
      b, "v1_GetHomologous", "GetHomologous",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        if (IdDigitsParity(in[0].AsString()) == 1 && out[0].is_list() &&
            !out[0].AsList().empty()) {
          std::vector<Value> items = out[0].AsList();
          items.pop_back();
          out[0] = Value::ListOf(std::move(items));
        }
        return out;
      });
  AddDelegatingTwin(
      b, "v1_DigestProtein", "DigestProtein",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        if (in[0].AsString().size() % 2 == 1 && out[0].is_list() &&
            !out[0].AsList().empty()) {
          std::vector<Value> masses = out[0].AsList();
          masses.pop_back();
          out[0] = Value::ListOf(std::move(masses));
        }
        return out;
      });
  AddDelegatingTwin(
      b, "v1_TranslateDNA", "EBI_TranslateDNA",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        if ((in[0].AsString().size() / 3) % 2 == 1 && out[0].is_string()) {
          out[0] = Value::Str(ToLower(out[0].AsString()));
        }
        return out;
      });
  AddDelegatingTwin(
      b, "v1_GetTermLabel", "GetTermLabel",
      [](const std::vector<Value>& in,
         std::vector<Value> out) -> Result<std::vector<Value>> {
        if (TermSource(in[0].AsString()) != "GO" && out[0].is_string()) {
          out[0] = Value::Str(ToUpper(out[0].AsString()));
        }
        return out;
      });

  // The Figure 7 module: a retired sequence fetcher with no exact-signature
  // counterpart; GetBiologicalSequence subsumes it contextually.
  b.Add(true, ModuleKind::kDataRetrieval, "GetGeneSequence",
        {b.P("accession", kStr, "EMBLAccession")},
        {b.P("sequence", kStr, "DNASequence")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto protein = kb->FindProteinByEmbl(in[0].AsString());
          if (!protein.ok()) return protein.status();
          auto gene = kb->FindGene((*protein)->gene_id);
          if (!gene.ok()) return gene.status();
          return One((*gene)->dna_sequence);
        });

  // ------------------------------------------------------------------
  // 33 retired modules with no suitable substitute: legacy one-off
  // analyses whose signatures (or behaviors) nothing in the current corpus
  // reproduces.
  enum class LegacyOut { kText, kCount, kReport };
  struct LegacyRow {
    const char* name;
    const char* in_concept;
    bool list_input;
    LegacyOut out;
  };
  static const LegacyRow kLegacyRows[] = {
      {"legacy_disease_term_profile", "DiseaseTerm", false, LegacyOut::kText},
      {"legacy_disease_term_score", "DiseaseTerm", false, LegacyOut::kCount},
      {"legacy_anatomy_term_profile", "AnatomyTerm", false, LegacyOut::kText},
      {"legacy_anatomy_usage", "AnatomyTerm", false, LegacyOut::kReport},
      {"legacy_chemical_similarity", "ChemicalTerm", false, LegacyOut::kCount},
      {"legacy_chemical_profile", "ChemicalTerm", false, LegacyOut::kReport},
      {"legacy_phenotype_match", "PhenotypeTerm", false, LegacyOut::kCount},
      {"legacy_phenotype_profile", "PhenotypeTerm", false, LegacyOut::kText},
      {"legacy_go_term_depth", "GOTerm", false, LegacyOut::kCount},
      {"legacy_go_term_profile", "GOTerm", false, LegacyOut::kReport},
      {"legacy_pathway_concept_rank", "PathwayConcept", false,
       LegacyOut::kCount},
      {"legacy_pathway_concept_notes", "PathwayConcept", false,
       LegacyOut::kText},
      {"legacy_text_sentiment", "TextDocument", false, LegacyOut::kCount},
      {"legacy_text_keywords", "TextDocument", false, LegacyOut::kText},
      {"legacy_text_readability", "TextDocument", false, LegacyOut::kReport},
      {"legacy_protein_disorder", "ProteinSequence", false, LegacyOut::kReport},
      {"legacy_protein_signal_peptide", "ProteinSequence", false,
       LegacyOut::kText},
      {"legacy_dna_curvature", "DNASequence", false, LegacyOut::kReport},
      {"legacy_dna_promoter_scan", "DNASequence", false, LegacyOut::kText},
      {"legacy_rna_fold_energy", "RNASequence", false, LegacyOut::kReport},
      {"legacy_rna_loop_scan", "RNASequence", false, LegacyOut::kText},
      {"legacy_protein_interactions", "UniprotAccession", false,
       LegacyOut::kText},
      {"legacy_protein_citations", "UniprotAccession", false,
       LegacyOut::kReport},
      {"legacy_gene_expression", "KEGGGeneId", false, LegacyOut::kReport},
      {"legacy_gene_neighbors", "KEGGGeneId", false, LegacyOut::kText},
      {"legacy_pathway_flux", "PathwayId", false, LegacyOut::kReport},
      {"legacy_compound_toxicity", "CompoundId", false, LegacyOut::kReport},
      {"legacy_glycan_branching", "GlycanId", false, LegacyOut::kReport},
      {"legacy_ligand_docking", "LigandId", false, LegacyOut::kReport},
      {"legacy_enzyme_kinetics", "EnzymeId", false, LegacyOut::kReport},
      {"legacy_go_term_usage", "GOTermId", false, LegacyOut::kReport},
      {"legacy_structure_quality", "PDBAccession", false, LegacyOut::kReport},
      {"legacy_embl_release_notes", "EMBLAccession", false, LegacyOut::kText},
  };
  for (const LegacyRow& row : kLegacyRows) {
    StructuralType in_type = row.list_input ? kStrList : kStr;
    Parameter out_param;
    switch (row.out) {
      case LegacyOut::kText:
        out_param = b.P("result", kStr, "TextDocument");
        break;
      case LegacyOut::kCount:
        out_param = b.P("result", StructuralType::Integer(), "Count");
        break;
      case LegacyOut::kReport:
        out_param = b.P("result", kStr, "StatisticsReport");
        break;
    }
    LegacyOut out_kind = row.out;
    std::string name = row.name;
    b.Add(true, ModuleKind::kDataAnalysis, name,
          {b.P("input", in_type, row.in_concept)}, {out_param},
          [out_kind, name](const std::vector<Value>& in)
              -> Result<std::vector<Value>> {
            uint64_t digest = HashCombine(StableHash64(name),
                                          StableHash64(in[0].ToString()));
            switch (out_kind) {
              case LegacyOut::kText:
                return One("legacy analysis fingerprint " +
                           std::to_string(digest % 100000));
              case LegacyOut::kCount:
                return OneValue(Value::Int(static_cast<int64_t>(digest % 997)));
              case LegacyOut::kReport: {
                StatisticsReportData report;
                report.title = name;
                report.stats.emplace_back("signal",
                                          static_cast<double>(digest % 100));
                return One(RenderStatisticsReport(report));
              }
            }
            return Status::Internal("unhandled legacy output kind");
          });
  }
}

}  // namespace corpus_internal
}  // namespace dexa
