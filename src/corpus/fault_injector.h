#ifndef DEXA_CORPUS_FAULT_INJECTOR_H_
#define DEXA_CORPUS_FAULT_INJECTOR_H_

#include <atomic>
#include <memory>
#include <string>

#include "engine/metrics.h"
#include "modules/module.h"
#include "modules/registry.h"

namespace dexa {

/// Deterministic, seed-driven fault profile for a wrapped module. Every
/// per-attempt decision is derived from (profile seed, deep input hash,
/// attempt number) — never from wall time, invocation order or thread
/// scheduling — so a faulty run is byte-identical across thread counts and
/// repeat invocations, and a retried attempt re-draws its fate instead of
/// replaying the first attempt's failure.
struct FaultProfile {
  /// Salt for all stochastic fault decisions of this injector.
  uint64_t seed = 0xFA17;

  /// Per-attempt probability of a kTransient failure (intermittent backend
  /// error). With retries, P(exhaustion) = transient_rate^max_attempts.
  double transient_rate = 0.0;

  /// Per-attempt probability of a kTimeout failure (stalled service).
  double timeout_rate = 0.0;

  /// Flaky warm-up: attempts [0, flaky_first_attempts) of every input fail
  /// with kTransient before the stochastic draws even run. Models a flaky
  /// period that a sufficiently patient retry policy always outlasts (and
  /// an insufficient one never does) — exactly reproducible.
  int flaky_first_attempts = 0;

  /// Virtual latency charged per attempt (successful or not); consumes the
  /// engine's per-invocation deadline budget.
  uint64_t latency_ns = 0;

  /// Extra virtual latency charged on faulted attempts (a failing service
  /// is typically also a slow one).
  uint64_t fault_latency_ns = 0;

  /// Permanent decay active from the first invocation: every call fails
  /// with kPermanent while the registry still believes the module is
  /// available — the dynamic-decay situation ScanForDecay detects.
  bool down = false;

  /// Retire after this many total invocations (0 = never): the injector
  /// flips to permanent decay mid-run, reusing the kDecayed semantics of
  /// provider-retired modules. NOTE: counts invocations in arrival order,
  /// so mid-batch decay under a multi-threaded engine is schedule-
  /// dependent; reserve this knob for sequential paths (workflow
  /// enactment) when byte-identical runs matter.
  uint64_t decay_after = 0;
};

/// Where, relative to a durable commit, an injected crash lands. The crash
/// is simulated in-process: the durable run loop stops as if the process
/// had died, and for kTornWrite the journal tail is additionally damaged
/// (truncated + bit-flipped) the way a half-flushed write would leave it.
enum class CrashPoint {
  kNone = 0,
  /// Die before the chosen unit's commit record is appended: recovery must
  /// re-invoke that unit (and everything after it).
  kCrashBeforeCommit,
  /// Die right after the commit record is flushed: recovery must replay the
  /// unit from the journal without re-invoking it.
  kCrashAfterCommit,
  /// Die mid-append: the commit record lands torn (truncated/flipped
  /// bytes), so recovery must detect the damage via CRC32, discard the
  /// tail, and re-invoke the unit.
  kTornWrite,
};

/// A deterministic crash plan for one durable run: crash at `point`
/// relative to the commit of the unit keyed `key` (a module id for
/// annotation runs, a module id of a processor for enactments). The torn
/// variant draws its damage positions from `seed`, truncating
/// `torn_truncate_bytes` and flipping `torn_flips` bytes near the journal
/// tail. kNone plans are inert, so the plan can be threaded through
/// unconditionally.
struct CrashPlan {
  CrashPoint point = CrashPoint::kNone;
  std::string key;
  uint64_t seed = 0xC4A5;
  int torn_flips = 2;
  size_t torn_truncate_bytes = 5;

  bool armed() const { return point != CrashPoint::kNone; }
  bool Matches(const std::string& unit_key) const {
    return armed() && key == unit_key;
  }
};

/// Human-readable name of a crash point ("before-commit", ...).
const char* CrashPointName(CrashPoint point);

/// Wraps any module with a deterministic fault profile. The injector
/// presents the wrapped module's exact spec and ground truth, decides per
/// attempt whether to fail (and how, on the typed Status taxonomy), charges
/// virtual latency through the InvocationContext, and otherwise delegates
/// to the wrapped module.
class FaultInjector : public Module {
 public:
  /// `metrics` (optional) receives RecordInjectedFault() for every fault
  /// this injector manufactures; pass the consuming engine's metrics to
  /// make injected faults observable in run reports.
  FaultInjector(ModulePtr inner, FaultProfile profile,
                EngineMetrics* metrics = nullptr);

  const FaultProfile& profile() const { return profile_; }
  const Module& inner() const { return *inner_; }

  /// Total attempts routed through this injector.
  uint64_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }
  /// Attempts that failed with a manufactured fault.
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  const BehaviorGroundTruth* ground_truth() const override {
    return inner_->ground_truth();
  }

 protected:
  [[nodiscard]] Result<std::vector<Value>> InvokeImpl(
      const std::vector<Value>& inputs) const override;

  [[nodiscard]] Result<std::vector<Value>> InvokeWithContext(
      const std::vector<Value>& inputs,
      InvocationContext& context) const override;

 private:
  ModulePtr inner_;
  FaultProfile profile_;
  EngineMetrics* metrics_;
  mutable std::atomic<uint64_t> invocations_{0};
  mutable std::atomic<uint64_t> faults_injected_{0};
};

/// Builds a registry wrapping every module of `registry` (in registration
/// order, same ids and specs) in a FaultInjector carrying `profile` with a
/// per-module seed forked from profile.seed and the module id — so faults
/// are independent across modules but reproducible per module.
[[nodiscard]] Result<std::unique_ptr<ModuleRegistry>> WrapRegistryWithFaults(
    const ModuleRegistry& registry, const FaultProfile& profile,
    EngineMetrics* metrics = nullptr);

}  // namespace dexa

#endif  // DEXA_CORPUS_FAULT_INJECTOR_H_
