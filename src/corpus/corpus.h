#ifndef DEXA_CORPUS_CORPUS_H_
#define DEXA_CORPUS_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "kb/knowledge_base.h"
#include "modules/registry.h"
#include "ontology/ontology.h"

namespace dexa {

/// Options for building the evaluation corpus.
struct CorpusOptions {
  uint64_t seed = 42;
  KnowledgeBaseOptions kb_options;

  /// When set, the corpus adopts these instead of generating the knowledge
  /// base (expensive) and building the myGrid ontology from scratch. This
  /// is how `--kb-image=` runs slot a memory-mapped compiled image in: the
  /// CLI materializes both from the image and injects them here. The
  /// prebuilt KB must have been generated with the same seed/options the
  /// corpus would use — module calibration depends on its contents.
  std::shared_ptr<const KnowledgeBase> prebuilt_kb;
  std::shared_ptr<Ontology> prebuilt_ontology;
};

/// The module corpus of the paper's evaluation:
///  * 252 "available" scientific modules with the kind census of Table 3
///    (53 format transformation, 51 data retrieval, 62 identifier mapping,
///    27 filtering, 59 data analysis), calibrated so the generated data
///    examples reproduce the completeness/conciseness histograms of
///    Tables 1-2 and the 19 output-coverage exceptions of Section 4.3;
///  * 72 "decayed" modules (listed in `retired_ids`) that are registered
///    and invocable until RetireDecayedModules() is called — run the
///    provenance/workflow corpus first, then retire them, exactly like the
///    real services that were traced before their providers withdrew them.
struct Corpus {
  std::shared_ptr<const KnowledgeBase> kb;
  std::shared_ptr<Ontology> ontology;
  std::shared_ptr<ModuleRegistry> registry;
  std::vector<std::string> available_ids;  ///< The 252 experiment modules.
  std::vector<std::string> retired_ids;    ///< The 72 decayed modules.
};

/// Builds the full corpus (knowledge base, ontology, modules).
[[nodiscard]] Result<Corpus> BuildCorpus(const CorpusOptions& options = {});

/// Marks the 72 decayed modules as withdrawn by their providers.
[[nodiscard]] Status RetireDecayedModules(Corpus& corpus);

}  // namespace dexa

#endif  // DEXA_CORPUS_CORPUS_H_
