#ifndef DEXA_CORPUS_TERM_VALUES_H_
#define DEXA_CORPUS_TERM_VALUES_H_

#include <string>
#include <string_view>
#include <vector>

#include "formats/term_instance.h"
#include "kb/knowledge_base.h"

namespace dexa {

/// Canonical term instances per OntologyTerm leaf concept, derived from the
/// knowledge base where it has matching entities (GO terms, pathways,
/// diseases) and from fixed controlled vocabularies otherwise (anatomy,
/// chemical, phenotype). Index `i` cycles through the vocabulary.
std::string MakeGoTermValue(const KnowledgeBase& kb, size_t i);
std::string MakePathwayConceptValue(const KnowledgeBase& kb, size_t i);
std::string MakeDiseaseTermValue(const KnowledgeBase& kb, size_t i);
std::string MakeAnatomyTermValue(size_t i);
std::string MakeChemicalTermValue(size_t i);
std::string MakePhenotypeTermValue(size_t i);

}  // namespace dexa

#endif  // DEXA_CORPUS_TERM_VALUES_H_
