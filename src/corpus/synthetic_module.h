#ifndef DEXA_CORPUS_SYNTHETIC_MODULE_H_
#define DEXA_CORPUS_SYNTHETIC_MODULE_H_

#include <functional>
#include <memory>
#include <utility>

#include "modules/module.h"

namespace dexa {

/// Ground truth backed by a classification lambda (corpus modules declare
/// their documented behavior classes this way).
class LambdaGroundTruth : public BehaviorGroundTruth {
 public:
  using ClassFn = std::function<int(const std::vector<Value>&)>;

  LambdaGroundTruth(int num_classes, ClassFn class_of)
      : num_classes_(num_classes), class_of_(std::move(class_of)) {}

  int num_classes() const override { return num_classes_; }
  int ClassOf(const std::vector<Value>& inputs) const override {
    return class_of_(inputs);
  }

 private:
  int num_classes_;
  ClassFn class_of_;
};

/// A corpus module: spec + behavior lambda + documented ground truth.
/// The behavior closure captures a const KnowledgeBase (shared) — exactly
/// the situation of the paper's modules, which are thin front-ends over
/// remote databases.
class SyntheticModule : public Module {
 public:
  using Behavior =
      std::function<Result<std::vector<Value>>(const std::vector<Value>&)>;

  SyntheticModule(ModuleSpec spec, Behavior behavior, int num_classes,
                  LambdaGroundTruth::ClassFn class_of)
      : Module(std::move(spec)),
        behavior_(std::move(behavior)),
        truth_(num_classes, std::move(class_of)) {}

  /// Convenience for single-behavior-class modules.
  SyntheticModule(ModuleSpec spec, Behavior behavior)
      : SyntheticModule(std::move(spec), std::move(behavior), 1,
                        [](const std::vector<Value>&) { return 0; }) {}

  const BehaviorGroundTruth* ground_truth() const override { return &truth_; }

 protected:
  [[nodiscard]] Result<std::vector<Value>> InvokeImpl(
      const std::vector<Value>& inputs) const override {
    return behavior_(inputs);
  }

 private:
  Behavior behavior_;
  LambdaGroundTruth truth_;
};

}  // namespace dexa

#endif  // DEXA_CORPUS_SYNTHETIC_MODULE_H_
