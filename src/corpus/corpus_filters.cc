#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "common/strings.h"
#include "corpus/behaviors.h"
#include "corpus/builder_internal.h"
#include "formats/alphabet.h"
#include "formats/entity_records.h"
#include "formats/sequence_record.h"

namespace dexa {
namespace corpus_internal {

namespace {

const StructuralType kStr = StructuralType::String();
const StructuralType kStrList = StructuralType::List(StructuralType::String());

/// A predicate over a single list element; parse failures surface as
/// InvalidArgument, aborting the whole invocation (a filter fed garbage
/// terminates abnormally rather than silently dropping everything).
using ElementPredicate = std::function<Result<bool>(const std::string&)>;

SyntheticModule::Behavior ListFilterBehavior(ElementPredicate predicate) {
  return [predicate](const std::vector<Value>& in) -> Result<std::vector<Value>> {
    if (!in[0].is_list()) {
      return Status::InvalidArgument("filter expects a list input");
    }
    std::vector<Value> kept;
    for (const Value& element : in[0].AsList()) {
      if (!element.is_string()) {
        return Status::InvalidArgument("filter expects string elements");
      }
      auto keep = predicate(element.AsString());
      if (!keep.ok()) return keep.status();
      if (*keep) kept.push_back(element);
    }
    return std::vector<Value>{Value::ListOf(std::move(kept))};
  };
}

/// Behavior classes of the under-partitioned list filters: element alphabet
/// plus the hidden long-sequence split (5 classes over 3 ontology
/// partitions).
int SequenceListClass(const std::vector<Value>& in) {
  if (!in[0].is_list() || in[0].AsList().empty()) return 4;
  size_t max_len = 0;
  SeqAlphabet alphabet = SeqAlphabet::kProtein;
  for (const Value& element : in[0].AsList()) {
    if (!element.is_string()) continue;
    max_len = std::max(max_len, element.AsString().size());
    alphabet = ClassifySequence(element.AsString());
  }
  bool long_list = max_len > kLongSequenceThreshold;
  switch (alphabet) {
    case SeqAlphabet::kDna:
      return long_list ? 1 : 0;
    case SeqAlphabet::kRna:
      return long_list ? 3 : 2;
    case SeqAlphabet::kProtein:
      return 4;
  }
  return 4;
}

Result<double> ParsedMass(const std::string& record) {
  if (auto compound = ParseCompoundRecord(record); compound.ok()) {
    return compound->mass;
  }
  if (auto glycan = ParseGlycanRecord(record); glycan.ok()) {
    return glycan->mass;
  }
  return Status::InvalidArgument("record carries no MASS field");
}

}  // namespace

void AddFilterModules(CorpusBuilder& b) {
  // --- Under-partitioned sequence-list filters (completeness 0.6):
  // documented with five classes of behavior, three of which the
  // ontology-derived examples can reach.
  auto entropy_keep = [](const std::string& seq) -> Result<bool> {
    if (seq.empty()) return false;
    std::set<char> distinct(seq.begin(), seq.end());
    return distinct.size() >= 3;
  };
  for (const char* name :
       {"EBI_FilterLowComplexity", "DDBJ_FilterLowComplexity",
        "EBI_FilterInformative", "NCBI_FilterInformative"}) {
    b.Add(false, ModuleKind::kFiltering, name,
          {b.P("sequences", kStrList, "BiologicalSequence")},
          {b.P("kept", kStrList, "BiologicalSequence")},
          ListFilterBehavior(entropy_keep), 5, SequenceListClass);
  }

  // --- Organism filters: the predicate is visible in the data examples
  // (kept elements share one organism), so every simulated user identifies
  // these (Section 5).
  struct OrganismRow {
    const char* name;
    const char* element_concept;
    const char* organism;
  };
  static const OrganismRow kOrganismRows[] = {
      {"EBI_FilterHumanProteins", "UniprotRecord", "Homo sapiens"},
      {"KEGG_FilterMouseGenes", "KEGGGeneRecord", "Mus musculus"},
      {"EBI_FilterYeastProteins", "UniprotRecord", "Saccharomyces cerevisiae"},
      {"KEGG_FilterHumanPathways", "PathwayRecord", "Homo sapiens"},
      {"EBI_FilterFlyProteins", "FastaRecord", "Drosophila melanogaster"},
  };
  for (const OrganismRow& row : kOrganismRows) {
    std::string organism = row.organism;
    b.Add(false, ModuleKind::kFiltering, row.name,
          {b.P("records", kStrList, row.element_concept)},
          {b.P("kept", kStrList, row.element_concept)},
          ListFilterBehavior([organism](const std::string& record) -> Result<bool> {
            if (auto data = ParseSequenceRecordAny(record); data.ok()) {
              return data->organism == organism;
            }
            if (auto gene = ParseGeneRecord(record); gene.ok()) {
              return gene->organism == organism;
            }
            if (auto pathway = ParsePathwayRecord(record); pathway.ok()) {
              return pathway->organism == organism;
            }
            return Status::InvalidArgument("unsupported record format");
          }));
  }

  // --- Length-threshold filters (identifiable by users 2 and 3).
  struct LengthRow {
    const char* name;
    const char* element_concept;
    size_t threshold;
    bool keep_long;
    bool parse_record;
  };
  static const LengthRow kLengthRows[] = {
      {"EBI_FilterLongProteins", "ProteinSequence", 120, true, false},
      {"EBI_FilterShortDNA", "DNASequence", 400, false, false},
      {"EBI_FilterLongFasta", "FastaRecord", 120, true, true},
      {"DDBJ_FilterLongGenes", "EMBLRecord", 400, true, true},
  };
  for (const LengthRow& row : kLengthRows) {
    size_t threshold = row.threshold;
    bool keep_long = row.keep_long;
    bool parse_record = row.parse_record;
    b.Add(false, ModuleKind::kFiltering, row.name,
          {b.P("items", kStrList, row.element_concept)},
          {b.P("kept", kStrList, row.element_concept)},
          ListFilterBehavior([threshold, keep_long, parse_record](
                                 const std::string& item) -> Result<bool> {
            size_t length = item.size();
            if (parse_record) {
              auto data = ParseSequenceRecordAny(item);
              if (!data.ok()) return data.status();
              length = data->sequence.size();
            }
            return keep_long ? length >= threshold : length <= threshold;
          }));
  }

  // --- Numeric-threshold filters (identifiable by user 3).
  for (const auto& [name, concept_name, threshold] :
       {std::tuple{"KEGG_FilterHeavyCompounds", "CompoundRecord", 400.0},
        std::tuple{"KEGG_FilterHeavyGlycans", "GlycanRecord", 500.0}}) {
    double cut = threshold;
    b.Add(false, ModuleKind::kFiltering, name,
          {b.P("records", kStrList, concept_name)},
          {b.P("kept", kStrList, concept_name)},
          ListFilterBehavior([cut](const std::string& record) -> Result<bool> {
            auto mass = ParsedMass(record);
            if (!mass.ok()) return mass.status();
            return *mass >= cut;
          }));
  }
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterSignificantHits",
        {b.P("report", kStr, "AlignmentReport")},
        {b.P("filtered", kStr, "AlignmentReport")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto report = ParseAlignmentReport(in[0].AsString());
          if (!report.ok()) return report.status();
          AlignmentReportData out = *report;
          out.hits.clear();
          for (const AlignmentHit& hit : report->hits) {
            if (hit.evalue <= 1e-5) out.hits.push_back(hit);
          }
          return One(RenderAlignmentReport(out));
        });

  // --- Opaque filters: predicates no simulated user's repertoire explains
  // (the majority case the paper reports for filtering modules).
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterGcBand",
        {b.P("sequences", kStrList, "DNASequence")},
        {b.P("kept", kStrList, "DNASequence")},
        ListFilterBehavior([](const std::string& seq) -> Result<bool> {
          double gc = GcContent(seq);
          return gc >= 0.2 && gc <= 0.8;
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterHighEntropySeqs",
        {b.P("sequences", kStrList, "ProteinSequence")},
        {b.P("kept", kStrList, "ProteinSequence")},
        ListFilterBehavior([](const std::string& seq) -> Result<bool> {
          std::set<char> distinct(seq.begin(), seq.end());
          return distinct.size() >= 15;
        }));
  b.Add(false, ModuleKind::kFiltering, "DDBJ_FilterEvenEntries",
        {b.P("records", kStrList, "UniprotRecord")},
        {b.P("kept", kStrList, "UniprotRecord")},
        ListFilterBehavior([](const std::string& record) -> Result<bool> {
          auto data = ParseSequenceRecordAny(record);
          if (!data.ok()) return data.status();
          return IdDigitsParity(data->accession) == 0;
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterPalindromic",
        {b.P("sequences", kStrList, "DNASequence")},
        {b.P("kept", kStrList, "DNASequence")},
        ListFilterBehavior([](const std::string& seq) -> Result<bool> {
          return Contains(seq, "GATC");
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterModelOrganisms",
        {b.P("records", kStrList, "UniprotRecord")},
        {b.P("kept", kStrList, "UniprotRecord")},
        ListFilterBehavior([](const std::string& record) -> Result<bool> {
          auto data = ParseSequenceRecordAny(record);
          if (!data.ok()) return data.status();
          return data->organism == "Homo sapiens" ||
                 data->organism == "Saccharomyces cerevisiae";
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterKmerRich",
        {b.P("sequences", kStrList, "DNASequence")},
        {b.P("kept", kStrList, "DNASequence")},
        ListFilterBehavior([](const std::string& seq) -> Result<bool> {
          std::set<std::string> trimers;
          for (size_t i = 0; i + 3 <= seq.size(); ++i) {
            trimers.insert(seq.substr(i, 3));
          }
          return trimers.size() >= 40;
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterTryptophanRich",
        {b.P("sequences", kStrList, "ProteinSequence")},
        {b.P("kept", kStrList, "ProteinSequence")},
        ListFilterBehavior([](const std::string& seq) -> Result<bool> {
          return std::count(seq.begin(), seq.end(), 'W') >= 3;
        }));
  b.Add(false, ModuleKind::kFiltering, "KEGG_FilterReferenceCompounds",
        {b.P("records", kStrList, "CompoundRecord")},
        {b.P("kept", kStrList, "CompoundRecord")},
        ListFilterBehavior([](const std::string& record) -> Result<bool> {
          auto compound = ParseCompoundRecord(record);
          if (!compound.ok()) return compound.status();
          // Keeps the curated "reference" entries (even-numbered ids) —
          // invisible from the record contents themselves.
          return IdDigitsParity(compound->compound_id) == 0;
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterEvenAccessions",
        {b.P("accessions", kStrList, "UniprotAccession")},
        {b.P("kept", kStrList, "UniprotAccession")},
        ListFilterBehavior([](const std::string& acc) -> Result<bool> {
          return IdDigitsParity(acc) == 0;
        }));
  b.Add(false, ModuleKind::kFiltering, "KEGG_FilterPathwayRich",
        {b.P("records", kStrList, "KEGGGeneRecord")},
        {b.P("kept", kStrList, "KEGGGeneRecord")},
        ListFilterBehavior([](const std::string& record) -> Result<bool> {
          auto gene = ParseGeneRecord(record);
          if (!gene.ok()) return gene.status();
          return gene->pathway_ids.size() >= 2;
        }));
  b.Add(false, ModuleKind::kFiltering, "EBI_FilterCodonAligned",
        {b.P("records", kStrList, "UniprotRecord")},
        {b.P("kept", kStrList, "UniprotRecord")},
        ListFilterBehavior([](const std::string& record) -> Result<bool> {
          auto data = ParseSequenceRecordAny(record);
          if (!data.ok()) return data.status();
          // Keeps entries whose length is a whole number of codons — a
          // predicate no participant repertoire explains.
          return data->sequence.size() % 3 == 0;
        }));
}

}  // namespace corpus_internal
}  // namespace dexa
