#include "corpus/behaviors.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "formats/alphabet.h"
#include "formats/entity_records.h"
#include "formats/kegg_flat.h"
#include "formats/sniffer.h"
#include "kb/render.h"

namespace dexa {

const char* RecordKindConcept(RecordKind kind) {
  switch (kind) {
    case RecordKind::kUniprot:
      return "UniprotRecord";
    case RecordKind::kFasta:
      return "FastaRecord";
    case RecordKind::kEmbl:
      return "EMBLRecord";
    case RecordKind::kGenBank:
      return "GenBankRecord";
    case RecordKind::kPdb:
      return "PDBRecord";
    case RecordKind::kKeggGene:
      return "KEGGGeneRecord";
    case RecordKind::kEnzyme:
      return "EnzymeRecord";
    case RecordKind::kGlycan:
      return "GlycanRecord";
    case RecordKind::kLigand:
      return "LigandRecord";
    case RecordKind::kCompound:
      return "CompoundRecord";
    case RecordKind::kPathway:
      return "PathwayRecord";
    case RecordKind::kGo:
      return "GORecord";
    case RecordKind::kInterPro:
      return "InterProRecord";
    case RecordKind::kPfam:
      return "PfamRecord";
    case RecordKind::kDisease:
      return "DiseaseRecord";
  }
  return "Record";
}

Result<std::string> RetrieveRecord(const KnowledgeBase& kb, RecordKind kind,
                                   const std::string& accession) {
  switch (kind) {
    case RecordKind::kUniprot: {
      auto protein = kb.FindProtein(accession);
      if (!protein.ok()) return protein.status();
      return RenderUniprot(SequenceDataFromProtein(**protein));
    }
    case RecordKind::kFasta: {
      auto protein = kb.FindProtein(accession);
      if (!protein.ok()) return protein.status();
      return RenderFasta(SequenceDataFromProtein(**protein));
    }
    case RecordKind::kEmbl: {
      auto protein = kb.FindProteinByEmbl(accession);
      if (!protein.ok()) return protein.status();
      auto gene = kb.FindGene((*protein)->gene_id);
      if (!gene.ok()) return gene.status();
      SequenceData data = SequenceDataFromGene(**gene);
      data.accession = accession;  // Serve under the EMBL accession.
      return RenderEmbl(data);
    }
    case RecordKind::kGenBank: {
      auto protein = kb.FindProteinByEmbl(accession);
      if (!protein.ok()) return protein.status();
      auto gene = kb.FindGene((*protein)->gene_id);
      if (!gene.ok()) return gene.status();
      SequenceData data = SequenceDataFromGene(**gene);
      data.accession = accession;
      return RenderGenBank(data);
    }
    case RecordKind::kPdb: {
      auto protein = kb.FindProteinByPdb(accession);
      if (!protein.ok()) return protein.status();
      SequenceData data = SequenceDataFromProtein(**protein);
      data.accession = accession;
      return RenderPdb(data);
    }
    case RecordKind::kKeggGene: {
      auto gene = kb.FindGene(accession);
      if (!gene.ok()) return gene.status();
      return RenderGeneRecord(GeneRecordFrom(**gene));
    }
    case RecordKind::kEnzyme: {
      auto enzyme = kb.FindEnzyme(accession);
      if (!enzyme.ok()) return enzyme.status();
      return RenderEnzymeRecord(EnzymeRecordFrom(**enzyme));
    }
    case RecordKind::kGlycan: {
      auto glycan = kb.FindGlycan(accession);
      if (!glycan.ok()) return glycan.status();
      return RenderGlycanRecord(GlycanRecordFrom(**glycan));
    }
    case RecordKind::kLigand: {
      auto ligand = kb.FindLigand(accession);
      if (!ligand.ok()) return ligand.status();
      return RenderLigandRecord(LigandRecordFrom(**ligand));
    }
    case RecordKind::kCompound: {
      auto compound = kb.FindCompound(accession);
      if (!compound.ok()) return compound.status();
      return RenderCompoundRecord(CompoundRecordFrom(**compound));
    }
    case RecordKind::kPathway: {
      auto pathway = kb.FindPathway(accession);
      if (!pathway.ok()) return pathway.status();
      return RenderPathwayRecord(PathwayRecordFrom(**pathway));
    }
    case RecordKind::kGo: {
      auto term = kb.FindGoTerm(accession);
      if (!term.ok()) return term.status();
      return RenderGoTerm(GoTermFrom(**term));
    }
    case RecordKind::kInterPro: {
      // Served per protein: the protein's first InterPro entry.
      auto protein = kb.FindProtein(accession);
      if (!protein.ok()) return protein.status();
      if ((*protein)->interpro_ids.empty()) {
        return Status::NotFound("protein has no InterPro annotation");
      }
      auto entry = kb.FindInterPro((*protein)->interpro_ids[0]);
      if (!entry.ok()) return entry.status();
      return RenderInterProRecord(InterProRecordFrom(**entry));
    }
    case RecordKind::kPfam: {
      auto protein = kb.FindProtein(accession);
      if (!protein.ok()) return protein.status();
      if ((*protein)->pfam_ids.empty()) {
        return Status::NotFound("protein has no Pfam annotation");
      }
      auto entry = kb.FindPfam((*protein)->pfam_ids[0]);
      if (!entry.ok()) return entry.status();
      return RenderPfamRecord(PfamRecordFrom(**entry));
    }
    case RecordKind::kDisease: {
      // Served per gene: the first disease referencing the gene.
      for (const DiseaseEntity& disease : kb.diseases()) {
        for (const std::string& gene_id : disease.gene_ids) {
          if (gene_id == accession) {
            return RenderDiseaseRecord(DiseaseRecordFrom(disease));
          }
        }
      }
      return Status::NotFound("no disease references gene '" + accession +
                              "'");
    }
  }
  return Status::Internal("unhandled record kind");
}

const char* SeqFormatConcept(SeqFormat format) {
  switch (format) {
    case SeqFormat::kFasta:
      return "FastaRecord";
    case SeqFormat::kUniprot:
      return "UniprotRecord";
    case SeqFormat::kEmbl:
      return "EMBLRecord";
    case SeqFormat::kGenBank:
      return "GenBankRecord";
    case SeqFormat::kPdb:
      return "PDBRecord";
  }
  return "SequenceRecord";
}

Result<SequenceData> ParseSequenceRecordAny(const std::string& text,
                                            SeqFormat* format_out) {
  std::string sniffed = SniffFormat(text);
  SeqFormat format;
  if (sniffed == "FastaRecord") {
    format = SeqFormat::kFasta;
  } else if (sniffed == "UniprotRecord") {
    format = SeqFormat::kUniprot;
  } else if (sniffed == "EMBLRecord") {
    format = SeqFormat::kEmbl;
  } else if (sniffed == "GenBankRecord") {
    format = SeqFormat::kGenBank;
  } else if (sniffed == "PDBRecord") {
    format = SeqFormat::kPdb;
  } else {
    return Status::InvalidArgument("not a sequence record (sniffed '" +
                                   sniffed + "')");
  }
  if (format_out != nullptr) *format_out = format;
  switch (format) {
    case SeqFormat::kFasta:
      return ParseFasta(text);
    case SeqFormat::kUniprot:
      return ParseUniprot(text);
    case SeqFormat::kEmbl:
      return ParseEmbl(text);
    case SeqFormat::kGenBank:
      return ParseGenBank(text);
    case SeqFormat::kPdb:
      return ParsePdb(text);
  }
  return Status::Internal("unhandled sequence format");
}

std::string RenderSequenceData(const SequenceData& data, SeqFormat format) {
  switch (format) {
    case SeqFormat::kFasta:
      return RenderFasta(data);
    case SeqFormat::kUniprot:
      return RenderUniprot(data);
    case SeqFormat::kEmbl:
      return RenderEmbl(data);
    case SeqFormat::kGenBank:
      return RenderGenBank(data);
    case SeqFormat::kPdb:
      return RenderPdb(data);
  }
  return "";
}

Result<std::string> ExtractPrimaryId(const std::string& record) {
  std::string sniffed = SniffFormat(record);
  if (sniffed.empty()) {
    return Status::InvalidArgument("unrecognized record format");
  }
  // Sequence formats: full parse.
  SeqFormat format;
  auto data = ParseSequenceRecordAny(record, &format);
  if (data.ok()) return data->accession;
  // KEGG family: ENTRY id.
  auto kegg = ParseKeggFlat(record);
  if (kegg.ok()) {
    std::string entry = kegg->GetFirst("ENTRY");
    size_t space = entry.find(' ');
    std::string id = space == std::string::npos ? entry : entry.substr(0, space);
    if (StartsWith(entry, "EC ")) {
      // Enzyme entries carry "EC <number>".
      std::vector<std::string> tokens = Split(entry, ' ');
      if (tokens.size() >= 2) return tokens[1];
    }
    if (!id.empty()) return id;
    return Status::InvalidArgument("KEGG record without ENTRY id");
  }
  // Stanza formats (GO / InterPro / Pfam): shared line-prefix extraction.
  for (const std::string& line : SplitLines(record)) {
    std::string trimmed = Trim(line);
    if (StartsWith(trimmed, "id: ")) return trimmed.substr(4);
    if (StartsWith(trimmed, "AC   ")) return Trim(trimmed.substr(5));
    if (StartsWith(trimmed, "#=GF AC   ")) return Trim(trimmed.substr(10));
  }
  return Status::InvalidArgument("no primary id found in record");
}

Result<std::string> ExtractEntryName(const std::string& record) {
  std::string sniffed = SniffFormat(record);
  if (sniffed.empty()) {
    return Status::InvalidArgument("unrecognized record format");
  }
  auto data = ParseSequenceRecordAny(record);
  if (data.ok()) return data->name;
  auto kegg = ParseKeggFlat(record);
  if (kegg.ok()) {
    std::string name = kegg->GetFirst("NAME");
    if (!name.empty()) return name;
    return Status::InvalidArgument("KEGG record without NAME");
  }
  for (const std::string& line : SplitLines(record)) {
    std::string trimmed = Trim(line);
    if (StartsWith(trimmed, "name: ")) return trimmed.substr(6);
    if (StartsWith(trimmed, "NA   ")) return Trim(trimmed.substr(5));
    if (StartsWith(trimmed, "#=GF ID   ")) return Trim(trimmed.substr(10));
  }
  return Status::InvalidArgument("no entry name found in record");
}

Result<std::string> SummarizeRecordLine(const std::string& record) {
  auto id = ExtractPrimaryId(record);
  if (!id.ok()) return id.status();
  auto name = ExtractEntryName(record);
  if (!name.ok()) return name.status();
  return *id + " " + *name;
}

Result<std::string> ExtractSequenceText(const std::string& record) {
  auto data = ParseSequenceRecordAny(record);
  if (!data.ok()) return data.status();
  if (data->sequence.empty()) {
    return Status::InvalidArgument("record carries no sequence");
  }
  return data->sequence;
}

Result<std::string> LookupSequenceForAccession(const KnowledgeBase& kb,
                                               const std::string& accession) {
  if (auto protein = kb.FindProtein(accession); protein.ok()) {
    return (*protein)->sequence;
  }
  if (auto protein = kb.FindProteinByPdb(accession); protein.ok()) {
    return (*protein)->sequence;
  }
  if (auto protein = kb.FindProteinByEmbl(accession); protein.ok()) {
    auto gene = kb.FindGene((*protein)->gene_id);
    if (!gene.ok()) return gene.status();
    return (*gene)->dna_sequence;
  }
  if (auto gene = kb.FindGene(accession); gene.ok()) {
    return (*gene)->dna_sequence;
  }
  return Status::NotFound("no sequence database knows accession '" +
                          accession + "'");
}

namespace {

bool IsWeakBase(char c) { return c == 'A' || c == 'T' || c == 'U'; }
bool IsStrongBase(char c) { return c == 'G' || c == 'C'; }

size_t CountChar(const std::string& s, char c) {
  return static_cast<size_t>(std::count(s.begin(), s.end(), c));
}

}  // namespace

double NucleotideStatistic(NucStat stat, const std::string& sequence) {
  const double n = static_cast<double>(sequence.size());
  switch (stat) {
    case NucStat::kGcContent:
      return GcContent(sequence);
    case NucStat::kAtContent: {
      if (sequence.empty()) return 0.0;
      size_t at = 0;
      for (char c : sequence) {
        if (IsWeakBase(c)) ++at;
      }
      return static_cast<double>(at) / n;
    }
    case NucStat::kCountA:
      return static_cast<double>(CountChar(sequence, 'A'));
    case NucStat::kCountC:
      return static_cast<double>(CountChar(sequence, 'C'));
    case NucStat::kCountG:
      return static_cast<double>(CountChar(sequence, 'G'));
    case NucStat::kCountCgDinucleotide: {
      size_t count = 0;
      for (size_t i = 0; i + 1 < sequence.size(); ++i) {
        if (sequence[i] == 'C' && sequence[i + 1] == 'G') ++count;
      }
      return static_cast<double>(count);
    }
    case NucStat::kPurineCount:
      return static_cast<double>(CountChar(sequence, 'A') +
                                 CountChar(sequence, 'G'));
    case NucStat::kPyrimidineCount:
      return static_cast<double>(sequence.size() - CountChar(sequence, 'A') -
                                 CountChar(sequence, 'G'));
    case NucStat::kShannonEntropy: {
      if (sequence.empty()) return 0.0;
      double entropy = 0.0;
      for (char c : std::string("ACGTU")) {
        double p = static_cast<double>(CountChar(sequence, c)) / n;
        if (p > 0.0) entropy -= p * std::log2(p);
      }
      return entropy;
    }
    case NucStat::kLinguisticComplexity: {
      if (sequence.size() < 3) return 0.0;
      std::set<std::string> trimers;
      for (size_t i = 0; i + 3 <= sequence.size(); ++i) {
        trimers.insert(sequence.substr(i, 3));
      }
      double possible =
          std::min(static_cast<double>(sequence.size() - 2), 64.0);
      return static_cast<double>(trimers.size()) / possible;
    }
    case NucStat::kMaxHomopolymerRun: {
      size_t best = 0;
      size_t run = 0;
      char prev = '\0';
      for (char c : sequence) {
        run = (c == prev) ? run + 1 : 1;
        prev = c;
        best = std::max(best, run);
      }
      return static_cast<double>(best);
    }
    case NucStat::kGcSkew: {
      double g = static_cast<double>(CountChar(sequence, 'G'));
      double c = static_cast<double>(CountChar(sequence, 'C'));
      return (g + c) == 0.0 ? 0.0 : (g - c) / (g + c);
    }
    case NucStat::kChecksum:
      return static_cast<double>(StableHash64(sequence) % 1000000);
    case NucStat::kBasicMeltingTemp: {
      double weak = 0.0;
      double strong = 0.0;
      for (char c : sequence) {
        if (IsWeakBase(c)) weak += 1.0;
        if (IsStrongBase(c)) strong += 1.0;
      }
      return 2.0 * weak + 4.0 * strong;
    }
  }
  return 0.0;
}

namespace {

/// Per-residue property tables for the protein-side calculations.
double ResidueHydrophobicity(char c) {
  // Kyte-Doolittle-ish values.
  switch (c) {
    case 'I': return 4.5;
    case 'V': return 4.2;
    case 'L': return 3.8;
    case 'F': return 2.8;
    case 'C': return 2.5;
    case 'M': return 1.9;
    case 'A': return 1.8;
    case 'G': return -0.4;
    case 'T': return -0.7;
    case 'S': return -0.8;
    case 'W': return -0.9;
    case 'Y': return -1.3;
    case 'P': return -1.6;
    case 'H': return -3.2;
    case 'E': return -3.5;
    case 'Q': return -3.5;
    case 'D': return -3.5;
    case 'N': return -3.5;
    case 'K': return -3.9;
    case 'R': return -4.5;
  }
  return 0.0;
}

double ResidueCharge(char c) {
  switch (c) {
    case 'K':
    case 'R':
      return 1.0;
    case 'H':
      return 0.1;
    case 'D':
    case 'E':
      return -1.0;
  }
  return 0.0;
}

/// Evaluates `fn` over the residues of `seq`, or — for long sequences — a
/// deterministic sample of every 7th residue (the hidden second behavior
/// class of the under-partitioned analysis modules).
template <typename Fn>
double AccumulateResidues(const std::string& seq, bool sampled, Fn fn) {
  double total = 0.0;
  size_t used = 0;
  size_t step = sampled ? 7 : 1;
  for (size_t i = 0; i < seq.size(); i += step) {
    total += fn(seq[i]);
    ++used;
  }
  if (sampled && used > 0) {
    total *= static_cast<double>(seq.size()) / static_cast<double>(used);
  }
  return total;
}

}  // namespace

double SequenceProperty(SeqProperty property, const std::string& sequence) {
  SeqAlphabet alphabet = ClassifySequence(sequence);
  const bool sampled = sequence.size() > kLongSequenceThreshold;
  switch (property) {
    case SeqProperty::kMolecularWeight: {
      if (alphabet == SeqAlphabet::kDna) {
        return 327.0 * static_cast<double>(sequence.size());
      }
      if (alphabet == SeqAlphabet::kRna) {
        return 343.0 * static_cast<double>(sequence.size());
      }
      if (!sampled) return ProteinMass(sequence);
      return AccumulateResidues(sequence, true, [](char c) {
        return ProteinMass(std::string_view(&c, 1));
      });
    }
    case SeqProperty::kIsoelectricPoint: {
      if (alphabet != SeqAlphabet::kProtein) return 7.0;
      double charge =
          AccumulateResidues(sequence, sampled, ResidueCharge);
      return 7.0 + charge / (static_cast<double>(sequence.size()) + 1.0) * 10.0;
    }
    case SeqProperty::kHydrophobicity: {
      if (alphabet != SeqAlphabet::kProtein) return 0.0;
      double total =
          AccumulateResidues(sequence, sampled, ResidueHydrophobicity);
      return total / static_cast<double>(sequence.size());
    }
    case SeqProperty::kAromaticity: {
      if (alphabet != SeqAlphabet::kProtein) {
        return GcContent(sequence);  // Nucleotide proxy.
      }
      double count = AccumulateResidues(sequence, sampled, [](char c) {
        return (c == 'F' || c == 'W' || c == 'Y') ? 1.0 : 0.0;
      });
      return count / static_cast<double>(sequence.size());
    }
    case SeqProperty::kInstabilityIndex: {
      if (alphabet != SeqAlphabet::kProtein) {
        return NucleotideStatistic(NucStat::kMaxHomopolymerRun, sequence);
      }
      double total = AccumulateResidues(sequence, sampled, [](char c) {
        return std::abs(ResidueHydrophobicity(c)) + ResidueCharge(c);
      });
      return total / static_cast<double>(sequence.size()) * 10.0;
    }
    case SeqProperty::kAliphaticIndex: {
      if (alphabet != SeqAlphabet::kProtein) return 0.0;
      double count = AccumulateResidues(sequence, sampled, [](char c) {
        if (c == 'A') return 1.0;
        if (c == 'V') return 2.9;
        if (c == 'I' || c == 'L') return 3.9;
        return 0.0;
      });
      return count / static_cast<double>(sequence.size()) * 100.0;
    }
    case SeqProperty::kChargeAtPh7: {
      if (alphabet != SeqAlphabet::kProtein) {
        return -static_cast<double>(sequence.size());  // Backbone charge.
      }
      return AccumulateResidues(sequence, sampled, ResidueCharge);
    }
    case SeqProperty::kExtinctionCoefficient: {
      if (alphabet != SeqAlphabet::kProtein) return 0.0;
      double total = AccumulateResidues(sequence, sampled, [](char c) {
        if (c == 'W') return 5500.0;
        if (c == 'Y') return 1490.0;
        if (c == 'C') return 125.0;
        return 0.0;
      });
      return total;
    }
  }
  return 0.0;
}

std::vector<std::string> MinePathwayConcepts(const KnowledgeBase& kb,
                                             const std::string& text) {
  std::vector<std::string> out;
  for (const PathwayEntity& pathway : kb.pathways()) {
    if (Contains(text, pathway.pathway_id) || Contains(text, pathway.name)) {
      std::string value = "PW:" + pathway.pathway_id.substr(5) + " ! " +
                          pathway.name;
      if (std::find(out.begin(), out.end(), value) == out.end()) {
        out.push_back(value);
      }
    }
  }
  return out;
}

std::vector<std::string> MineGeneIds(const KnowledgeBase& kb,
                                     const std::string& text) {
  std::vector<std::string> out;
  for (const GeneEntity& gene : kb.genes()) {
    if (Contains(text, gene.symbol)) {
      if (std::find(out.begin(), out.end(), gene.gene_id) == out.end()) {
        out.push_back(gene.gene_id);
      }
    }
  }
  return out;
}

Result<AlignmentReportData> HomologySearch(const KnowledgeBase& kb,
                                           const std::string& accession,
                                           const std::string& program,
                                           const std::string& database,
                                           size_t max_hits) {
  auto query = kb.FindProtein(accession);
  if (!query.ok()) return query.status();
  auto homologs = kb.Homologs(accession);
  if (!homologs.ok()) return homologs.status();

  AlignmentReportData report;
  report.program = program;
  report.database = database;
  report.query_accession = accession;
  for (const ProteinEntity* hit : *homologs) {
    if (report.hits.size() >= max_hits) break;
    double similarity = kb.Similarity(**query, *hit);
    AlignmentHit entry;
    entry.accession = hit->accession;
    entry.description = hit->name;
    entry.identity = similarity;
    entry.score = similarity * static_cast<double>(hit->sequence.size());
    entry.evalue = std::pow(10.0, -10.0 * similarity);
    report.hits.push_back(std::move(entry));
  }
  return report;
}

}  // namespace dexa
