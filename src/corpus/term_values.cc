#include "corpus/term_values.h"

#include "common/strings.h"

namespace dexa {

std::string MakeGoTermValue(const KnowledgeBase& kb, size_t i) {
  const auto& terms = kb.go_terms();
  const GoTermEntity& term = terms[i % terms.size()];
  // go_id is "GO:NNNNNNN"; strip the source for MakeTermInstance.
  return MakeTermInstance("GO", term.go_id.substr(3), term.name);
}

std::string MakePathwayConceptValue(const KnowledgeBase& kb, size_t i) {
  const auto& pathways = kb.pathways();
  const PathwayEntity& pathway = pathways[i % pathways.size()];
  // pathway_id is "path:hsaNNNNN"; use the organism-qualified tail.
  return MakeTermInstance("PW", pathway.pathway_id.substr(5), pathway.name);
}

std::string MakeDiseaseTermValue(const KnowledgeBase& kb, size_t i) {
  const auto& diseases = kb.diseases();
  const DiseaseEntity& disease = diseases[i % diseases.size()];
  return MakeTermInstance("DOID", disease.disease_id.substr(1), disease.name);
}

namespace {
struct FixedTerm {
  const char* id;
  const char* label;
};
}  // namespace

std::string MakeAnatomyTermValue(size_t i) {
  static constexpr FixedTerm kTerms[] = {
      {"0002107", "hepatic lobe"},    {"0000955", "brain cortex"},
      {"0002048", "lung parenchyma"}, {"0000948", "heart ventricle"},
      {"0002113", "kidney medulla"},
  };
  const FixedTerm& term = kTerms[i % std::size(kTerms)];
  return MakeTermInstance("UBERON", term.id, term.label);
}

std::string MakeChemicalTermValue(size_t i) {
  static constexpr FixedTerm kTerms[] = {
      {"17234", "glucose moiety"},   {"16541", "protein polymer"},
      {"33709", "amino acid unit"},  {"18059", "lipid droplet"},
      {"36080", "polypeptide chain"},
  };
  const FixedTerm& term = kTerms[i % std::size(kTerms)];
  return MakeTermInstance("CHEBI", term.id, term.label);
}

std::string MakePhenotypeTermValue(size_t i) {
  static constexpr FixedTerm kTerms[] = {
      {"0001250", "recurrent seizures"}, {"0001631", "septal defect"},
      {"0002721", "immune deficiency"},  {"0001943", "impaired glycemia"},
      {"0003002", "breast neoplasm"},
  };
  const FixedTerm& term = kTerms[i % std::size(kTerms)];
  return MakeTermInstance("HP", term.id, term.label);
}

}  // namespace dexa
