#include "corpus/fault_injector.h"

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace dexa {

FaultInjector::FaultInjector(ModulePtr inner, FaultProfile profile,
                             EngineMetrics* metrics)
    : Module(inner->spec()),
      inner_(std::move(inner)),
      profile_(profile),
      metrics_(metrics) {}

Result<std::vector<Value>> FaultInjector::InvokeImpl(
    const std::vector<Value>& inputs) const {
  InvocationContext context;
  return InvokeWithContext(inputs, context);
}

Result<std::vector<Value>> FaultInjector::InvokeWithContext(
    const std::vector<Value>& inputs, InvocationContext& context) const {
  const uint64_t arrival =
      invocations_.fetch_add(1, std::memory_order_relaxed);
  context.charged_ns += profile_.latency_ns;

  auto inject = [&](Status status) -> Result<std::vector<Value>> {
    context.charged_ns += profile_.fault_latency_ns;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->RecordInjectedFault();
    return status;
  };

  if (profile_.down ||
      (profile_.decay_after != 0 && arrival >= profile_.decay_after)) {
    return inject(Status::Permanent("module '" + spec().name +
                                    "' backend is permanently gone"));
  }

  if (context.attempt < profile_.flaky_first_attempts) {
    return inject(Status::Transient("module '" + spec().name +
                                    "' is flaky (attempt " +
                                    std::to_string(context.attempt) + ")"));
  }

  if (profile_.transient_rate > 0.0 || profile_.timeout_rate > 0.0) {
    // One independent draw stream per (inputs, attempt): a retry re-rolls
    // the dice, and the verdict for a given input never depends on what
    // other inputs or threads did.
    uint64_t key = profile_.seed;
    for (const Value& value : inputs) key = HashCombine(key, value.Hash());
    Rng draw(HashCombine(key, static_cast<uint64_t>(context.attempt)));
    if (draw.NextDouble() < profile_.transient_rate) {
      return inject(Status::Transient("module '" + spec().name +
                                      "' dropped the connection"));
    }
    if (draw.NextDouble() < profile_.timeout_rate) {
      return inject(
          Status::Timeout("module '" + spec().name + "' stalled"));
    }
  }

  return inner_->Invoke(inputs, context);
}

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kCrashBeforeCommit:
      return "before-commit";
    case CrashPoint::kCrashAfterCommit:
      return "after-commit";
    case CrashPoint::kTornWrite:
      return "torn-write";
  }
  return "unknown";
}

Result<std::unique_ptr<ModuleRegistry>> WrapRegistryWithFaults(
    const ModuleRegistry& registry, const FaultProfile& profile,
    EngineMetrics* metrics) {
  auto wrapped = std::make_unique<ModuleRegistry>();
  for (const ModulePtr& module : registry.AllModules()) {
    FaultProfile module_profile = profile;
    module_profile.seed =
        HashCombine(profile.seed, StableHash64(module->spec().id));
    auto injector = std::make_shared<FaultInjector>(module, module_profile,
                                                    metrics);
    if (!module->available()) injector->Retire();
    DEXA_RETURN_IF_ERROR(wrapped->Register(std::move(injector)));
  }
  return wrapped;
}

}  // namespace dexa
