#ifndef DEXA_CORPUS_BUILDER_INTERNAL_H_
#define DEXA_CORPUS_BUILDER_INTERNAL_H_

// Internal to the corpus library: shared machinery between the available-
// module builder (corpus.cc) and the decayed-module builder
// (corpus_retired.cc). Not part of the public dexa API.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "corpus/corpus.h"
#include "corpus/synthetic_module.h"

namespace dexa {
namespace corpus_internal {

/// Incrementally assembles the corpus registry. Collects the first error
/// (construction is table-driven; errors indicate corpus bugs).
class CorpusBuilder {
 public:
  explicit CorpusBuilder(Corpus* corpus) : corpus_(corpus) {}

  const KnowledgeBase& kb() const { return *corpus_->kb; }
  std::shared_ptr<const KnowledgeBase> kb_ptr() const { return corpus_->kb; }
  ModuleRegistry& registry() { return *corpus_->registry; }

  /// Concept lookup; records an error on a missing concept.
  ConceptId C(const std::string& name) {
    auto id = corpus_->ontology->Require(name);
    if (!id.ok()) {
      Fail(id.status());
      return kInvalidConcept;
    }
    return *id;
  }

  /// Parameter shorthand.
  Parameter P(std::string name, StructuralType type,
              const std::string& concept_name, bool optional = false) {
    Parameter param;
    param.name = std::move(name);
    param.structural_type = std::move(type);
    param.semantic_type = C(concept_name);
    param.optional = optional;
    return param;
  }

  /// Creates, registers and tracks a module. `popular_eligible` feeds the
  /// popularity quota (Section 5 phase 1: modules recognizable by name).
  void Add(bool decayed, ModuleKind kind, std::string name,
           std::vector<Parameter> inputs, std::vector<Parameter> outputs,
           SyntheticModule::Behavior behavior, int num_classes = 1,
           LambdaGroundTruth::ClassFn class_of = nullptr,
           bool popular_eligible = false);

  void Fail(const Status& status) {
    if (status_.ok()) status_ = status;
  }
  const Status& status() const { return status_; }

 private:
  Corpus* corpus_;
  Status status_;
  int next_id_ = 0;
  int popular_assigned_ = 0;
};

/// Wraps a string result as a single-output value vector.
[[nodiscard]] inline Result<std::vector<Value>> One(Result<std::string> result) {
  if (!result.ok()) return result.status();
  return std::vector<Value>{Value::Str(std::move(result).value())};
}

[[nodiscard]] inline Result<std::vector<Value>> OneValue(Value value) {
  return std::vector<Value>{std::move(value)};
}

/// Wraps a list of strings as a single list-valued output.
[[nodiscard]] inline Result<std::vector<Value>> OneList(std::vector<std::string> items) {
  std::vector<Value> values;
  values.reserve(items.size());
  for (std::string& item : items) values.push_back(Value::Str(std::move(item)));
  return std::vector<Value>{Value::ListOf(std::move(values))};
}

/// Parity of the trailing digits of an identifier ("P00042" -> 0,
/// "hsa:10043" -> 1). Drives the deterministic behavior drift of the
/// "v1_" legacy modules: they disagree with their current counterparts
/// exactly on odd-parity entities.
int IdDigitsParity(const std::string& id);

/// Registers the 27 filtering modules (corpus_filters.cc).
void AddFilterModules(CorpusBuilder& builder);

/// Registers the 59 data-analysis modules (corpus_analysis.cc).
void AddAnalysisModules(CorpusBuilder& builder);

/// Registers the 72 decayed modules (16 with equivalent current
/// counterparts, 23 with overlapping ones, 33 with none;
/// corpus_retired.cc).
void AddRetiredModules(CorpusBuilder& builder);

}  // namespace corpus_internal
}  // namespace dexa

#endif  // DEXA_CORPUS_BUILDER_INTERNAL_H_
