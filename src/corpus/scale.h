#ifndef DEXA_CORPUS_SCALE_H_
#define DEXA_CORPUS_SCALE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "modules/module.h"
#include "modules/registry.h"
#include "ontology/ontology.h"
#include "pool/instance_pool.h"

namespace dexa {

/// Sizing of the synthetic scale corpus. Unlike BuildCorpus — which is
/// calibrated to reproduce the paper's 252-module evaluation numbers and
/// hard-fails on any other census — this builder targets 10k–100k modules:
/// everything is a pure deterministic function of (seed, module index), so
/// two builds with equal options are byte-identical, and a sub-registry of
/// any module subset annotates exactly like the full registry does (the
/// property the sharded runner's byte-equality contract rests on).
struct ScaleCorpusOptions {
  uint64_t seed = 42;
  /// Total synthetic modules, spread round-robin across the nine kinds
  /// (the five Table-3 kinds plus the four service-shaped ones).
  size_t modules = 10'000;
};

/// Shared mutable world state of a scale corpus: the schema epoch the
/// kSchemaDrifting modules consult. Advancing the epoch models a provider
/// rolling out an incompatible output format: every drifting module starts
/// failing with a permanent-class error, which is exactly the dynamic decay
/// repair/ScanForDecay probes for. The counter is atomic so a concurrent
/// annotation run observes a coherent value, but epoch changes are meant to
/// happen between runs (a mid-run flip would be schedule-dependent).
class ScaleWorld {
 public:
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<uint64_t> epoch_{0};
};

/// A built scale corpus: dedicated small ontology (token/cursor/session/
/// record/score concepts), a directly-populated instance pool (no KB or
/// provenance harvest — at 10k+ modules the paper's harvesting pipeline is
/// the wrong tool), the module registry, and the shared drift world.
struct ScaleCorpus {
  std::shared_ptr<Ontology> ontology;
  std::shared_ptr<ModuleRegistry> registry;
  std::shared_ptr<AnnotatedInstancePool> pool;
  std::shared_ptr<ScaleWorld> world;
  /// Module ids in registration order ("s000000", "s000001", ...).
  std::vector<std::string> module_ids;
};

/// The kind module index `index` is assigned (round-robin over the nine
/// kinds); exposed so tests can locate modules of a given kind without
/// scanning the registry.
ModuleKind ScaleKindOf(size_t index);

/// Builds the scale corpus. Fails only on internal errors; any module count
/// >= 1 is valid.
[[nodiscard]] Result<ScaleCorpus> BuildScaleCorpus(
    const ScaleCorpusOptions& options = {});

}  // namespace dexa

#endif  // DEXA_CORPUS_SCALE_H_
