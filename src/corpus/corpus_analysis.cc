#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "corpus/behaviors.h"
#include "corpus/builder_internal.h"
#include "formats/alphabet.h"
#include "formats/reports.h"
#include "kb/accessions.h"

namespace dexa {
namespace corpus_internal {

namespace {

const StructuralType kStr = StructuralType::String();
const StructuralType kDouble = StructuralType::Double();
const StructuralType kStrList = StructuralType::List(StructuralType::String());
const StructuralType kDoubleList =
    StructuralType::List(StructuralType::Double());

Status RequireNucleotide(const std::string& seq) {
  if (seq.empty() || (!IsValidSequence(seq, SeqAlphabet::kDna) &&
                      !IsValidSequence(seq, SeqAlphabet::kRna))) {
    return Status::InvalidArgument("not a nucleotide sequence");
  }
  return Status::OK();
}

Status RequireProtein(const std::string& seq) {
  if (seq.empty() || ClassifySequence(seq) != SeqAlphabet::kProtein ||
      !IsValidSequence(seq, SeqAlphabet::kProtein)) {
    return Status::InvalidArgument("not a protein sequence");
  }
  return Status::OK();
}

Status RequireAnySequence(const std::string& seq) {
  if (seq.empty() || !IsValidSequence(seq, SeqAlphabet::kProtein)) {
    // Protein alphabet is the superset of DNA; RNA adds U.
    if (!IsValidSequence(seq, SeqAlphabet::kRna)) {
      return Status::InvalidArgument("not a biological sequence");
    }
  }
  return Status::OK();
}

/// Behavior classes of the under-partitioned whole-sequence analyses:
/// DNA / RNA / short protein / long protein.
int BioSequenceClass(const std::vector<Value>& in) {
  const std::string& seq = in[0].AsString();
  switch (ClassifySequence(seq)) {
    case SeqAlphabet::kDna:
      return 0;
    case SeqAlphabet::kRna:
      return 1;
    case SeqAlphabet::kProtein:
      return seq.size() > kLongSequenceThreshold ? 3 : 2;
  }
  return 2;
}

/// Classes of the nucleotide analyses with a hidden long-sequence split.
int NucleotideLengthClass(const std::vector<Value>& in) {
  const std::string& seq = in[0].AsString();
  bool long_seq = seq.size() > kLongSequenceThreshold;
  if (ClassifySequence(seq) == SeqAlphabet::kDna) return long_seq ? 1 : 0;
  return long_seq ? 3 : 2;
}

/// Classes of the record summarizers: fasta, pdb, then
/// uniprot/embl/genbank each split by the hidden length threshold.
int RecordLengthClass(const std::vector<Value>& in) {
  const std::string& record = in[0].AsString();
  SeqFormat format;
  auto data = ParseSequenceRecordAny(record, &format);
  size_t length = data.ok() ? data->sequence.size() : 0;
  bool long_seq = length > kLongSequenceThreshold;
  switch (format) {
    case SeqFormat::kFasta:
      return 0;
    case SeqFormat::kPdb:
      return 1;
    case SeqFormat::kUniprot:
      return long_seq ? 5 : 2;
    case SeqFormat::kEmbl:
      return long_seq ? 6 : 3;
    case SeqFormat::kGenBank:
      return long_seq ? 7 : 4;
  }
  return 0;
}

}  // namespace

void AddAnalysisModules(CorpusBuilder& b) {
  using KbPtr = std::shared_ptr<const KnowledgeBase>;
  KbPtr kb = b.kb_ptr();

  // --- E1. Nucleotide statistics x28 (conciseness 0.5: DNA and RNA
  // partitions share one code path). Two providers per statistic.
  struct StatRow {
    const char* function;
    NucStat stat;
    const char* out_concept;
    bool integral;
  };
  static const StatRow kStatRows[] = {
      {"ComputeGcContent", NucStat::kGcContent, "Fraction", false},
      {"ComputeAtContent", NucStat::kAtContent, "Fraction", false},
      {"CountAdenine", NucStat::kCountA, "Count", true},
      {"CountCytosine", NucStat::kCountC, "Count", true},
      {"CountGuanine", NucStat::kCountG, "Count", true},
      {"CountCpG", NucStat::kCountCgDinucleotide, "Count", true},
      {"CountPurines", NucStat::kPurineCount, "Count", true},
      {"CountPyrimidines", NucStat::kPyrimidineCount, "Count", true},
      {"ComputeEntropy", NucStat::kShannonEntropy, "Score", false},
      {"ComputeComplexity", NucStat::kLinguisticComplexity, "Fraction", false},
      {"MaxHomopolymerRun", NucStat::kMaxHomopolymerRun, "Count", true},
      {"ComputeGcSkew", NucStat::kGcSkew, "Fraction", false},
      {"NucChecksum", NucStat::kChecksum, "Count", true},
      {"ComputeMeltingTemp", NucStat::kBasicMeltingTemp, "Score", false},
  };
  for (const StatRow& row : kStatRows) {
    for (const char* provider : {"EBI", "EMBOSS"}) {
      StructuralType out_type = row.integral ? StructuralType::Integer() : kDouble;
      b.Add(false, ModuleKind::kDataAnalysis,
            std::string(provider) + "_" + row.function,
            {b.P("sequence", kStr, "NucleotideSequence")},
            {b.P("value", out_type, row.out_concept)},
            [stat = row.stat, integral = row.integral](
                const std::vector<Value>& in) -> Result<std::vector<Value>> {
              DEXA_RETURN_IF_ERROR(RequireNucleotide(in[0].AsString()));
              double value = NucleotideStatistic(stat, in[0].AsString());
              if (integral) {
                return corpus_internal::OneValue(
                    Value::Int(static_cast<int64_t>(std::llround(value))));
              }
              return corpus_internal::OneValue(Value::Real(value));
            });
    }
  }

  // --- E2. Alphabet-uniform whole-sequence utilities x4 (conciseness
  // 0.33: 3 BiologicalSequence partitions, one code path).
  b.Add(false, ModuleKind::kDataAnalysis, "GetSequenceLength",
        {b.P("sequence", kStr, "BiologicalSequence")},
        {b.P("length", StructuralType::Integer(), "SequenceLength")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireAnySequence(in[0].AsString()));
          return OneValue(Value::Int(static_cast<int64_t>(in[0].AsString().size())));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "ReverseSequence",
        {b.P("sequence", kStr, "BiologicalSequence")},
        {b.P("reversed", kStr, "BiologicalSequence")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireAnySequence(in[0].AsString()));
          std::string reversed(in[0].AsString().rbegin(),
                               in[0].AsString().rend());
          return One(reversed);
        });
  b.Add(false, ModuleKind::kDataAnalysis, "AnySequenceChecksum",
        {b.P("sequence", kStr, "BiologicalSequence")},
        {b.P("checksum", StructuralType::Integer(), "Count")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireAnySequence(in[0].AsString()));
          return OneValue(
              Value::Int(static_cast<int64_t>(StableHash64(in[0].AsString()) % 1000000)));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "ResidueDiversity",
        {b.P("sequence", kStr, "BiologicalSequence")},
        {b.P("diversity", kDouble, "Fraction")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireAnySequence(in[0].AsString()));
          const std::string& seq = in[0].AsString();
          std::set<char> distinct(seq.begin(), seq.end());
          return OneValue(Value::Real(static_cast<double>(distinct.size()) /
                                      static_cast<double>(seq.size())));
        });

  // --- E3. Physico-chemical properties x8 (completeness 0.75: documented
  // classes DNA / RNA / short protein / long protein; the long-protein
  // sampled estimator is invisible to the ontology partitioning).
  struct PropertyRow {
    const char* name;
    SeqProperty property;
    const char* out_concept;
  };
  static const PropertyRow kPropertyRows[] = {
      {"ComputeMolecularWeight", SeqProperty::kMolecularWeight, "MolecularMass"},
      {"ComputeIsoelectricPoint", SeqProperty::kIsoelectricPoint, "Score"},
      {"ComputeHydrophobicity", SeqProperty::kHydrophobicity, "Score"},
      {"ComputeAromaticity", SeqProperty::kAromaticity, "Fraction"},
      {"ComputeInstabilityIndex", SeqProperty::kInstabilityIndex, "Score"},
      {"ComputeAliphaticIndex", SeqProperty::kAliphaticIndex, "Score"},
      {"ComputeChargeAtPh7", SeqProperty::kChargeAtPh7, "Score"},
      {"ComputeExtinctionCoeff", SeqProperty::kExtinctionCoefficient, "Score"},
  };
  for (const PropertyRow& row : kPropertyRows) {
    b.Add(false, ModuleKind::kDataAnalysis, row.name,
          {b.P("sequence", kStr, "BiologicalSequence")},
          {b.P("value", kDouble, row.out_concept)},
          [property = row.property](
              const std::vector<Value>& in) -> Result<std::vector<Value>> {
            DEXA_RETURN_IF_ERROR(RequireAnySequence(in[0].AsString()));
            return OneValue(
                Value::Real(SequenceProperty(property, in[0].AsString())));
          },
          4, BioSequenceClass);
  }

  // --- E4. Record summarizers x4 (completeness 0.625: 8 documented
  // classes over 5 SequenceRecord partitions).
  for (const char* name : {"EBI_SummarizeRecord", "EBI_RecordStatistics",
                           "NCBI_ValidateRecord", "EBI_ProfileRecord"}) {
    b.Add(false, ModuleKind::kDataAnalysis, name,
          {b.P("record", kStr, "SequenceRecord")},
          {b.P("report", kStr, "StatisticsReport")},
          [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            SeqFormat format;
            auto data = ParseSequenceRecordAny(in[0].AsString(), &format);
            if (!data.ok()) return data.status();
            StatisticsReportData report;
            report.title = data->accession;
            bool sampled = data->sequence.size() > kLongSequenceThreshold;
            report.stats.emplace_back("length",
                                      static_cast<double>(data->sequence.size()));
            report.stats.emplace_back(
                "weight", SequenceProperty(SeqProperty::kMolecularWeight,
                                           data->sequence));
            report.stats.emplace_back("sampled", sampled ? 1.0 : 0.0);
            return One(RenderStatisticsReport(report));
          },
          8, RecordLengthClass);
  }

  // --- E5. Nucleotide models x2 (completeness 0.5: 4 documented classes
  // over 2 NucleotideSequence partitions).
  b.Add(false, ModuleKind::kDataAnalysis, "EBI_PredictSecondaryStructure",
        {b.P("sequence", kStr, "NucleotideSequence")},
        {b.P("report", kStr, "StatisticsReport")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireNucleotide(in[0].AsString()));
          const std::string& seq = in[0].AsString();
          StatisticsReportData report;
          report.title = "secondary-structure";
          report.stats.emplace_back("paired_fraction",
                                    NucleotideStatistic(NucStat::kGcContent, seq));
          report.stats.emplace_back("loops",
                                    NucleotideStatistic(NucStat::kMaxHomopolymerRun, seq));
          return One(RenderStatisticsReport(report));
        },
        4, NucleotideLengthClass);
  b.Add(false, ModuleKind::kDataAnalysis, "EBI_ComputeMeltingCurve",
        {b.P("sequence", kStr, "NucleotideSequence")},
        {b.P("midpoint", kDouble, "Score")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireNucleotide(in[0].AsString()));
          const std::string& seq = in[0].AsString();
          double base = NucleotideStatistic(NucStat::kBasicMeltingTemp, seq);
          if (seq.size() > kLongSequenceThreshold) {
            base = 81.5 + 41.0 * GcContent(seq);  // Long-template model.
          }
          return OneValue(Value::Real(base));
        },
        4, NucleotideLengthClass);

  // --- E6. Flagship analyses (13 modules; Identify and SearchSimple are
  // the paper's running examples).
  // Identify's error tolerance is optional (Section 2: optional inputs may
  // carry null values); the default-tolerance path is a documented second
  // behavior class.
  b.Add(false, ModuleKind::kDataAnalysis, "Identify",
        {b.P("peptide_masses", kDoubleList, "PeptideMassList"),
         b.P("error", kDouble, "ErrorTolerance", /*optional=*/true)},
        {b.P("report", kStr, "IdentificationReport")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          double tolerance = in[1].is_null() ? 5.0 : in[1].AsDouble();
          if (tolerance <= 0.0 || tolerance > 20.0) {
            return Status::InvalidArgument("error tolerance out of range");
          }
          std::vector<double> masses;
          for (const Value& v : in[0].AsList()) masses.push_back(v.AsDouble());
          auto match = kb->IdentifyByPeptideMasses(masses, tolerance);
          if (!match.ok()) return match.status();
          IdentificationReportData report;
          report.matched_accession = match->protein->accession;
          report.score = match->score;
          report.error_tolerance = tolerance;
          report.peptide_count = masses.size();
          return One(RenderIdentificationReport(report));
        },
        2,
        [](const std::vector<Value>& in) { return in[1].is_null() ? 1 : 0; });
  b.Add(false, ModuleKind::kDataAnalysis, "EBI_SearchSimple",
        {b.P("record", kStr, "UniprotRecord"),
         b.P("program", kStr, "AlgorithmName"),
         b.P("database", kStr, "DatabaseName")},
        {b.P("report", kStr, "AlignmentReport")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          const std::string& program = in[1].AsString();
          if (program != "blastp" && program != "fasta" &&
              program != "ssearch") {
            return Status::InvalidArgument("program unsuitable for proteins");
          }
          const std::string& database = in[2].AsString();
          if (database != "uniprot" && database != "pdb") {
            return Status::InvalidArgument("database unsuitable for proteins");
          }
          auto data = ParseUniprot(in[0].AsString());
          if (!data.ok()) return data.status();
          auto report = HomologySearch(*kb, data->accession, program, database);
          if (!report.ok()) return report.status();
          return One(RenderAlignmentReport(*report));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "GetHomologous",
        {b.P("accession", kStr, "UniprotAccession")},
        {b.P("homologs", kStrList, "UniprotAccession")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto homologs = kb->Homologs(in[0].AsString());
          if (!homologs.ok()) return homologs.status();
          std::vector<std::string> ids;
          for (const ProteinEntity* protein : *homologs) {
            ids.push_back(protein->accession);
          }
          if (ids.empty()) return Status::NotFound("no homologs found");
          return OneList(std::move(ids));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "GetMostSimilarProtein",
        {b.P("accession", kStr, "UniprotAccession")},
        {b.P("best_match", kStr, "UniprotAccession")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto homologs = kb->Homologs(in[0].AsString());
          if (!homologs.ok()) return homologs.status();
          if (homologs->empty()) return Status::NotFound("no homologs found");
          return One((*homologs)[0]->accession);
        });
  b.Add(false, ModuleKind::kDataAnalysis, "GetConcept",
        {b.P("document", kStr, "TextDocument")},
        {b.P("concepts", kStrList, "PathwayConcept")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto concepts = MinePathwayConcepts(*kb, in[0].AsString());
          if (concepts.empty()) {
            return Status::NotFound("no pathway concepts mentioned");
          }
          return OneList(std::move(concepts));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "ExtractGeneMentions",
        {b.P("document", kStr, "TextDocument")},
        {b.P("genes", kStrList, "KEGGGeneId")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          auto genes = MineGeneIds(*kb, in[0].AsString());
          if (genes.empty()) return Status::NotFound("no gene mentions found");
          return OneList(std::move(genes));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "DigestProtein",
        {b.P("sequence", kStr, "ProteinSequence")},
        {b.P("masses", kDoubleList, "PeptideMassList")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireProtein(in[0].AsString()));
          const std::string& seq = in[0].AsString();
          std::vector<Value> masses;
          size_t start = 0;
          for (size_t i = 0; i < seq.size(); ++i) {
            if (seq[i] == 'K' || seq[i] == 'R') {
              masses.push_back(
                  Value::Real(ProteinMass(seq.substr(start, i - start + 1))));
              start = i + 1;
            }
          }
          if (start < seq.size()) {
            masses.push_back(Value::Real(ProteinMass(seq.substr(start))));
          }
          return OneValue(Value::ListOf(std::move(masses)));
        });
  for (const char* provider : {"EBI", "EMBOSS"}) {
    b.Add(false, ModuleKind::kDataAnalysis,
          std::string(provider) + "_TranslateDNA",
          {b.P("dna", kStr, "DNASequence")},
          {b.P("protein", kStr, "ProteinSequence")},
          [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            if (!IsValidSequence(in[0].AsString(), SeqAlphabet::kDna)) {
              return Status::InvalidArgument("not a DNA sequence");
            }
            std::string protein = Translate(in[0].AsString());
            if (protein.empty()) {
              return Status::InvalidArgument("no open reading frame");
            }
            return One(protein);
          });
  }
  b.Add(false, ModuleKind::kDataAnalysis, "ComputeProteinMass",
        {b.P("sequence", kStr, "ProteinSequence")},
        {b.P("mass", kDouble, "MolecularMass")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireProtein(in[0].AsString()));
          return OneValue(Value::Real(ProteinMass(in[0].AsString())));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "CompareSequences",
        {b.P("first", kStr, "NucleotideSequence"),
         b.P("second", kStr, "NucleotideSequence")},
        {b.P("identity", kDouble, "Score")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          const std::string& a = in[0].AsString();
          const std::string& bseq = in[1].AsString();
          DEXA_RETURN_IF_ERROR(RequireNucleotide(a));
          DEXA_RETURN_IF_ERROR(RequireNucleotide(bseq));
          if (ClassifySequence(a) != ClassifySequence(bseq)) {
            // DNA vs RNA comparison is rejected: the abnormal-termination
            // combination case of Section 3.2.
            return Status::InvalidArgument("sequences use different alphabets");
          }
          size_t len = std::min(a.size(), bseq.size());
          if (len == 0) return Status::InvalidArgument("empty sequence");
          size_t same = 0;
          for (size_t i = 0; i < len; ++i) {
            if (a[i] == bseq[i]) ++same;
          }
          return OneValue(Value::Real(static_cast<double>(same) /
                                      static_cast<double>(len)));
        },
        2,
        [](const std::vector<Value>& in) {
          return ClassifySequence(in[0].AsString()) == SeqAlphabet::kDna ? 0 : 1;
        });
  b.Add(false, ModuleKind::kDataAnalysis, "AlignPair",
        {b.P("first", kStr, "ProteinSequence"),
         b.P("second", kStr, "ProteinSequence")},
        {b.P("score", kDouble, "Score")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(RequireProtein(in[0].AsString()));
          DEXA_RETURN_IF_ERROR(RequireProtein(in[1].AsString()));
          const std::string& a = in[0].AsString();
          const std::string& bseq = in[1].AsString();
          size_t len = std::min(a.size(), bseq.size());
          size_t same = 0;
          for (size_t i = 0; i < len; ++i) {
            if (a[i] == bseq[i]) ++same;
          }
          return OneValue(Value::Real(100.0 * static_cast<double>(same) /
                                      static_cast<double>(std::max(a.size(), bseq.size()))));
        });
  b.Add(false, ModuleKind::kDataAnalysis, "ComputeCodonUsage",
        {b.P("dna", kStr, "DNASequence")},
        {b.P("report", kStr, "StatisticsReport")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          if (!IsValidSequence(in[0].AsString(), SeqAlphabet::kDna)) {
            return Status::InvalidArgument("not a DNA sequence");
          }
          const std::string& seq = in[0].AsString();
          StatisticsReportData report;
          report.title = "codon-usage";
          for (const char* codon : {"ATG", "TAA", "GCT", "AAA"}) {
            size_t count = 0;
            for (size_t i = 0; i + 3 <= seq.size(); i += 3) {
              if (seq.compare(i, 3, codon) == 0) ++count;
            }
            report.stats.emplace_back(codon, static_cast<double>(count));
          }
          return One(RenderStatisticsReport(report));
        });
}

}  // namespace corpus_internal
}  // namespace dexa
