#include "corpus/corpus.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "corpus/behaviors.h"
#include "corpus/builder_internal.h"
#include "corpus/term_values.h"
#include "formats/alphabet.h"
#include "formats/sniffer.h"
#include "kb/accessions.h"
#include "ontology/mygrid.h"

namespace dexa {

namespace corpus_internal {

void CorpusBuilder::Add(bool decayed, ModuleKind kind, std::string name,
                        std::vector<Parameter> inputs,
                        std::vector<Parameter> outputs,
                        SyntheticModule::Behavior behavior, int num_classes,
                        LambdaGroundTruth::ClassFn class_of,
                        bool popular_eligible) {
  ModuleSpec spec;
  spec.id = "m" + ZeroPad(static_cast<uint64_t>(next_id_++), 3);
  spec.name = std::move(name);
  spec.kind = kind;
  spec.inputs = std::move(inputs);
  spec.outputs = std::move(outputs);

  // Popularity quota: the first 44 eligible modules are famous enough for
  // every simulated user to recognize by name, the next 3 for users 1 and
  // 3, the next 4 for user 3 only (47 / 44 / 51 in Figure 5's phase 1).
  spec.popularity = 0.1;
  if (popular_eligible && !decayed) {
    if (popular_assigned_ < 44) {
      spec.popularity = 0.9;
    } else if (popular_assigned_ < 47) {
      spec.popularity = 0.7;
    } else if (popular_assigned_ < 51) {
      spec.popularity = 0.5;
    }
    ++popular_assigned_;
  }

  if (class_of == nullptr) {
    num_classes = 1;
    class_of = [](const std::vector<Value>&) { return 0; };
  }
  auto module = std::make_shared<SyntheticModule>(
      std::move(spec), std::move(behavior), num_classes, std::move(class_of));
  const std::string& id = module->spec().id;
  Status registered = corpus_->registry->Register(module);
  if (!registered.ok()) {
    Fail(registered);
    return;
  }
  if (decayed) {
    corpus_->retired_ids.push_back(id);
  } else {
    corpus_->available_ids.push_back(id);
  }
}

int IdDigitsParity(const std::string& id) {
  // Last maximal digit run in the identifier.
  int value = 0;
  bool in_digits = false;
  for (char c : id) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) value = 0;
      in_digits = true;
      value = (value * 10 + (c - '0')) % 10;
    } else {
      in_digits = false;
    }
  }
  return value % 2;
}

}  // namespace corpus_internal

namespace {

using corpus_internal::CorpusBuilder;
using corpus_internal::One;
using corpus_internal::OneList;
using corpus_internal::OneValue;

using KbPtr = std::shared_ptr<const KnowledgeBase>;

const StructuralType kStr = StructuralType::String();
const StructuralType kDouble = StructuralType::Double();
const StructuralType kStrList = StructuralType::List(StructuralType::String());
const StructuralType kDoubleList =
    StructuralType::List(StructuralType::Double());

// ----------------------------------------------------------------------
// Shared behavior factories (also used by corpus_retired.cc through the
// public behaviors.h helpers).

SyntheticModule::Behavior RetrievalBehavior(KbPtr kb, RecordKind kind) {
  return [kb, kind](const std::vector<Value>& in) {
    return One(RetrieveRecord(*kb, kind, in[0].AsString()));
  };
}

/// Behavior-class function keyed by the sniffed input format; used by the
/// Record- and SequenceRecord-input module families.
int RecordFamilyClass(const std::string& record) {
  std::string sniffed = SniffFormat(record);
  if (sniffed == "FastaRecord") return 0;
  if (sniffed == "UniprotRecord") return 1;
  if (sniffed == "EMBLRecord") return 2;
  if (sniffed == "GenBankRecord") return 3;
  if (sniffed == "PDBRecord") return 4;
  if (sniffed == "GORecord" || sniffed == "InterProRecord" ||
      sniffed == "PfamRecord") {
    return 6;  // Stanza formats share one code path.
  }
  return 5;  // KEGG flat-file family shares one code path.
}

// ----------------------------------------------------------------------
// Section A: data retrieval (51 modules).

void AddRetrievalModules(CorpusBuilder& b) {
  KbPtr kb = b.kb_ptr();

  // A1. GetBiologicalSequence x4: the Figure 7 module. Output partitions
  // {DNA,RNA,Protein} are only partially coverable (no accession namespace
  // serves RNA), one of the 19 output-coverage exceptions of Section 4.3.
  for (const char* provider : {"EBI", "DDBJ", "NCBI", "KEGG"}) {
    b.Add(false, ModuleKind::kDataRetrieval,
          std::string(provider) + "_GetBiologicalSequence",
          {b.P("accession", kStr, "SequenceAccession")},
          {b.P("sequence", kStr, "BiologicalSequence")},
          [kb](const std::vector<Value>& in) {
            return One(LookupSequenceForAccession(*kb, in[0].AsString()));
          },
          2,
          [](const std::vector<Value>& in) {
            const std::string& acc = in[0].AsString();
            return (IsUniprotAccession(acc) || IsPdbAccession(acc)) ? 0 : 1;
          },
          /*popular_eligible=*/true);
  }

  // A2. Record retrievals per database, with explicit provider rosters
  // (the KEGG-family databases are primarily served by KEGG).
  struct RetrievalRow {
    const char* function;
    RecordKind kind;
    const char* input_concept;
    std::vector<const char*> providers;
    bool popular_eligible;
  };
  const RetrievalRow kRows[] = {
      {"GetUniprotRecord", RecordKind::kUniprot, "UniprotAccession",
       {"EBI", "DDBJ", "NCBI"}, true},
      {"GetFastaRecord", RecordKind::kFasta, "UniprotAccession",
       {"EBI", "DDBJ", "NCBI"}, true},
      {"GetEMBLRecord", RecordKind::kEmbl, "EMBLAccession",
       {"EBI", "DDBJ", "NCBI"}, true},
      {"GetGenBankRecord", RecordKind::kGenBank, "EMBLAccession",
       {"NCBI", "DDBJ"}, true},
      {"GetPDBRecord", RecordKind::kPdb, "PDBAccession",
       {"EBI", "DDBJ", "NCBI"}, true},
      {"GetKEGGGeneRecord", RecordKind::kKeggGene, "KEGGGeneId",
       {"KEGG", "EBI", "DDBJ"}, true},
      {"GetEnzymeRecord", RecordKind::kEnzyme, "EnzymeId",
       {"KEGG", "EBI", "DDBJ"}, true},
      // Glycan and ligand records use formats the study users may not know
      // (Section 5's data-retrieval failures); kept obscure.
      {"GetGlycanRecord", RecordKind::kGlycan, "GlycanId",
       {"KEGG", "EBI", "DDBJ"}, false},
      {"GetLigandRecord", RecordKind::kLigand, "LigandId",
       {"EBI", "DDBJ", "NCBI", "KEGG", "ExPASy"}, false},
      {"GetCompoundRecord", RecordKind::kCompound, "CompoundId",
       {"KEGG", "EBI", "DDBJ"}, true},
      {"GetPathwayRecord", RecordKind::kPathway, "PathwayId",
       {"KEGG", "EBI", "DDBJ"}, true},
      {"GetGORecord", RecordKind::kGo, "GOTermId", {"EBI", "DDBJ"}, true},
      {"GetInterProRecord", RecordKind::kInterPro, "UniprotAccession",
       {"EBI", "DDBJ"}, true},
      {"GetPfamRecord", RecordKind::kPfam, "UniprotAccession",
       {"EBI", "DDBJ"}, true},
      {"GetDiseaseRecord", RecordKind::kDisease, "KEGGGeneId",
       {"EBI", "DDBJ"}, true},
  };
  for (const RetrievalRow& row : kRows) {
    for (const char* provider : row.providers) {
      b.Add(false, ModuleKind::kDataRetrieval,
            std::string(provider) + "_" + row.function,
            {b.P("accession", kStr, row.input_concept)},
            {b.P("record", kStr, RecordKindConcept(row.kind))},
            RetrievalBehavior(kb, row.kind), 1, nullptr, row.popular_eligible);
    }
  }

  // A3/A4. Sequence retrieval.
  for (const char* provider : {"EBI", "ExPASy"}) {
    b.Add(false, ModuleKind::kDataRetrieval,
          std::string(provider) + "_GetProteinSequence",
          {b.P("accession", kStr, "UniprotAccession")},
          {b.P("sequence", kStr, "ProteinSequence")},
          [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            auto protein = kb->FindProtein(in[0].AsString());
            if (!protein.ok()) return protein.status();
            return One((*protein)->sequence);
          },
          1, nullptr, /*popular_eligible=*/true);
  }
  for (const char* provider : {"KEGG", "DDBJ"}) {
    b.Add(false, ModuleKind::kDataRetrieval,
          std::string(provider) + "_GetDNASequence",
          {b.P("gene", kStr, "KEGGGeneId")},
          {b.P("sequence", kStr, "DNASequence")},
          [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            auto gene = kb->FindGene(in[0].AsString());
            if (!gene.ok()) return gene.status();
            return One((*gene)->dna_sequence);
          },
          1, nullptr, /*popular_eligible=*/true);
  }

  // A5. binfo: database metadata probe returning a sample accession; the
  // coarse Accession output annotation makes it an output-coverage
  // exception (Section 4.3 names it explicitly).
  b.Add(false, ModuleKind::kDataRetrieval, "binfo",
        {b.P("database", kStr, "DatabaseName")},
        {b.P("sample_entry", kStr, "Accession")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          const std::string& db = in[0].AsString();
          if (db == "uniprot") return One(kb->proteins()[0].accession);
          if (db == "embl" || db == "genbank") {
            return One(kb->proteins()[0].embl_accession);
          }
          if (db == "pdb") return One(kb->proteins()[0].pdb_accession);
          if (db == "kegg") return One(kb->genes()[0].gene_id);
          return Status::InvalidArgument("unknown database '" + db + "'");
        },
        1, nullptr, /*popular_eligible=*/true);
}

// ----------------------------------------------------------------------
// Section B: mapping identifiers (62 modules).

void AddMappingModules(CorpusBuilder& b) {
  KbPtr kb = b.kb_ptr();

  // B1. Record -> primary id extractors x7 (the conciseness-0.47 family:
  // 15 Record partitions, 7 documented code paths).
  auto extract_class = [](const std::vector<Value>& in) {
    return RecordFamilyClass(in[0].AsString());
  };
  auto extract_behavior = [](const std::vector<Value>& in) {
    return One(ExtractPrimaryId(in[0].AsString()));
  };
  for (const char* name :
       {"EBI_ExtractPrimaryId", "DDBJ_ExtractPrimaryId", "NCBI_ExtractPrimaryId",
        "EBI_GetRecordId", "DDBJ_GetRecordId", "EBI_RecordToAccession",
        "NCBI_RecordToAccession"}) {
    b.Add(false, ModuleKind::kMappingIdentifiers, name,
          {b.P("record", kStr, "Record")}, {b.P("id", kStr, "Accession")},
          extract_behavior, 7, extract_class, /*popular_eligible=*/true);
  }

  // B2. Ontology-term utilities x4 (conciseness 0.17: 6 OntologyTerm
  // partitions, one uniform code path).
  auto term_guard = [](const std::string& term) -> Status {
    if (TermId(term).empty()) {
      return Status::InvalidArgument("malformed ontology term '" + term + "'");
    }
    return Status::OK();
  };
  b.Add(false, ModuleKind::kMappingIdentifiers, "GetTermLabel",
        {b.P("term", kStr, "OntologyTerm")},
        {b.P("label", kStr, "TextDocument")},
        [term_guard](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(term_guard(in[0].AsString()));
          return One(TermLabel(in[0].AsString()));
        },
        1, nullptr, /*popular_eligible=*/true);
  b.Add(false, ModuleKind::kMappingIdentifiers, "GetTermSource",
        {b.P("term", kStr, "OntologyTerm")},
        {b.P("source", kStr, "DatabaseName")},
        [term_guard](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(term_guard(in[0].AsString()));
          return One(TermSource(in[0].AsString()));
        },
        1, nullptr, /*popular_eligible=*/true);
  b.Add(false, ModuleKind::kMappingIdentifiers, "TermToUpperLabel",
        {b.P("term", kStr, "OntologyTerm")}, {b.P("term", kStr, "OntologyTerm")},
        [term_guard](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(term_guard(in[0].AsString()));
          const std::string& term = in[0].AsString();
          return One(TermId(term) + " ! " + ToUpper(TermLabel(term)));
        },
        1, nullptr, /*popular_eligible=*/true);
  b.Add(false, ModuleKind::kMappingIdentifiers, "TermToLowerLabel",
        {b.P("term", kStr, "OntologyTerm")}, {b.P("term", kStr, "OntologyTerm")},
        [term_guard](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          DEXA_RETURN_IF_ERROR(term_guard(in[0].AsString()));
          const std::string& term = in[0].AsString();
          return One(TermId(term) + " ! " + ToLower(TermLabel(term)));
        },
        1, nullptr, /*popular_eligible=*/true);

  // B3. KEGG-style link family x10: generic cross-reference services whose
  // outputs carry the coarse Accession annotation — the remaining output-
  // coverage exceptions (get_genes_by_enzyme and link are named in the
  // paper).
  b.Add(false, ModuleKind::kMappingIdentifiers, "link",
        {b.P("entry", kStr, "SequenceAccession")},
        {b.P("linked", kStrList, "Accession")},
        [kb](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          const std::string& acc = in[0].AsString();
          if (auto protein = kb->FindProtein(acc); protein.ok()) {
            return OneList({(*protein)->gene_id});
          }
          if (auto protein = kb->FindProteinByPdb(acc); protein.ok()) {
            return OneList({(*protein)->accession});
          }
          if (auto protein = kb->FindProteinByEmbl(acc); protein.ok()) {
            return OneList({(*protein)->accession});
          }
          if (auto gene = kb->FindGene(acc); gene.ok()) {
            return OneList(std::vector<std::string>((*gene)->pathway_ids));
          }
          return Status::NotFound("no cross-references for '" + acc + "'");
        },
        4,
        [](const std::vector<Value>& in) {
          const std::string& acc = in[0].AsString();
          if (IsUniprotAccession(acc)) return 0;
          if (IsPdbAccession(acc)) return 1;
          if (IsEmblAccession(acc)) return 2;
          return 3;
        },
        /*popular_eligible=*/true);

  struct LinkRow {
    const char* name;
    const char* input_concept;
  };
  // Each returns a list of cross-referenced entries under the coarse
  // "Accession" annotation.
  auto add_link = [&](const char* name, const char* input_concept,
                      std::function<Result<std::vector<std::string>>(
                          const KnowledgeBase&, const std::string&)>
                          lookup) {
    b.Add(false, ModuleKind::kMappingIdentifiers, name,
          {b.P("entry", kStr, input_concept)},
          {b.P("linked", kStrList, "Accession")},
          [kb, lookup](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            auto ids = lookup(*kb, in[0].AsString());
            if (!ids.ok()) return ids.status();
            if (ids->empty()) {
              return Status::NotFound("no cross-references found");
            }
            return OneList(std::move(ids).value());
          },
          1, nullptr, /*popular_eligible=*/true);
  };

  add_link("get_genes_by_enzyme", "EnzymeId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto enzyme = kb_ref.FindEnzyme(id);
             if (!enzyme.ok()) return enzyme.status();
             return (*enzyme)->gene_ids;
           });
  add_link("get_genes_by_pathway", "PathwayId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto pathway = kb_ref.FindPathway(id);
             if (!pathway.ok()) return pathway.status();
             return (*pathway)->gene_ids;
           });
  add_link("get_compounds_by_pathway", "PathwayId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto pathway = kb_ref.FindPathway(id);
             if (!pathway.ok()) return pathway.status();
             return (*pathway)->compound_ids;
           });
  add_link("get_pathways_by_gene", "KEGGGeneId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto gene = kb_ref.FindGene(id);
             if (!gene.ok()) return gene.status();
             return (*gene)->pathway_ids;
           });
  add_link("get_pathways_by_compound", "CompoundId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto compound = kb_ref.FindCompound(id);
             if (!compound.ok()) return compound.status();
             return (*compound)->pathway_ids;
           });
  add_link("get_targets_by_ligand", "LigandId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto ligand = kb_ref.FindLigand(id);
             if (!ligand.ok()) return ligand.status();
             return (*ligand)->target_accessions;
           });
  add_link("get_enzymes_by_compound", "CompoundId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             std::vector<std::string> out;
             for (const EnzymeEntity& enzyme : kb_ref.enzymes()) {
               for (const std::string& c : enzyme.substrate_ids) {
                 if (c == id) out.push_back(enzyme.ec_number);
               }
               for (const std::string& c : enzyme.product_ids) {
                 if (c == id) out.push_back(enzyme.ec_number);
               }
             }
             return out;
           });
  add_link("get_genes_by_go_term", "GOTermId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             std::vector<std::string> out;
             for (const GeneEntity& gene : kb_ref.genes()) {
               for (const std::string& go : gene.go_term_ids) {
                 if (go == id) {
                   out.push_back(gene.gene_id);
                   break;
                 }
               }
             }
             return out;
           });
  add_link("get_orthologs", "KEGGGeneId",
           [](const KnowledgeBase& kb_ref,
              const std::string& id) -> Result<std::vector<std::string>> {
             auto gene = kb_ref.FindGene(id);
             if (!gene.ok()) return gene.status();
             auto homologs = kb_ref.Homologs((*gene)->protein_accession);
             if (!homologs.ok()) return homologs.status();
             std::vector<std::string> out;
             for (const ProteinEntity* protein : *homologs) {
               out.push_back(protein->gene_id);
             }
             return out;
           });

  // B4. Precise cross-database mappings, several providers each.
  struct MapRow {
    const char* function;
    const char* in_concept;
    const char* out_concept;
    bool list_output;
    int providers;
    std::function<Result<std::vector<std::string>>(const KnowledgeBase&,
                                                   const std::string&)>
        lookup;
  };
  auto single = [](Result<std::string> r) -> Result<std::vector<std::string>> {
    if (!r.ok()) return r.status();
    return std::vector<std::string>{std::move(r).value()};
  };
  std::vector<MapRow> rows;
  rows.push_back({"Uniprot2KeggGene", "UniprotAccession", "KEGGGeneId", false,
                  3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto protein = kb_ref.FindProtein(id);
                    if (!protein.ok()) return single(protein.status());
                    return single((*protein)->gene_id);
                  }});
  rows.push_back({"KeggGene2Uniprot", "KEGGGeneId", "UniprotAccession", false,
                  3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto gene = kb_ref.FindGene(id);
                    if (!gene.ok()) return single(gene.status());
                    return single((*gene)->protein_accession);
                  }});
  rows.push_back({"Uniprot2PDB", "UniprotAccession", "PDBAccession", false, 3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto protein = kb_ref.FindProtein(id);
                    if (!protein.ok()) return single(protein.status());
                    if ((*protein)->pdb_accession.empty()) {
                      return single(Status::NotFound("no structure known"));
                    }
                    return single((*protein)->pdb_accession);
                  }});
  rows.push_back({"PDB2Uniprot", "PDBAccession", "UniprotAccession", false, 3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto protein = kb_ref.FindProteinByPdb(id);
                    if (!protein.ok()) return single(protein.status());
                    return single((*protein)->accession);
                  }});
  rows.push_back({"Uniprot2EMBL", "UniprotAccession", "EMBLAccession", false,
                  3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto protein = kb_ref.FindProtein(id);
                    if (!protein.ok()) return single(protein.status());
                    return single((*protein)->embl_accession);
                  }});
  rows.push_back({"EMBL2Uniprot", "EMBLAccession", "UniprotAccession", false,
                  3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto protein = kb_ref.FindProteinByEmbl(id);
                    if (!protein.ok()) return single(protein.status());
                    return single((*protein)->accession);
                  }});
  rows.push_back({"Gene2Pathways", "KEGGGeneId", "PathwayId", true, 3,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto gene = kb_ref.FindGene(id);
                    if (!gene.ok()) return gene.status();
                    return (*gene)->pathway_ids;
                  }});
  rows.push_back({"Pathway2Genes", "PathwayId", "KEGGGeneId", true, 3,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto pathway = kb_ref.FindPathway(id);
                    if (!pathway.ok()) return pathway.status();
                    return (*pathway)->gene_ids;
                  }});
  rows.push_back({"Uniprot2GoIds", "UniprotAccession", "GOTermId", true, 3,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto protein = kb_ref.FindProtein(id);
                    if (!protein.ok()) return protein.status();
                    return (*protein)->go_term_ids;
                  }});
  rows.push_back({"GoId2Term", "GOTermId", "GOTerm", false, 3,
                  [single](const KnowledgeBase& kb_ref, const std::string& id) {
                    auto term = kb_ref.FindGoTerm(id);
                    if (!term.ok()) return single(term.status());
                    return single(MakeTermInstance("GO", (*term)->go_id.substr(3),
                                                   (*term)->name));
                  }});
  rows.push_back({"Compound2Pathways", "CompoundId", "PathwayId", true, 3,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto compound = kb_ref.FindCompound(id);
                    if (!compound.ok()) return compound.status();
                    return (*compound)->pathway_ids;
                  }});
  rows.push_back({"Enzyme2Genes", "EnzymeId", "KEGGGeneId", true, 2,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto enzyme = kb_ref.FindEnzyme(id);
                    if (!enzyme.ok()) return enzyme.status();
                    return (*enzyme)->gene_ids;
                  }});
  rows.push_back({"Ligand2Targets", "LigandId", "UniprotAccession", true, 2,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto ligand = kb_ref.FindLigand(id);
                    if (!ligand.ok()) return ligand.status();
                    return (*ligand)->target_accessions;
                  }});
  rows.push_back({"Gene2Enzymes", "KEGGGeneId", "EnzymeId", true, 2,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    std::vector<std::string> out;
                    for (const EnzymeEntity& enzyme : kb_ref.enzymes()) {
                      for (const std::string& gene : enzyme.gene_ids) {
                        if (gene == id) {
                          out.push_back(enzyme.ec_number);
                          break;
                        }
                      }
                    }
                    return out;
                  }});
  rows.push_back({"Pathway2Compounds", "PathwayId", "CompoundId", true, 2,
                  [](const KnowledgeBase& kb_ref,
                     const std::string& id) -> Result<std::vector<std::string>> {
                    auto pathway = kb_ref.FindPathway(id);
                    if (!pathway.ok()) return pathway.status();
                    return (*pathway)->compound_ids;
                  }});

  static const char* kProviders[] = {"EBI", "DDBJ", "NCBI"};
  for (const MapRow& row : rows) {
    for (int p = 0; p < row.providers; ++p) {
      Parameter out =
          row.list_output
              ? b.P("mapped", kStrList, row.out_concept)
              : b.P("mapped", kStr, row.out_concept);
      auto lookup = row.lookup;
      b.Add(false, ModuleKind::kMappingIdentifiers,
            std::string(kProviders[p]) + "_" + row.function,
            {b.P("id", kStr, row.in_concept)}, {out},
            [kb, lookup, list = row.list_output](
                const std::vector<Value>& in) -> Result<std::vector<Value>> {
              auto ids = lookup(*kb, in[0].AsString());
              if (!ids.ok()) return ids.status();
              if (ids->empty()) return Status::NotFound("no mapping found");
              if (list) return OneList(std::move(ids).value());
              return One((*ids)[0]);
            },
            1, nullptr, /*popular_eligible=*/true);
    }
  }
}

// ----------------------------------------------------------------------
// Section C: format transformation (53 modules).

void AddFormatModules(CorpusBuilder& b) {
  KbPtr kb = b.kb_ptr();

  // C1. Sequence extraction from any sequence record x4 (conciseness 0.4:
  // 5 partitions, two documented code paths — paragraph vs inline layouts;
  // coarse BiologicalSequence output -> output-coverage exceptions).
  auto extract_seq_class = [](const std::vector<Value>& in) {
    int family = RecordFamilyClass(in[0].AsString());
    return (family == 1 || family == 2 || family == 3) ? 0 : 1;
  };
  for (const char* name : {"EBI_ExtractSequence", "DDBJ_ExtractSequence",
                           "EBI_RecordToSequence", "NCBI_RecordToSequence"}) {
    b.Add(false, ModuleKind::kFormatTransformation, name,
          {b.P("record", kStr, "SequenceRecord")},
          {b.P("sequence", kStr, "BiologicalSequence")},
          [](const std::vector<Value>& in) {
            return One(ExtractSequenceText(in[0].AsString()));
          },
          2, extract_seq_class, /*popular_eligible=*/true);
  }

  // C2. Sniff-and-convert x8 (conciseness 0.2: 5 partitions, one generic
  // code path).
  struct AnyToRow {
    const char* name;
    SeqFormat to;
  };
  static const AnyToRow kAnyRows[] = {
      {"EBI_AnyToFasta", SeqFormat::kFasta},
      {"DDBJ_AnyToFasta", SeqFormat::kFasta},
      {"EBI_AnyToUniprot", SeqFormat::kUniprot},
      {"ExPASy_AnyToUniprot", SeqFormat::kUniprot},
      {"EBI_AnyToEMBL", SeqFormat::kEmbl},
      {"DDBJ_AnyToEMBL", SeqFormat::kEmbl},
      {"NCBI_AnyToGenBank", SeqFormat::kGenBank},
      {"EBI_AnyToPDB", SeqFormat::kPdb},
  };
  for (const AnyToRow& row : kAnyRows) {
    b.Add(false, ModuleKind::kFormatTransformation, row.name,
          {b.P("record", kStr, "SequenceRecord")},
          {b.P("converted", kStr, SeqFormatConcept(row.to))},
          [to = row.to](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            auto data = ParseSequenceRecordAny(in[0].AsString());
            if (!data.ok()) return data.status();
            return One(RenderSequenceData(*data, to));
          },
          1, nullptr, /*popular_eligible=*/true);
  }

  // C3. NormalizeAccession (conciseness 0.1: 10 partitions, one code path).
  b.Add(false, ModuleKind::kFormatTransformation, "NormalizeAccession",
        {b.P("accession", kStr, "Accession")},
        {b.P("normalized", kStr, "Accession")},
        [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          std::string acc = Trim(in[0].AsString());
          if (acc.empty()) return Status::InvalidArgument("empty accession");
          return One(acc);
        },
        1, nullptr, /*popular_eligible=*/true);

  // C4. Directed pairwise converters, two providers each (34 modules).
  struct PairRow {
    SeqFormat from;
    SeqFormat to;
  };
  static const PairRow kPairs[] = {
      {SeqFormat::kUniprot, SeqFormat::kFasta},
      {SeqFormat::kUniprot, SeqFormat::kEmbl},
      {SeqFormat::kUniprot, SeqFormat::kGenBank},
      {SeqFormat::kUniprot, SeqFormat::kPdb},
      {SeqFormat::kFasta, SeqFormat::kUniprot},
      {SeqFormat::kFasta, SeqFormat::kEmbl},
      {SeqFormat::kFasta, SeqFormat::kGenBank},
      {SeqFormat::kFasta, SeqFormat::kPdb},
      {SeqFormat::kEmbl, SeqFormat::kUniprot},
      {SeqFormat::kEmbl, SeqFormat::kFasta},
      {SeqFormat::kEmbl, SeqFormat::kGenBank},
      {SeqFormat::kGenBank, SeqFormat::kUniprot},
      {SeqFormat::kGenBank, SeqFormat::kFasta},
      {SeqFormat::kGenBank, SeqFormat::kEmbl},
      {SeqFormat::kPdb, SeqFormat::kUniprot},
      {SeqFormat::kPdb, SeqFormat::kFasta},
      {SeqFormat::kEmbl, SeqFormat::kPdb},
  };
  auto format_tag = [](SeqFormat format) {
    switch (format) {
      case SeqFormat::kFasta:
        return "Fasta";
      case SeqFormat::kUniprot:
        return "Uniprot";
      case SeqFormat::kEmbl:
        return "EMBL";
      case SeqFormat::kGenBank:
        return "GenBank";
      case SeqFormat::kPdb:
        return "PDB";
    }
    return "Seq";
  };
  for (const PairRow& pair : kPairs) {
    for (const char* provider : {"EBI", "DDBJ"}) {
      // "To" (not "2") keeps converter names distinct from the id-mapping
      // family (EBI_Uniprot2EMBL maps accessions; EBI_UniprotToEMBL
      // converts records).
      std::string name = std::string(provider) + "_" + format_tag(pair.from) +
                         "To" + format_tag(pair.to);
      b.Add(false, ModuleKind::kFormatTransformation, name,
            {b.P("record", kStr, SeqFormatConcept(pair.from))},
            {b.P("converted", kStr, SeqFormatConcept(pair.to))},
            [from = pair.from,
             to = pair.to](const std::vector<Value>& in) -> Result<std::vector<Value>> {
              SeqFormat detected;
              auto data = ParseSequenceRecordAny(in[0].AsString(), &detected);
              if (!data.ok()) return data.status();
              if (detected != from) {
                return Status::InvalidArgument("input is not in the expected format");
              }
              return One(RenderSequenceData(*data, to));
            },
            1, nullptr, /*popular_eligible=*/true);
    }
  }

  // C5. Sequence-level transformations (6 modules).
  for (const char* provider : {"EBI", "EMBOSS"}) {
    b.Add(false, ModuleKind::kFormatTransformation,
          std::string(provider) + "_Transcribe",
          {b.P("dna", kStr, "DNASequence")}, {b.P("rna", kStr, "RNASequence")},
          [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            if (!IsValidSequence(in[0].AsString(), SeqAlphabet::kDna)) {
              return Status::InvalidArgument("not a DNA sequence");
            }
            return One(Transcribe(in[0].AsString()));
          },
          1, nullptr, /*popular_eligible=*/true);
    b.Add(false, ModuleKind::kFormatTransformation,
          std::string(provider) + "_ReverseTranscribe",
          {b.P("rna", kStr, "RNASequence")}, {b.P("dna", kStr, "DNASequence")},
          [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            if (!IsValidSequence(in[0].AsString(), SeqAlphabet::kRna)) {
              return Status::InvalidArgument("not an RNA sequence");
            }
            return One(ReverseTranscribe(in[0].AsString()));
          },
          1, nullptr, /*popular_eligible=*/true);
    b.Add(false, ModuleKind::kFormatTransformation,
          std::string(provider) + "_ReverseComplement",
          {b.P("dna", kStr, "DNASequence")}, {b.P("dna", kStr, "DNASequence")},
          [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
            if (!IsValidSequence(in[0].AsString(), SeqAlphabet::kDna)) {
              return Status::InvalidArgument("not a DNA sequence");
            }
            return One(ReverseComplementDna(in[0].AsString()));
          },
          1, nullptr, /*popular_eligible=*/true);
  }
}

}  // namespace

Result<Corpus> BuildCorpus(const CorpusOptions& options) {
  Corpus corpus;
  corpus.kb = options.prebuilt_kb != nullptr
                  ? options.prebuilt_kb
                  : std::make_shared<KnowledgeBase>(options.seed,
                                                    options.kb_options);
  corpus.ontology = options.prebuilt_ontology != nullptr
                        ? options.prebuilt_ontology
                        : std::make_shared<Ontology>(BuildMyGridOntology());
  corpus.registry = std::make_shared<ModuleRegistry>();

  CorpusBuilder builder(&corpus);
  AddRetrievalModules(builder);
  AddMappingModules(builder);
  AddFormatModules(builder);
  corpus_internal::AddFilterModules(builder);
  corpus_internal::AddAnalysisModules(builder);
  corpus_internal::AddRetiredModules(builder);
  if (!builder.status().ok()) return builder.status();

  if (corpus.available_ids.size() != 252) {
    return Status::Internal(
        "corpus calibration bug: expected 252 available modules, built " +
        std::to_string(corpus.available_ids.size()));
  }
  if (corpus.retired_ids.size() != 72) {
    return Status::Internal(
        "corpus calibration bug: expected 72 decayed modules, built " +
        std::to_string(corpus.retired_ids.size()));
  }
  return corpus;
}

Status RetireDecayedModules(Corpus& corpus) {
  for (const std::string& id : corpus.retired_ids) {
    auto module = corpus.registry->Find(id);
    if (!module.ok()) return module.status();
    (*module)->Retire();
  }
  return Status::OK();
}

}  // namespace dexa
