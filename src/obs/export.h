#ifndef DEXA_OBS_EXPORT_H_
#define DEXA_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace dexa::obs {

/// Serializes a recorded trace as a Chrome trace-event JSON document
/// (loadable in chrome://tracing / Perfetto): one complete ("ph":"X") event
/// per span, `ts`/`dur` in logical ticks, span metadata and counters under
/// `args`. The document ends with a `"checksum"` field — StableHash64 of
/// the document with that field removed — which Chrome ignores and
/// ReadChromeTrace verifies. Output is byte-deterministic: same spans, same
/// bytes.
std::string WriteChromeTrace(const Tracer& tracer);

/// Serializes a MetricsRegistry as a flat metrics.json with `stable` and
/// `volatile` sections (counters / gauges / histograms, sorted by name) and
/// the same trailing checksum scheme as WriteChromeTrace.
std::string WriteMetricsJson(const MetricsRegistry& registry);

/// A span decoded from a Chrome-trace export.
struct ParsedSpan {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  std::string cat;  ///< Span kind name ("run", "phase", ...).
  uint64_t ts = 0;
  uint64_t dur = 0;
  uint64_t virtual_ns = 0;
  bool replayed = false;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

struct ParsedTrace {
  std::vector<ParsedSpan> spans;
};

/// A metrics.json decoded back into per-section maps.
struct ParsedMetrics {
  std::map<std::string, uint64_t> stable_counters;
  std::map<std::string, uint64_t> stable_gauges;
  std::map<std::string, HistogramSnapshot> stable_histograms;
  std::map<std::string, uint64_t> volatile_counters;
  std::map<std::string, uint64_t> volatile_gauges;
  std::map<std::string, HistogramSnapshot> volatile_histograms;
};

/// Decodes and verifies a WriteChromeTrace document. Any damage — a
/// missing or mismatched checksum, malformed JSON, a schema violation —
/// returns kCorrupted (the export is machine-written, so "malformed" can
/// only mean "damaged"). Never crashes or hangs on arbitrary bytes.
Result<ParsedTrace> ReadChromeTrace(const std::string& text);

/// Decodes and verifies a WriteMetricsJson document; same error contract
/// as ReadChromeTrace.
Result<ParsedMetrics> ReadMetricsJson(const std::string& text);

}  // namespace dexa::obs

#endif  // DEXA_OBS_EXPORT_H_
