#include "obs/trace.h"

namespace dexa::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kBatch:
      return "batch";
    case SpanKind::kInvocation:
      return "invocation";
    case SpanKind::kCommit:
      return "commit";
  }
  return "unknown";
}

std::vector<std::pair<std::string, uint64_t>> StableCounters(
    const EngineMetricsSnapshot& s) {
  return {
      {"invocations", s.invocations},
      {"invocation_errors", s.invocation_errors},
      {"batches", s.batches},
      {"retries", s.retries},
      {"deadline_exhaustions", s.deadline_exhaustions},
      {"breaker_trips", s.breaker_trips},
      {"breaker_short_circuits", s.breaker_short_circuits},
      {"injected_faults", s.injected_faults},
      {"commits", s.commits},
      {"journal_records", s.journal_records},
      {"journal_segments_sealed", s.journal_segments_sealed},
      {"torn_tails_discarded", s.torn_tails_discarded},
      {"modules_replayed", s.modules_replayed},
      {"modules_reinvoked", s.modules_reinvoked},
  };
}

std::vector<std::pair<std::string, uint64_t>> StableCounterDeltas(
    const EngineMetricsSnapshot& before, const EngineMetricsSnapshot& after) {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::vector<std::pair<std::string, uint64_t>> b = StableCounters(before);
  std::vector<std::pair<std::string, uint64_t>> a = StableCounters(after);
  for (size_t i = 0; i < a.size(); ++i) {
    // Counters are monotone; a snapshot pair from one run can never go
    // backwards, so the unsigned subtraction is safe.
    uint64_t delta = a[i].second - b[i].second;
    if (delta != 0) out.emplace_back(a[i].first, delta);
  }
  return out;
}

uint64_t Tracer::BeginSpan(SpanKind kind, std::string name, uint64_t parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Annotate runs open one batch span per module; grow in large steps so
  // the per-span cost stays flat.
  if (spans_.size() == spans_.capacity()) {
    spans_.reserve(spans_.empty() ? 128 : spans_.size() * 2);
  }
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.kind = kind;
  span.name = std::move(name);
  span.start_tick = next_tick_++;
  if (clock_ != nullptr) span.virtual_ns = clock_->Now();
  spans_.push_back(std::move(span));
  ++open_;
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  TraceSpan& span = spans_[id - 1];
  if (span.end_tick != 0) return;  // Already closed.
  span.end_tick = next_tick_++;
  if (open_ > 0) --open_;
}

void Tracer::AddCounter(uint64_t id, std::string name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].counters.emplace_back(std::move(name), value);
}

void Tracer::AddCounters(
    uint64_t id, std::vector<std::pair<std::string, uint64_t>> deltas) {
  if (deltas.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  std::vector<std::pair<std::string, uint64_t>>& counters =
      spans_[id - 1].counters;
  for (auto& delta : deltas) counters.push_back(std::move(delta));
}

void Tracer::MarkReplayed(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].replayed = true;
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::open_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_;
}

}  // namespace dexa::obs
