#ifndef DEXA_OBS_TRACE_H_
#define DEXA_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/metrics.h"
#include "engine/virtual_clock.h"

namespace dexa::obs {

/// The hierarchy levels of a run trace: a run owns phases, a phase owns
/// batches (one per annotated module), a batch owns invocations (one per
/// workflow processor in the sequential enactment path), and commits mark
/// journal appends.
enum class SpanKind {
  kRun,
  kPhase,
  kBatch,
  kInvocation,
  kCommit,
};

/// Stable lowercase name of a span kind ("run", "phase", ...).
const char* SpanKindName(SpanKind kind);

/// One closed (or still open) span of a run trace.
///
/// Timestamps are *logical ticks* issued by the owning Tracer in recording
/// order — never wall-clock readings — so two runs that perform the same
/// work record byte-identical tick streams regardless of thread count or
/// scheduling. `virtual_ns` additionally carries the engine's VirtualClock
/// reading at the moment the span opened; spans are only opened at
/// sequential points of the pipeline (phase boundaries, commit loops),
/// where the clock reading is schedule-independent too.
struct TraceSpan {
  uint64_t id = 0;      ///< 1-based, creation order; 0 is "no span".
  uint64_t parent = 0;  ///< Parent span id, 0 for roots.
  SpanKind kind = SpanKind::kRun;
  std::string name;
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;   ///< 0 while the span is still open.
  uint64_t virtual_ns = 0; ///< VirtualClock reading when the span opened.
  bool replayed = false;   ///< Served from a journal, not live work.
  /// Named counter annotations, in recording order. For spans closed at
  /// deterministic points these are engine counter *deltas* restricted to
  /// the schedule-independent subset (see StableCounterDeltas).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// The engine counters whose run totals are schedule-independent (identical
/// at any thread count for the same seed), as (name, value) pairs in a
/// fixed order. Cache hits/misses are excluded — concurrent misses of one
/// key are each counted, so their split is schedule-dependent — and so are
/// the wall-clock phase timings.
std::vector<std::pair<std::string, uint64_t>> StableCounters(
    const EngineMetricsSnapshot& snapshot);

/// Per-counter difference `after - before` over StableCounters, with
/// zero-delta entries omitted (both runs of a deterministic workload omit
/// the same entries, so traces stay byte-identical).
std::vector<std::pair<std::string, uint64_t>> StableCounterDeltas(
    const EngineMetricsSnapshot& before, const EngineMetricsSnapshot& after);

/// Records a hierarchical span tree for one pipeline run.
///
/// Determinism contract: spans must only be opened/closed from sequential
/// code (phase boundaries, registration-order commit loops, the
/// topological enactment loop) — never from inside a concurrent ForEach
/// task. The tracer is internally locked so a violation corrupts nothing,
/// but span order (and therefore the exported bytes) would become
/// schedule-dependent. All state is logical: no wall clock, no entropy.
///
/// The Begin/End pair below is the low-level surface for this layer's own
/// RAII guard; instrumented layers must hold spans through ScopedSpan so
/// every early return closes them (enforced by the dexa-lint `manual-span`
/// rule).
class Tracer {
 public:
  /// `clock` (optional) stamps each span with the VirtualClock reading at
  /// open; pass the consuming engine's clock.
  explicit Tracer(const VirtualClock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; returns its id (parent 0 = root).
  uint64_t BeginSpan(SpanKind kind, std::string name, uint64_t parent = 0);

  /// Closes an open span; closing an unknown or closed id is a no-op.
  void EndSpan(uint64_t id);

  /// Appends a named counter annotation to an open or closed span.
  void AddCounter(uint64_t id, std::string name, uint64_t value);

  /// Appends every entry of `deltas` to the span's counters.
  void AddCounters(uint64_t id,
                   std::vector<std::pair<std::string, uint64_t>> deltas);

  /// Marks the span as replayed from a journal (not live work).
  void MarkReplayed(uint64_t id);

  /// Snapshot of all spans recorded so far, in creation order.
  std::vector<TraceSpan> spans() const;

  /// Number of spans opened but not yet closed.
  size_t open_spans() const;

 private:
  const VirtualClock* clock_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  uint64_t next_tick_ = 0;
  size_t open_ = 0;
};

/// RAII span guard: opens on construction, closes on destruction (or on an
/// explicit End()). Tolerates a null tracer so call sites can instrument
/// unconditionally — every member is a no-op when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, SpanKind kind, std::string name,
             uint64_t parent = 0)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(kind, std::move(name), parent);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { End(); }

  /// The underlying span id (0 when tracing is off) — pass as `parent` to
  /// child spans.
  uint64_t id() const { return id_; }

  /// Closes the span now; later calls (and the destructor) are no-ops.
  void End() {
    if (tracer_ != nullptr && !ended_) {
      tracer_->EndSpan(id_);
      ended_ = true;
    }
  }

  void Counter(std::string name, uint64_t value) {
    if (tracer_ != nullptr) tracer_->AddCounter(id_, std::move(name), value);
  }

  /// Appends a batch of counters in one locked call — the cheap path for
  /// per-module hot loops (one mutex acquisition instead of one per
  /// counter).
  void Counters(std::vector<std::pair<std::string, uint64_t>> counters) {
    if (tracer_ != nullptr) tracer_->AddCounters(id_, std::move(counters));
  }

  /// Annotates the span with the stable engine-counter deltas over its
  /// lifetime (take `before` when opening the span).
  void CounterDeltas(const EngineMetricsSnapshot& before,
                     const EngineMetricsSnapshot& after) {
    if (tracer_ != nullptr) {
      tracer_->AddCounters(id_, StableCounterDeltas(before, after));
    }
  }

  void MarkReplayed() {
    if (tracer_ != nullptr) tracer_->MarkReplayed(id_);
  }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
  bool ended_ = false;
};

}  // namespace dexa::obs

#endif  // DEXA_OBS_TRACE_H_
