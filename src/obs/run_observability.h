#ifndef DEXA_OBS_RUN_OBSERVABILITY_H_
#define DEXA_OBS_RUN_OBSERVABILITY_H_

namespace dexa::obs {

class Tracer;
class MetricsRegistry;

/// The observability attachment of one run: where its span tree and its
/// metrics sections go. Both pointers are optional and non-owning; a
/// default-constructed RunObservability is a run nobody is watching.
///
/// This is the one struct every run entry point (RunRequest, the durable
/// annotate/enact options, EnactHooks) references instead of each
/// hand-plumbing its own `tracer` field — so a new sink is added in one
/// place, and the serve daemon can hand every admitted run its own section
/// of the shared registry without touching the run implementations.
struct RunObservability {
  /// Span-tree sink (obs/trace.h). Spans are recorded only at sequential
  /// points of a run, so the tree is byte-identical at any thread count.
  Tracer* tracer = nullptr;

  /// Metrics sink (obs/metrics_registry.h). Run entry points that finish a
  /// run import its engine snapshot and trace-derived counters here.
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace dexa::obs

#endif  // DEXA_OBS_RUN_OBSERVABILITY_H_
