#include "obs/export.h"

#include <cctype>

#include "common/rng.h"

namespace dexa::obs {
namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Hex16(uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Rewrites a document's closing `}` into `,"checksum":"<hash>"}` where
/// `<hash>` covers the document as it was before the rewrite. Readers undo
/// this exactly, so the checksum is self-verifying.
std::string SealWithChecksum(std::string doc) {
  const std::string digest = Hex16(StableHash64(doc));
  doc.pop_back();  // The final '}'.
  doc += ",\"checksum\":\"";
  doc += digest;
  doc += "\"}";
  return doc;
}

void AppendCounterFields(std::string& out,
                         const std::vector<std::pair<std::string, uint64_t>>&
                             counters) {
  for (const auto& [name, value] : counters) {
    out += ',';
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
}

// ---------------------------------------------------------------------------
// Reading: a strict, minimal JSON parser
// ---------------------------------------------------------------------------
//
// The exports are machine-written, so the reader can afford to be strict:
// objects keep insertion order, numbers are non-negative integers (the only
// kind the writers emit), and any deviation is treated as damage. The
// parser is recursive-descent with a hard depth cap, consumes each byte at
// most once (no hangs), and reports every failure as a plain `false` that
// the schema layer turns into kCorrupted.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    return pos_ == text_.size();  // No trailing garbage.
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return Consume("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return Consume("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return Consume("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return ParseNumber(out.number);
    }
  }

  bool ParseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writers only escape control bytes, so only accept those.
          if (value >= 0x20) return false;
          out += static_cast<char>(value);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber(uint64_t& out) {
    // The writers emit non-negative integers only; anything else (signs,
    // fractions, exponents, overflow) is damage.
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    out = 0;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      if (++digits > 19) return false;  // Would overflow uint64.
      out = out * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    return true;
  }

  bool Consume(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Verifies the trailing `,"checksum":"<16 hex>"}` seal and returns the
/// document with the seal removed (ready to parse), or kCorrupted.
Result<std::string> Unseal(const std::string& text) {
  std::string trimmed = text;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r' ||
          trimmed.back() == ' ')) {
    trimmed.pop_back();
  }
  static const std::string kMarker = ",\"checksum\":\"";
  // Seal layout: marker + 16 hex + "\"}" at the very end of the document.
  const size_t kSealLength = kMarker.size() + 16 + 2;
  if (trimmed.size() < kSealLength + 1) {
    return Status::Corrupted("export too short to carry a checksum seal");
  }
  const size_t seal_pos = trimmed.size() - kSealLength;
  if (trimmed.compare(seal_pos, kMarker.size(), kMarker) != 0 ||
      trimmed.compare(trimmed.size() - 2, 2, "\"}") != 0) {
    return Status::Corrupted("export checksum seal missing or malformed");
  }
  const std::string digest =
      trimmed.substr(seal_pos + kMarker.size(), 16);
  for (char c : digest) {
    if (!std::isxdigit(static_cast<unsigned char>(c)) ||
        std::isupper(static_cast<unsigned char>(c))) {
      return Status::Corrupted("export checksum is not lowercase hex");
    }
  }
  std::string doc = trimmed.substr(0, seal_pos) + "}";
  if (Hex16(StableHash64(doc)) != digest) {
    return Status::Corrupted("export checksum mismatch: content damaged");
  }
  return doc;
}

Result<JsonValue> ParseSealedDocument(const std::string& text) {
  DEXA_ASSIGN_OR_RETURN(std::string doc, Unseal(text));
  JsonValue root;
  if (!JsonParser(doc).Parse(root)) {
    return Status::Corrupted("export is not well-formed JSON");
  }
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::Corrupted("export root is not a JSON object");
  }
  return root;
}

bool GetNumber(const JsonValue& object, const std::string& key,
               uint64_t& out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
    return false;
  }
  out = value->number;
  return true;
}

bool GetString(const JsonValue& object, const std::string& key,
               std::string& out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kString) {
    return false;
  }
  out = value->str;
  return true;
}

Result<ParsedSpan> DecodeTraceEvent(const JsonValue& event) {
  if (event.kind != JsonValue::Kind::kObject) {
    return Status::Corrupted("trace event is not an object");
  }
  ParsedSpan span;
  std::string ph;
  if (!GetString(event, "name", span.name) ||
      !GetString(event, "cat", span.cat) || !GetString(event, "ph", ph) ||
      ph != "X" || !GetNumber(event, "ts", span.ts) ||
      !GetNumber(event, "dur", span.dur) ||
      !GetNumber(event, "id", span.id)) {
    return Status::Corrupted("trace event missing required fields");
  }
  const JsonValue* args = event.Find("args");
  if (args == nullptr || args->kind != JsonValue::Kind::kObject) {
    return Status::Corrupted("trace event has no args object");
  }
  bool saw_parent = false, saw_virtual = false, saw_replayed = false;
  for (const auto& [key, value] : args->object) {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Status::Corrupted("trace arg '" + key + "' is not a number");
    }
    if (key == "parent") {
      span.parent = value.number;
      saw_parent = true;
    } else if (key == "virtual_ns") {
      span.virtual_ns = value.number;
      saw_virtual = true;
    } else if (key == "replayed") {
      if (value.number > 1) {
        return Status::Corrupted("trace replayed flag out of range");
      }
      span.replayed = value.number == 1;
      saw_replayed = true;
    } else {
      span.counters.emplace_back(key, value.number);
    }
  }
  if (!saw_parent || !saw_virtual || !saw_replayed) {
    return Status::Corrupted("trace event args missing span metadata");
  }
  return span;
}

Result<std::map<std::string, uint64_t>> DecodeNumberMap(
    const JsonValue& object) {
  std::map<std::string, uint64_t> out;
  for (const auto& [key, value] : object.object) {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Status::Corrupted("metric '" + key + "' is not a number");
    }
    out[key] = value.number;
  }
  return out;
}

Result<std::vector<uint64_t>> DecodeNumberArray(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kArray) {
    return Status::Corrupted("expected a JSON array of numbers");
  }
  std::vector<uint64_t> out;
  for (const JsonValue& element : value.array) {
    if (element.kind != JsonValue::Kind::kNumber) {
      return Status::Corrupted("histogram array holds a non-number");
    }
    out.push_back(element.number);
  }
  return out;
}

Result<std::map<std::string, HistogramSnapshot>> DecodeHistogramMap(
    const JsonValue& object) {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [key, value] : object.object) {
    if (value.kind != JsonValue::Kind::kObject) {
      return Status::Corrupted("histogram '" + key + "' is not an object");
    }
    const JsonValue* bounds = value.Find("bounds");
    const JsonValue* counts = value.Find("counts");
    if (bounds == nullptr || counts == nullptr) {
      return Status::Corrupted("histogram '" + key + "' missing buckets");
    }
    HistogramSnapshot histogram;
    DEXA_ASSIGN_OR_RETURN(histogram.bounds, DecodeNumberArray(*bounds));
    DEXA_ASSIGN_OR_RETURN(histogram.counts, DecodeNumberArray(*counts));
    if (histogram.counts.size() != histogram.bounds.size() + 1 ||
        !GetNumber(value, "total", histogram.total) ||
        !GetNumber(value, "observations", histogram.observations)) {
      return Status::Corrupted("histogram '" + key + "' malformed");
    }
    out[key] = std::move(histogram);
  }
  return out;
}

Status DecodeMetricsSection(const JsonValue& root, const std::string& section,
                            std::map<std::string, uint64_t>& counters,
                            std::map<std::string, uint64_t>& gauges,
                            std::map<std::string, HistogramSnapshot>&
                                histograms) {
  const JsonValue* object = root.Find(section);
  if (object == nullptr || object->kind != JsonValue::Kind::kObject) {
    return Status::Corrupted("metrics export missing '" + section +
                             "' section");
  }
  const JsonValue* c = object->Find("counters");
  const JsonValue* g = object->Find("gauges");
  const JsonValue* h = object->Find("histograms");
  if (c == nullptr || c->kind != JsonValue::Kind::kObject || g == nullptr ||
      g->kind != JsonValue::Kind::kObject || h == nullptr ||
      h->kind != JsonValue::Kind::kObject) {
    return Status::Corrupted("metrics section '" + section + "' malformed");
  }
  DEXA_ASSIGN_OR_RETURN(counters, DecodeNumberMap(*c));
  DEXA_ASSIGN_OR_RETURN(gauges, DecodeNumberMap(*g));
  DEXA_ASSIGN_OR_RETURN(histograms, DecodeHistogramMap(*h));
  return Status::OK();
}

void AppendMetricsSection(std::string& out, const MetricsRegistry& registry,
                          MetricStability stability) {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : registry.counters()) {
    if (entry.second != stability) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(entry.first);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : registry.gauges()) {
    if (entry.second != stability) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(entry.first);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : registry.histograms()) {
    if (entry.second != stability) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ":{\"bounds\":[";
    const HistogramSnapshot& histogram = entry.first;
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(histogram.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(histogram.counts[i]);
    }
    out += "],\"total\":";
    out += std::to_string(histogram.total);
    out += ",\"observations\":";
    out += std::to_string(histogram.observations);
    out += '}';
  }
  out += "}}";
}

}  // namespace

std::string WriteChromeTrace(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const std::vector<TraceSpan> spans = tracer.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    AppendJsonString(out, span.name);
    out += ",\"cat\":\"";
    out += SpanKindName(span.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(span.start_tick);
    out += ",\"dur\":";
    uint64_t dur =
        span.end_tick >= span.start_tick ? span.end_tick - span.start_tick : 0;
    out += std::to_string(dur);
    out += ",\"pid\":1,\"tid\":1,\"id\":";
    out += std::to_string(span.id);
    out += ",\"args\":{\"parent\":";
    out += std::to_string(span.parent);
    out += ",\"virtual_ns\":";
    out += std::to_string(span.virtual_ns);
    out += ",\"replayed\":";
    out += span.replayed ? '1' : '0';
    AppendCounterFields(out, span.counters);
    out += "}}";
  }
  out += "]}";
  return SealWithChecksum(std::move(out));
}

std::string WriteMetricsJson(const MetricsRegistry& registry) {
  std::string out = "{\"stable\":";
  AppendMetricsSection(out, registry, MetricStability::kStable);
  out += ",\"volatile\":";
  AppendMetricsSection(out, registry, MetricStability::kVolatile);
  out += '}';
  return SealWithChecksum(std::move(out));
}

Result<ParsedTrace> ReadChromeTrace(const std::string& text) {
  DEXA_ASSIGN_OR_RETURN(JsonValue root, ParseSealedDocument(text));
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Status::Corrupted("trace export has no traceEvents array");
  }
  ParsedTrace trace;
  for (const JsonValue& event : events->array) {
    DEXA_ASSIGN_OR_RETURN(ParsedSpan span, DecodeTraceEvent(event));
    trace.spans.push_back(std::move(span));
  }
  return trace;
}

Result<ParsedMetrics> ReadMetricsJson(const std::string& text) {
  DEXA_ASSIGN_OR_RETURN(JsonValue root, ParseSealedDocument(text));
  ParsedMetrics metrics;
  DEXA_RETURN_IF_ERROR(
      DecodeMetricsSection(root, "stable", metrics.stable_counters,
                           metrics.stable_gauges, metrics.stable_histograms));
  DEXA_RETURN_IF_ERROR(
      DecodeMetricsSection(root, "volatile", metrics.volatile_counters,
                           metrics.volatile_gauges,
                           metrics.volatile_histograms));
  return metrics;
}

}  // namespace dexa::obs
