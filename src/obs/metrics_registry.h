#ifndef DEXA_OBS_METRICS_REGISTRY_H_
#define DEXA_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "obs/trace.h"

namespace dexa::obs {

/// Whether a metric's value is schedule-independent (byte-identical across
/// thread counts for the same seed) or merely informative. Exports keep the
/// two classes in separate sections so determinism tests can compare the
/// stable section bytewise and ignore the volatile one.
enum class MetricStability {
  kStable,
  kVolatile,
};

/// A fixed-bucket histogram: `counts[i]` holds observations <= bounds[i];
/// the final slot counts overflows (> the last bound).
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;  ///< Ascending upper bounds.
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 slots.
  uint64_t total = 0;            ///< Sum of all observations' values.
  uint64_t observations = 0;     ///< Number of Observe() calls.
};

/// A named snapshot store for one run's metrics: counters (monotone totals),
/// gauges (scaled ratios) and histograms, each tagged stable or volatile.
/// Unlike EngineMetrics this is not a hot-path sink — it is populated once,
/// at export time, from an EngineMetricsSnapshot and a Tracer, then
/// serialized to metrics.json. Names are kept in sorted (std::map) order so
/// the export is deterministic by construction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  void SetCounter(const std::string& name, uint64_t value,
                  MetricStability stability = MetricStability::kStable);

  /// Gauges are fixed-point: `value` is the ratio scaled by 1e6 (ppm), so
  /// the export never touches float formatting.
  void SetGauge(const std::string& name, uint64_t ppm,
                MetricStability stability = MetricStability::kStable);

  /// Defines (or redefines, resetting counts) a histogram with the given
  /// ascending bucket upper bounds.
  void DefineHistogram(const std::string& name, std::vector<uint64_t> bounds,
                       MetricStability stability = MetricStability::kStable);

  /// Adds one observation to a defined histogram; unknown names are
  /// ignored (define first).
  void Observe(const std::string& name, uint64_t value);

  /// Imports every engine counter: the schedule-independent subset as
  /// stable counters, cache hits/misses/queries and wall-clock phase
  /// timings as volatile, plus derived gauges (error rate stable,
  /// cache hit rate volatile).
  void ImportEngineSnapshot(const EngineMetricsSnapshot& snapshot);

  /// Imports span statistics from a recorded trace: span/replayed-span
  /// counts per kind, and an examples-per-module histogram over batch
  /// spans' "examples" counters.
  void ImportTrace(const Tracer& tracer);

  const std::map<std::string, std::pair<uint64_t, MetricStability>>&
  counters() const {
    return counters_;
  }
  const std::map<std::string, std::pair<uint64_t, MetricStability>>& gauges()
      const {
    return gauges_;
  }
  const std::map<std::string, std::pair<HistogramSnapshot, MetricStability>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::pair<uint64_t, MetricStability>> counters_;
  std::map<std::string, std::pair<uint64_t, MetricStability>> gauges_;
  std::map<std::string, std::pair<HistogramSnapshot, MetricStability>>
      histograms_;
};

/// `numerator * 1e6 / denominator`, 0 when the denominator is 0 — the
/// fixed-point ratio representation used by gauges.
uint64_t RatioPpm(uint64_t numerator, uint64_t denominator);

}  // namespace dexa::obs

#endif  // DEXA_OBS_METRICS_REGISTRY_H_
