#include "obs/metrics_registry.h"

#include <utility>

namespace dexa::obs {

uint64_t RatioPpm(uint64_t numerator, uint64_t denominator) {
  if (denominator == 0) return 0;
  return numerator * 1000000 / denominator;
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value,
                                 MetricStability stability) {
  counters_[name] = {value, stability};
}

void MetricsRegistry::SetGauge(const std::string& name, uint64_t ppm,
                               MetricStability stability) {
  gauges_[name] = {ppm, stability};
}

void MetricsRegistry::DefineHistogram(const std::string& name,
                                      std::vector<uint64_t> bounds,
                                      MetricStability stability) {
  HistogramSnapshot histogram;
  histogram.bounds = std::move(bounds);
  histogram.counts.assign(histogram.bounds.size() + 1, 0);
  histograms_[name] = {std::move(histogram), stability};
}

void MetricsRegistry::Observe(const std::string& name, uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return;
  HistogramSnapshot& histogram = it->second.first;
  size_t slot = histogram.bounds.size();
  for (size_t i = 0; i < histogram.bounds.size(); ++i) {
    if (value <= histogram.bounds[i]) {
      slot = i;
      break;
    }
  }
  histogram.counts[slot] += 1;
  histogram.total += value;
  histogram.observations += 1;
}

void MetricsRegistry::ImportEngineSnapshot(
    const EngineMetricsSnapshot& snapshot) {
  for (const auto& [name, value] : StableCounters(snapshot)) {
    SetCounter("engine." + name, value, MetricStability::kStable);
  }
  // The hit/miss split between concurrently computed keys is
  // schedule-dependent (both racers count a miss), and phase timings are
  // wall-clock — volatile, reporting-only.
  SetCounter("engine.cache_hits", snapshot.cache_hits,
             MetricStability::kVolatile);
  SetCounter("engine.cache_misses", snapshot.cache_misses,
             MetricStability::kVolatile);
  SetCounter("engine.cache_queries", snapshot.cache_queries,
             MetricStability::kVolatile);
  // Backend-shape counters: which store answered the reasoning (and how
  // often an image was mapped) varies with deployment, not with the
  // annotation semantics — volatile, so golden traces stay byte-identical
  // across the memory and image backends.
  SetCounter("engine.kb_image_loads", snapshot.kb_image_loads,
             MetricStability::kVolatile);
  SetCounter("engine.bitset_queries", snapshot.bitset_queries,
             MetricStability::kVolatile);
  for (size_t i = 0; i < kNumEnginePhases; ++i) {
    SetCounter(std::string("engine.phase_ns.") +
                   EnginePhaseName(static_cast<EnginePhase>(i)),
               snapshot.phase_nanos[i], MetricStability::kVolatile);
  }
  SetGauge("engine.invocation_error_rate_ppm",
           RatioPpm(snapshot.invocation_errors, snapshot.invocations),
           MetricStability::kStable);
  SetGauge("engine.cache_hit_rate_ppm",
           RatioPpm(snapshot.cache_hits, snapshot.cache_queries),
           MetricStability::kVolatile);
}

void MetricsRegistry::ImportTrace(const Tracer& tracer) {
  const std::vector<TraceSpan> spans = tracer.spans();
  uint64_t replayed = 0;
  std::map<std::string, uint64_t> per_kind;
  DefineHistogram("trace.examples_per_module",
                  {0, 1, 2, 4, 8, 16, 32, 64, 128},
                  MetricStability::kStable);
  for (const TraceSpan& span : spans) {
    per_kind[SpanKindName(span.kind)] += 1;
    if (span.replayed) ++replayed;
    if (span.kind == SpanKind::kBatch) {
      for (const auto& [name, value] : span.counters) {
        if (name == "examples") Observe("trace.examples_per_module", value);
      }
    }
  }
  SetCounter("trace.spans", spans.size(), MetricStability::kStable);
  SetCounter("trace.spans_replayed", replayed, MetricStability::kStable);
  for (const auto& [kind, count] : per_kind) {
    SetCounter("trace.spans." + kind, count, MetricStability::kStable);
  }
}

}  // namespace dexa::obs
