// Seed robustness: the paper-shaped results are *structural* — they come
// from the corpus's partition/behavior design, not from the default seed's
// concrete random values. Rebuilding the entire pipeline under different
// seeds must reproduce the same Tables 1-3, the same coverage exceptions
// and the same Figure 8 matching counts.
//
// (Figure 5 is the exception by design: two of its filter-detector
// outcomes hinge on concrete sequence content, which is seed-dependent;
// EXPERIMENTS.md documents that the study is calibrated at the default
// seed.)

#include <cstdlib>
#include <map>

#include <gtest/gtest.h>

#include "common/table.h"
#include "core/coverage.h"
#include "core/engine_config.h"
#include "core/example_generator.h"
#include "core/metrics.h"
#include "corpus/scale.h"
#include "provenance/workflow_corpus.h"
#include "repair/repair.h"

namespace dexa {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, StructuralResultsHoldAcrossSeeds) {
  CorpusOptions options;
  options.seed = GetParam();
  auto corpus = BuildCorpus(options);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  auto workflows = GenerateWorkflowCorpus(*corpus);
  ASSERT_TRUE(workflows.ok()) << workflows.status();
  auto provenance = BuildProvenanceCorpus(*corpus, *workflows);
  ASSERT_TRUE(provenance.ok()) << provenance.status();
  AnnotatedInstancePool pool =
      HarvestPool(*provenance, *corpus->registry, *corpus->ontology);
  ExampleGenerator generator(corpus->ontology.get(), &pool);
  auto annotated = AnnotateRegistry(generator, *corpus->registry);
  ASSERT_TRUE(annotated.ok()) << annotated.status();
  ASSERT_TRUE(annotated->complete()) << annotated->run_status;

  // Tables 1-3 and the Section 4.3 coverage results.
  CoverageAnalyzer analyzer(corpus->ontology.get());
  std::map<std::string, int> completeness;
  std::map<std::string, int> conciseness;
  size_t input_covered = 0;
  size_t output_exceptions = 0;
  for (const std::string& id : corpus->available_ids) {
    ModulePtr module = *corpus->registry->Find(id);
    const DataExampleSet& examples = corpus->registry->DataExamplesOf(id);
    auto metrics = EvaluateBehaviorMetrics(*module, examples);
    ASSERT_TRUE(metrics.ok()) << module->spec().name;
    completeness[FormatFixed(metrics->completeness(), 3)]++;
    conciseness[FormatFixed(metrics->conciseness(), 2)]++;
    CoverageReport report = analyzer.Analyze(module->spec(), examples);
    if (report.inputs_fully_covered()) ++input_covered;
    if (!report.outputs_fully_covered()) ++output_exceptions;
  }
  // Derived from the corpus census, not a parallel hardcoded copy of it
  // (the paper corpus pins 252; a resized corpus keeps this test honest).
  EXPECT_EQ(input_covered, corpus->available_ids.size());
  EXPECT_EQ(output_exceptions, 19u);
  EXPECT_EQ(completeness["1.000"],
            static_cast<int>(corpus->available_ids.size()) - 18);
  EXPECT_EQ(completeness["0.750"], 8);
  EXPECT_EQ(completeness["0.625"], 4);
  EXPECT_EQ(completeness["0.600"], 4);
  EXPECT_EQ(completeness["0.500"], 2);
  EXPECT_EQ(conciseness["1.00"], 192);
  EXPECT_EQ(conciseness["0.50"], 32);
  EXPECT_EQ(conciseness["0.47"], 7);
  EXPECT_EQ(conciseness["0.40"], 4);
  EXPECT_EQ(conciseness["0.33"], 4);
  EXPECT_EQ(conciseness["0.20"], 8);
  EXPECT_EQ(conciseness["0.17"], 4);
  EXPECT_EQ(conciseness["0.10"], 1);

  // Figure 8 matching and the repair outcome.
  ASSERT_TRUE(RetireDecayedModules(*corpus).ok());
  auto matching = MatchRetiredModules(*corpus, *provenance);
  ASSERT_TRUE(matching.ok()) << matching.status();
  EXPECT_EQ(matching->with_equivalent, 16u);
  EXPECT_EQ(matching->with_overlapping, 23u);
  EXPECT_EQ(matching->with_none, 33u);

  auto outcome =
      RepairWorkflows(*corpus, *workflows, *provenance, *matching);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->broken_workflows, 1500u);
  EXPECT_EQ(outcome->repaired_via_equivalent, 321u);
  EXPECT_EQ(outcome->repaired_via_overlapping, 13u);
  EXPECT_EQ(outcome->repaired_partly, 73u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(7u, 1234u, 20260706u));

// ---------------------------------------------------------------------
// Scale sweep: the synthetic scale corpus annotates cleanly at every seed.
// The default run keeps tier-1 fast with a small census; exporting
// DEXA_SCALE_TESTS=1 opts into the full 10k-module sweep the corpus is
// sized for.

class ScaleSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScaleSweepTest, ScaleCorpusAnnotatesCleanlyAcrossSeeds) {
  const bool full = std::getenv("DEXA_SCALE_TESTS") != nullptr;
  ScaleCorpusOptions options;
  options.seed = GetParam();
  options.modules = full ? 10'000 : 270;
  auto corpus = BuildScaleCorpus(options);
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  EngineConfig config = EngineConfig().Threads(8).Seed(GetParam())
                            .MaxAttempts(4);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      corpus->ontology.get(), corpus->pool.get(), engine.get());
  auto report = AnnotateRegistry(generator, *corpus->registry);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->complete()) << report->run_status;

  // Structural, seed-independent: every module annotates (nothing decays
  // at schema epoch 0), every module yields at least one example, and the
  // retrying engine absorbs all deterministic 429 throttling.
  EXPECT_EQ(report->annotated, options.modules);
  EXPECT_EQ(report->decayed, 0u);
  EXPECT_EQ(report->transient_exhausted, 0u);
  EXPECT_GE(report->examples, options.modules);
  for (const std::string& id : corpus->module_ids) {
    ASSERT_FALSE(corpus->registry->DataExamplesOf(id).empty()) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleSweepTest,
                         ::testing::Values(7u, 1234u, 20260706u));

}  // namespace
}  // namespace dexa
