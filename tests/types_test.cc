#include <gtest/gtest.h>

#include "types/structural_type.h"
#include "types/value.h"

namespace dexa {
namespace {

TEST(StructuralTypeTest, PrimitivesAndToString) {
  EXPECT_EQ(StructuralType::String().ToString(), "String");
  EXPECT_EQ(StructuralType::Integer().ToString(), "Integer");
  EXPECT_EQ(StructuralType::Double().ToString(), "Double");
  EXPECT_EQ(StructuralType::Boolean().ToString(), "Boolean");
  EXPECT_TRUE(StructuralType::String().is_primitive());
}

TEST(StructuralTypeTest, ListAndRecord) {
  StructuralType list = StructuralType::List(StructuralType::String());
  EXPECT_EQ(list.ToString(), "List<String>");
  EXPECT_EQ(list.element(), StructuralType::String());
  StructuralType record = StructuralType::Record(
      {{"id", StructuralType::String()}, {"mass", StructuralType::Double()}});
  EXPECT_EQ(record.ToString(), "Record{id:String, mass:Double}");
  EXPECT_EQ(record.fields().size(), 2u);
  EXPECT_FALSE(record.is_primitive());
}

TEST(StructuralTypeTest, Equality) {
  EXPECT_EQ(StructuralType::String(), StructuralType::String());
  EXPECT_NE(StructuralType::String(), StructuralType::Integer());
  EXPECT_EQ(StructuralType::List(StructuralType::Double()),
            StructuralType::List(StructuralType::Double()));
  EXPECT_NE(StructuralType::List(StructuralType::Double()),
            StructuralType::List(StructuralType::String()));
  EXPECT_TRUE(StructuralType::String().IsCompatibleWith(
      StructuralType::String()));
}

TEST(ValueTest, Scalars) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, ListsAndRecords) {
  Value list = Value::ListOf({Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(list.is_list());
  EXPECT_EQ(list.AsList().size(), 2u);
  Value record = Value::RecordOf({{"a", Value::Int(1)}, {"b", Value::Str("x")}});
  ASSERT_TRUE(record.is_record());
  EXPECT_TRUE(record.HasField("a"));
  EXPECT_FALSE(record.HasField("c"));
  auto field = record.Field("b");
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->AsString(), "x");
  EXPECT_TRUE(record.Field("c").status().IsNotFound());
  EXPECT_TRUE(Value::Int(1).Field("a").status().IsInvalidArgument());
}

TEST(ValueTest, DeepEquality) {
  Value a = Value::ListOf({Value::Str("x"), Value::RecordOf({{"k", Value::Int(1)}})});
  Value b = Value::ListOf({Value::Str("x"), Value::RecordOf({{"k", Value::Int(1)}})});
  Value c = Value::ListOf({Value::Str("x"), Value::RecordOf({{"k", Value::Int(2)}})});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // Kind-sensitive.
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::ListOf({Value::Str("x"), Value::Int(4)});
  Value b = Value::ListOf({Value::Str("x"), Value::Int(4)});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), Value::ListOf({Value::Str("y"), Value::Int(4)}).Hash());
  EXPECT_NE(Value::Null().Hash(), Value::Int(0).Hash());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value::Str("x").MatchesType(StructuralType::String()));
  EXPECT_FALSE(Value::Str("x").MatchesType(StructuralType::Integer()));
  EXPECT_TRUE(Value::Null().MatchesType(StructuralType::Integer()));
  StructuralType list = StructuralType::List(StructuralType::Double());
  EXPECT_TRUE(Value::ListOf({Value::Real(1.0)}).MatchesType(list));
  EXPECT_FALSE(Value::ListOf({Value::Str("x")}).MatchesType(list));
  StructuralType record = StructuralType::Record({{"id", StructuralType::String()}});
  EXPECT_TRUE(Value::RecordOf({{"id", Value::Str("a")}}).MatchesType(record));
  EXPECT_FALSE(Value::RecordOf({{"other", Value::Str("a")}}).MatchesType(record));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("a\"b\n").ToString(), "\"a\\\"b\\n\"");
  EXPECT_EQ(Value::ListOf({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::RecordOf({{"k", Value::Str("v")}}).ToString(),
            "{\"k\": \"v\"}");
}

TEST(ValueTest, ParseRoundTrip) {
  std::vector<Value> cases = {
      Value::Null(),
      Value::Bool(false),
      Value::Int(-123),
      Value::Real(2.5),
      Value::Real(5.0),  // Integral double must stay a double (regression).
      Value::Real(-0.0),
      Value::Str("hello \"world\"\twith\nescapes"),
      Value::ListOf({Value::Int(1), Value::Str("x"),
                     Value::ListOf({Value::Real(0.25)})}),
      Value::RecordOf({{"id", Value::Str("P12345")},
                       {"masses", Value::ListOf({Value::Real(11.5)})}}),
  };
  for (const Value& original : cases) {
    auto parsed = Value::Parse(original.ToString());
    ASSERT_TRUE(parsed.ok()) << original.ToString() << ": " << parsed.status();
    EXPECT_EQ(*parsed, original) << original.ToString();
  }
}

TEST(ValueTest, ParseRejectsMalformedInput) {
  EXPECT_TRUE(Value::Parse("").status().IsParseError());
  EXPECT_TRUE(Value::Parse("[1,").status().IsParseError());
  EXPECT_TRUE(Value::Parse("{\"a\" 1}").status().IsParseError());
  EXPECT_TRUE(Value::Parse("\"unterminated").status().IsParseError());
  EXPECT_TRUE(Value::Parse("12 34").status().IsParseError());
  EXPECT_TRUE(Value::Parse("nulll").status().IsParseError());
}

}  // namespace
}  // namespace dexa
