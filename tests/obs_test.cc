// Golden-trace determinism suite for src/obs: the tracer's logical-tick
// span tree, RAII guard semantics, stable-counter deltas, the Chrome-trace
// and metrics.json exporters with their checksum seal, exact counter
// pinning for scripted fault schedules, and the acceptance bar — traces
// that are byte-identical across thread counts, under transient faults,
// and across a crash/resume pair (with replayed commits marked replayed,
// never re-traced as live work).

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_config.h"
#include "corpus/fault_injector.h"
#include "durability/durable_annotate.h"
#include "durability/journal.h"
#include "modules/module.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "types/value.h"

namespace dexa {
namespace {

namespace fs = std::filesystem;

using testing_env::GetEnvironment;

/// A fresh directory under the test temp root, wiped on creation.
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_obs" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// The environment registry with every module wrapped in a FaultInjector
/// running `profile`, reporting into `metrics`.
std::unique_ptr<ModuleRegistry> WrappedRegistry(const FaultProfile& profile,
                                                EngineMetrics* metrics) {
  const auto& env = GetEnvironment();
  auto wrapped = WrapRegistryWithFaults(*env.corpus.registry, profile, metrics);
  EXPECT_TRUE(wrapped.ok()) << wrapped.status();
  return std::move(wrapped).value();
}

// ---------------------------------------------------------------------------
// Tracer: logical ticks, span tree, idempotent close
// ---------------------------------------------------------------------------

TEST(TracerTest, TicksAreLogicalAndTheSpanTreeIsRecorded) {
  obs::Tracer tracer;
  uint64_t run = tracer.BeginSpan(obs::SpanKind::kRun, "run");
  uint64_t phase = tracer.BeginSpan(obs::SpanKind::kPhase, "generate", run);
  uint64_t batch = tracer.BeginSpan(obs::SpanKind::kBatch, "m1", phase);
  tracer.AddCounter(batch, "examples", 3);
  tracer.EndSpan(batch);
  tracer.EndSpan(phase);
  tracer.EndSpan(run);

  ASSERT_EQ(tracer.open_spans(), 0u);
  std::vector<obs::TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);

  // Ids are 1-based in creation order; parents form the tree.
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, run);
  EXPECT_EQ(spans[2].parent, phase);
  EXPECT_EQ(spans[2].name, "m1");
  EXPECT_EQ(spans[2].kind, obs::SpanKind::kBatch);

  // One tick per Begin and per End, in recording order: begin 0,1,2 then
  // end 3,4,5 inner-to-outer. No wall clock anywhere.
  EXPECT_EQ(spans[0].start_tick, 0u);
  EXPECT_EQ(spans[1].start_tick, 1u);
  EXPECT_EQ(spans[2].start_tick, 2u);
  EXPECT_EQ(spans[2].end_tick, 3u);
  EXPECT_EQ(spans[1].end_tick, 4u);
  EXPECT_EQ(spans[0].end_tick, 5u);

  ASSERT_EQ(spans[2].counters.size(), 1u);
  EXPECT_EQ(spans[2].counters[0].first, "examples");
  EXPECT_EQ(spans[2].counters[0].second, 3u);
}

TEST(TracerTest, EndSpanIsIdempotentAndUnknownIdsAreIgnored) {
  obs::Tracer tracer;
  uint64_t id = tracer.BeginSpan(obs::SpanKind::kRun, "run");
  tracer.EndSpan(id);
  uint64_t closed_at = tracer.spans()[0].end_tick;

  tracer.EndSpan(id);    // Already closed: must not re-stamp.
  tracer.EndSpan(0);     // "No span".
  tracer.EndSpan(999);   // Never issued.
  EXPECT_EQ(tracer.spans()[0].end_tick, closed_at);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerTest, VirtualClockReadingIsStampedAtSpanOpen) {
  VirtualClock clock;
  obs::Tracer tracer(&clock);
  uint64_t a = tracer.BeginSpan(obs::SpanKind::kPhase, "before");
  clock.Advance(250);
  uint64_t b = tracer.BeginSpan(obs::SpanKind::kPhase, "after");
  tracer.EndSpan(b);
  tracer.EndSpan(a);

  std::vector<obs::TraceSpan> spans = tracer.spans();
  EXPECT_EQ(spans[a - 1].virtual_ns, 0u);
  EXPECT_EQ(spans[b - 1].virtual_ns, 250u);
}

// ---------------------------------------------------------------------------
// ScopedSpan: RAII close on every path, null-tracer no-op
// ---------------------------------------------------------------------------

TEST(ScopedSpanTest, ClosesOnEveryEarlyReturnPath) {
  obs::Tracer tracer;
  auto leave_early = [&](bool early) {
    obs::ScopedSpan span(&tracer, obs::SpanKind::kPhase, "guarded");
    if (early) return;  // The guard must close the span here too.
    span.Counter("worked", 1);
  };
  leave_early(true);
  leave_early(false);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  for (const obs::TraceSpan& span : tracer.spans()) {
    EXPECT_NE(span.end_tick, 0u) << "span " << span.id << " left open";
  }
}

TEST(ScopedSpanTest, ExplicitEndIsIdempotentWithTheDestructor) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, obs::SpanKind::kRun, "run");
    span.End();
    span.End();  // Second End and the destructor are no-ops.
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].end_tick, 1u);
}

TEST(ScopedSpanTest, NullTracerMakesEveryMemberANoOp) {
  obs::ScopedSpan span(nullptr, obs::SpanKind::kRun, "off");
  EXPECT_EQ(span.id(), 0u);
  span.Counter("ignored", 1);
  span.MarkReplayed();
  span.End();  // Must not crash.
}

TEST(StableCounterTest, DeltasOmitZeroesAndScheduleDependentCounters) {
  EngineMetrics metrics;
  EngineMetricsSnapshot before = metrics.Snapshot();
  metrics.RecordInvocation(false);
  metrics.RecordRetry();
  // Schedule-dependent: the hit/miss split of concurrent lookups and the
  // wall-clock phase timings must never reach a trace.
  metrics.RecordCacheQuery();
  metrics.RecordCacheMiss();
  metrics.AddPhaseNanos(EnginePhase::kGenerate, 1'000'000);
  EngineMetricsSnapshot after = metrics.Snapshot();

  auto deltas = obs::StableCounterDeltas(before, after);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0], (std::pair<std::string, uint64_t>{"invocations", 1}));
  EXPECT_EQ(deltas[1],
            (std::pair<std::string, uint64_t>{"invocation_errors", 1}));
  EXPECT_EQ(deltas[2], (std::pair<std::string, uint64_t>{"retries", 1}));
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HistogramBucketsAndOverflowSlot) {
  obs::MetricsRegistry registry;
  registry.DefineHistogram("h", {1, 4, 16});
  for (uint64_t value : {0u, 1u, 2u, 4u, 5u, 16u, 17u, 1000u}) {
    registry.Observe("h", value);
  }
  registry.Observe("unknown", 7);  // Ignored: define first.

  const auto& snapshot = registry.histograms().at("h").first;
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);  // 0, 1
  EXPECT_EQ(snapshot.counts[1], 2u);  // 2, 4
  EXPECT_EQ(snapshot.counts[2], 2u);  // 5, 16
  EXPECT_EQ(snapshot.counts[3], 2u);  // 17, 1000 overflow
  EXPECT_EQ(snapshot.observations, 8u);
  EXPECT_EQ(snapshot.total, 0u + 1 + 2 + 4 + 5 + 16 + 17 + 1000);
}

TEST(MetricsRegistryTest, RatioPpmIsFixedPoint) {
  EXPECT_EQ(obs::RatioPpm(1, 2), 500'000u);
  EXPECT_EQ(obs::RatioPpm(0, 5), 0u);
  EXPECT_EQ(obs::RatioPpm(5, 0), 0u);  // No division by zero.
  EXPECT_EQ(obs::RatioPpm(3, 3), 1'000'000u);
}

TEST(MetricsRegistryTest, EngineImportSplitsStableFromVolatile) {
  EngineMetrics metrics;
  metrics.RecordInvocation(true);
  metrics.RecordCacheQuery();
  metrics.RecordCacheHit();
  metrics.AddPhaseNanos(EnginePhase::kGenerate, 42);

  obs::MetricsRegistry registry;
  registry.ImportEngineSnapshot(metrics.Snapshot());

  using obs::MetricStability;
  EXPECT_EQ(registry.counters().at("engine.invocations").second,
            MetricStability::kStable);
  EXPECT_EQ(registry.counters().at("engine.cache_hits").second,
            MetricStability::kVolatile);
  EXPECT_EQ(registry.counters().at("engine.phase_ns.generate").second,
            MetricStability::kVolatile);
  EXPECT_EQ(registry.gauges().at("engine.cache_hit_rate_ppm").second,
            MetricStability::kVolatile);
  EXPECT_EQ(registry.gauges().at("engine.invocation_error_rate_ppm").second,
            MetricStability::kStable);
  EXPECT_EQ(registry.gauges().at("engine.cache_hit_rate_ppm").first,
            1'000'000u);
}

// ---------------------------------------------------------------------------
// Exporters: round-trip, checksum seal, typed corruption
// ---------------------------------------------------------------------------

/// A small two-level trace with counters, a replayed span and an escaped
/// name, exercising every writer feature.
void RecordSampleTrace(obs::Tracer& tracer) {
  obs::ScopedSpan run(&tracer, obs::SpanKind::kRun, "annotate \"q\"\n");
  {
    obs::ScopedSpan phase(&tracer, obs::SpanKind::kPhase, "replay", run.id());
    obs::ScopedSpan batch(&tracer, obs::SpanKind::kBatch, "m1", phase.id());
    batch.MarkReplayed();
    batch.Counter("examples", 2);
  }
  run.Counter("commits", 7);
}

TEST(ExportTest, ChromeTraceRoundTripsThroughTheReader) {
  obs::Tracer tracer;
  RecordSampleTrace(tracer);
  const std::string text = obs::WriteChromeTrace(tracer);

  // The writer is deterministic: same spans, same bytes.
  EXPECT_EQ(text, obs::WriteChromeTrace(tracer));

  auto parsed = obs::ReadChromeTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::vector<obs::TraceSpan> spans = tracer.spans();
  ASSERT_EQ(parsed->spans.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::ParsedSpan& out = parsed->spans[i];
    EXPECT_EQ(out.id, spans[i].id);
    EXPECT_EQ(out.parent, spans[i].parent);
    EXPECT_EQ(out.name, spans[i].name);
    EXPECT_EQ(out.cat, obs::SpanKindName(spans[i].kind));
    EXPECT_EQ(out.ts, spans[i].start_tick);
    EXPECT_EQ(out.dur, spans[i].end_tick - spans[i].start_tick);
    EXPECT_EQ(out.replayed, spans[i].replayed);
    EXPECT_EQ(out.counters, spans[i].counters);
  }
}

TEST(ExportTest, MetricsJsonRoundTripsThroughTheReader) {
  obs::MetricsRegistry registry;
  registry.SetCounter("engine.commits", 12);
  registry.SetCounter("engine.cache_hits", 99, obs::MetricStability::kVolatile);
  registry.SetGauge("rate_ppm", 250'000);
  registry.DefineHistogram("sizes", {1, 8});
  registry.Observe("sizes", 0);
  registry.Observe("sizes", 9);

  const std::string text = obs::WriteMetricsJson(registry);
  EXPECT_EQ(text, obs::WriteMetricsJson(registry));

  auto parsed = obs::ReadMetricsJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->stable_counters.at("engine.commits"), 12u);
  EXPECT_EQ(parsed->volatile_counters.at("engine.cache_hits"), 99u);
  EXPECT_EQ(parsed->stable_gauges.at("rate_ppm"), 250'000u);
  const obs::HistogramSnapshot& h = parsed->stable_histograms.at("sizes");
  EXPECT_EQ(h.bounds, (std::vector<uint64_t>{1, 8}));
  EXPECT_EQ(h.counts, (std::vector<uint64_t>{1, 0, 1}));
  EXPECT_EQ(h.total, 9u);
  EXPECT_EQ(h.observations, 2u);
}

TEST(ExportTest, DamagedExportsAreRejectedAsCorrupted) {
  obs::Tracer tracer;
  RecordSampleTrace(tracer);
  const std::string trace = obs::WriteChromeTrace(tracer);
  obs::MetricsRegistry registry;
  registry.SetCounter("c", 1);
  const std::string metrics = obs::WriteMetricsJson(registry);

  // A flipped byte breaks the checksum; a truncated document breaks the
  // framing; garbage is garbage. All must come back kCorrupted — never a
  // crash, never a partial parse.
  std::string flipped = trace;
  flipped[trace.size() / 2] ^= 0x20;
  EXPECT_TRUE(obs::ReadChromeTrace(flipped).status().IsCorrupted());
  EXPECT_TRUE(
      obs::ReadChromeTrace(trace.substr(0, trace.size() - 5)).status()
          .IsCorrupted());
  EXPECT_TRUE(obs::ReadChromeTrace("").status().IsCorrupted());
  EXPECT_TRUE(obs::ReadChromeTrace("{\"traceEvents\":[]}").status()
                  .IsCorrupted());  // Valid JSON, missing seal.

  std::string metrics_flipped = metrics;
  metrics_flipped[metrics.size() / 3] ^= 0x01;
  EXPECT_TRUE(obs::ReadMetricsJson(metrics_flipped).status().IsCorrupted());
  EXPECT_TRUE(
      obs::ReadMetricsJson(metrics.substr(0, metrics.size() - 1)).status()
          .IsCorrupted());
  EXPECT_TRUE(obs::ReadMetricsJson(trace).status().IsCorrupted());
}

// ---------------------------------------------------------------------------
// Counter regressions: scripted fault schedules pin exact counts
// ---------------------------------------------------------------------------

/// An echo module: the controllable backend the scripted schedules wrap in
/// FaultInjectors.
class EchoModule : public Module {
 public:
  EchoModule() : Module(MakeSpec()) {}

  bool fail_permanently = false;

 protected:
  Result<std::vector<Value>> InvokeImpl(
      const std::vector<Value>& inputs) const override {
    if (fail_permanently) return Status::Permanent("backend gone");
    return std::vector<Value>{inputs[0]};
  }

 private:
  static ModuleSpec MakeSpec() {
    ModuleSpec spec;
    spec.id = "test.obs.echo";
    spec.name = "Echo";
    spec.inputs.push_back(Parameter{.name = "in"});
    spec.outputs.push_back(Parameter{.name = "out"});
    return spec;
  }
};

TEST(CounterRegressionTest, DeadlineBlownAttemptCountsAsErrorNotSuccess) {
  // Schedule: one attempt, succeeds, but its injected latency (10ms) blows
  // the 5ms budget — the caller gets kTimeout and the result is discarded.
  // The regression: this used to count as a *successful* invocation
  // (invocation_errors == 0), overstating completed work.
  auto module = std::make_shared<EchoModule>();
  FaultProfile profile;
  profile.latency_ns = 10'000'000;
  auto injector = std::make_shared<FaultInjector>(module, profile);
  auto engine =
      EngineConfig().Threads(1).DeadlineNanos(5'000'000).BuildEngine();

  auto result = engine->Invoke(*injector, {Value::Str("x")});
  EXPECT_TRUE(result.status().IsTimeout()) << result.status();

  EngineMetricsSnapshot snapshot = engine->metrics().Snapshot();
  EXPECT_EQ(snapshot.invocations, 1u);
  EXPECT_EQ(snapshot.invocation_errors, 1u);
  EXPECT_EQ(snapshot.deadline_exhaustions, 1u);
  EXPECT_EQ(snapshot.retries, 0u);
}

TEST(CounterRegressionTest, BreakerShortCircuitIsNotAnInvocation) {
  // Schedule: two permanent failures trip the breaker (threshold 2); the
  // third call short-circuits without reaching the module. Exactly two
  // invocations — a short-circuit is denied admission, not attempted work.
  auto module = std::make_shared<EchoModule>();
  module->fail_permanently = true;
  auto engine = EngineConfig()
                    .Threads(1)
                    .Breaker(/*threshold=*/2, /*cooldown_ns=*/1'000'000)
                    .BuildEngine();
  const std::vector<Value> inputs{Value::Str("x")};

  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsPermanent());
  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsPermanent());
  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsDecayed());

  EngineMetricsSnapshot snapshot = engine->metrics().Snapshot();
  EXPECT_EQ(snapshot.invocations, 2u);
  EXPECT_EQ(snapshot.invocation_errors, 2u);
  EXPECT_EQ(snapshot.breaker_trips, 1u);
  EXPECT_EQ(snapshot.breaker_short_circuits, 1u);

  // A short-circuited batch behaves the same: four more denials, still two
  // invocations.
  std::vector<std::vector<Value>> batch(4, inputs);
  for (const auto& denied : engine->InvokeBatch(*module, batch)) {
    EXPECT_TRUE(denied.status().IsDecayed()) << denied.status();
  }
  snapshot = engine->metrics().Snapshot();
  EXPECT_EQ(snapshot.invocations, 2u);
  EXPECT_EQ(snapshot.breaker_short_circuits, 5u);
}

TEST(CounterRegressionTest, FlakyWarmupScheduleIsPinnedExactly) {
  // Schedule: the injector fails the first two attempts, the third
  // succeeds. 3 invocations, 2 errors, 2 retries, 2 injected faults.
  auto module = std::make_shared<EchoModule>();
  FaultProfile profile;
  profile.flaky_first_attempts = 2;
  auto engine = EngineConfig().Threads(1).MaxAttempts(3).BuildEngine();
  auto injector =
      std::make_shared<FaultInjector>(module, profile, &engine->metrics());

  ASSERT_TRUE(engine->Invoke(*injector, {Value::Str("x")}).ok());

  EngineMetricsSnapshot snapshot = engine->metrics().Snapshot();
  EXPECT_EQ(snapshot.invocations, 3u);
  EXPECT_EQ(snapshot.invocation_errors, 2u);
  EXPECT_EQ(snapshot.retries, 2u);
  EXPECT_EQ(snapshot.injected_faults, 2u);
  EXPECT_EQ(snapshot.deadline_exhaustions, 0u);
  EXPECT_EQ(snapshot.breaker_short_circuits, 0u);
}

// ---------------------------------------------------------------------------
// Golden traces: byte-identical across thread counts
// ---------------------------------------------------------------------------

/// One traced annotation run over the environment registry (wrapped in
/// `profile` injectors) at `threads`; returns the Chrome-trace bytes and
/// the run's final engine snapshot through `out`.
std::string TracedAnnotate(size_t threads, const FaultProfile& profile,
                           EngineMetricsSnapshot* out) {
  const auto& env = GetEnvironment();
  EngineConfig config =
      EngineConfig().Threads(threads).Seed(0x0B5).MaxAttempts(4);
  auto engine = config.BuildEngine();
  auto registry = WrappedRegistry(profile, &engine->metrics());
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());

  obs::Tracer tracer(&engine->clock());
  auto report = AnnotateRegistry(generator, *registry, &tracer);
  EXPECT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->complete()) << report->run_status;
  EXPECT_EQ(tracer.open_spans(), 0u);
  if (out != nullptr) *out = report->metrics;
  return obs::WriteChromeTrace(tracer);
}

TEST(GoldenTraceTest, AnnotateTraceIsByteIdenticalAcrossThreadCounts) {
  EngineMetricsSnapshot serial_metrics;
  EngineMetricsSnapshot pooled_metrics;
  const std::string serial = TracedAnnotate(1, FaultProfile{}, &serial_metrics);
  const std::string pooled = TracedAnnotate(8, FaultProfile{}, &pooled_metrics);
  EXPECT_EQ(serial, pooled) << "span tree diverged between t1 and t8";
  EXPECT_EQ(obs::StableCounters(serial_metrics),
            obs::StableCounters(pooled_metrics));

  // Structure sanity: a run root with generate + commit phases and one
  // batch span per annotated/decayed module, each carrying counters.
  auto parsed = obs::ReadChromeTrace(serial);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_FALSE(parsed->spans.empty());
  const obs::ParsedSpan& root = parsed->spans.front();
  EXPECT_EQ(root.cat, "run");
  EXPECT_EQ(root.name, "annotate_registry");
  EXPECT_FALSE(root.counters.empty());
  size_t phases = 0;
  size_t batches = 0;
  for (const obs::ParsedSpan& span : parsed->spans) {
    if (span.cat == "phase") ++phases;
    if (span.cat == "batch") {
      ++batches;
      EXPECT_EQ(parsed->spans[span.parent - 1].name, "commit");
    }
  }
  EXPECT_EQ(phases, 2u);
  EXPECT_GT(batches, 100u) << "one batch span per committed module";
}

TEST(GoldenTraceTest, TransientFaultTraceIsByteIdenticalAndRecordsRetries) {
  FaultProfile profile;
  profile.seed = 0xFA17;
  profile.transient_rate = 0.2;

  EngineMetricsSnapshot serial_metrics;
  const std::string serial = TracedAnnotate(1, profile, &serial_metrics);
  const std::string pooled = TracedAnnotate(8, profile, nullptr);
  EXPECT_EQ(serial, pooled)
      << "span tree diverged between t1 and t8 under 20% transient faults";

  // The faults and retries actually happened, and the root span's stable
  // deltas carry them.
  EXPECT_GT(serial_metrics.injected_faults, 0u);
  EXPECT_GT(serial_metrics.retries, 0u);
  auto parsed = obs::ReadChromeTrace(serial);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  uint64_t root_retries = 0;
  for (const auto& [name, value] : parsed->spans.front().counters) {
    if (name == "retries") root_retries = value;
  }
  EXPECT_GT(root_retries, 0u);
}

TEST(GoldenTraceTest, MetricsStableSectionIsIdenticalAcrossThreadCounts) {
  auto export_metrics = [](size_t threads) {
    EngineMetricsSnapshot snapshot;
    TracedAnnotate(threads, FaultProfile{}, &snapshot);
    obs::MetricsRegistry registry;
    registry.ImportEngineSnapshot(snapshot);
    return obs::ReadMetricsJson(
        obs::WriteMetricsJson(registry));
  };
  auto serial = export_metrics(1);
  auto pooled = export_metrics(8);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(pooled.ok()) << pooled.status();

  EXPECT_EQ(serial->stable_counters, pooled->stable_counters);
  EXPECT_EQ(serial->stable_gauges, pooled->stable_gauges);
  EXPECT_GT(serial->stable_counters.at("engine.invocations"), 0u);
  // The volatile section exists but is exempt from the determinism bar.
  EXPECT_TRUE(serial->volatile_counters.count("engine.cache_hits"));
}

// ---------------------------------------------------------------------------
// Crash/resume: replayed commits are marked, not re-traced as live work
// ---------------------------------------------------------------------------

/// Crashes a durable run before the commit of module `crash_index`, then
/// resumes it with a tracer attached; returns the resume trace's bytes and
/// the resumed report's replayed count through `out_replayed`.
std::string TracedResume(size_t threads, const std::string& dir,
                         size_t crash_index, size_t* out_replayed) {
  const auto& env = GetEnvironment();
  EngineConfig config = EngineConfig().Threads(threads).Seed(0xD0D0);

  {
    auto engine = config.BuildEngine();
    auto registry = WrappedRegistry(FaultProfile{}, &engine->metrics());
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    auto journal = RunJournal::Create(dir, {}, &engine->metrics());
    EXPECT_TRUE(journal.ok()) << journal.status();
    const auto modules = registry->AvailableModules();
    EXPECT_GT(modules.size(), crash_index);
    DurableAnnotateOptions options;
    options.crash.point = CrashPoint::kCrashBeforeCommit;
    options.crash.key = modules[crash_index]->spec().id;
    auto report = AnnotateRegistryDurable(generator, *registry,
                                          *env.corpus.ontology, *journal,
                                          options);
    EXPECT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->run_status.IsCancelled()) << report->run_status;
  }

  auto engine = config.BuildEngine();
  auto registry = WrappedRegistry(FaultProfile{}, &engine->metrics());
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto recovery = RecoverJournal(dir, &engine->metrics());
  EXPECT_TRUE(recovery.ok()) << recovery.status();
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine->metrics());
  EXPECT_TRUE(journal.ok()) << journal.status();

  obs::Tracer tracer(&engine->clock());
  DurableAnnotateOptions options;
  options.resume = &*recovery;
  options.obs.tracer = &tracer;
  auto report = AnnotateRegistryDurable(generator, *registry,
                                        *env.corpus.ontology, *journal,
                                        options);
  EXPECT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->complete()) << report->run_status;
  EXPECT_EQ(tracer.open_spans(), 0u);
  if (out_replayed != nullptr) *out_replayed = report->replayed;
  return obs::WriteChromeTrace(tracer);
}

TEST(GoldenTraceTest, ResumeTraceMarksReplayedSpansAndIsByteIdentical) {
  constexpr size_t kCrashIndex = 11;
  size_t serial_replayed = 0;
  const std::string serial = TracedResume(
      1, FreshDir("resume-t1"), kCrashIndex, &serial_replayed);
  const std::string pooled =
      TracedResume(8, FreshDir("resume-t8"), kCrashIndex, nullptr);
  EXPECT_EQ(serial, pooled) << "resume trace diverged between t1 and t8";
  EXPECT_EQ(serial_replayed, kCrashIndex);

  auto parsed = obs::ReadChromeTrace(serial);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_FALSE(parsed->spans.empty());
  EXPECT_EQ(parsed->spans.front().name, "annotate_registry_durable");

  size_t replayed_spans = 0;
  for (const obs::ParsedSpan& span : parsed->spans) {
    if (span.cat != "batch") continue;
    const obs::ParsedSpan& parent = parsed->spans[span.parent - 1];
    if (span.replayed) {
      ++replayed_spans;
      // Served from the journal: under the replay phase, with no live-work
      // counters (no combinations were tried for a replayed commit).
      EXPECT_EQ(parent.name, "replay");
      for (const auto& [name, value] : span.counters) {
        EXPECT_NE(name, "combinations_tried")
            << "replayed span " << span.name << " re-traced as live work";
      }
    } else {
      EXPECT_EQ(parent.name, "commit");
    }
  }
  EXPECT_EQ(replayed_spans, serial_replayed);

  // The run span's stable deltas account for the replayed prefix.
  uint64_t root_replayed = 0;
  for (const auto& [name, value] : parsed->spans.front().counters) {
    if (name == "modules_replayed") root_replayed = value;
  }
  EXPECT_EQ(root_replayed, serial_replayed);
}

}  // namespace
}  // namespace dexa
