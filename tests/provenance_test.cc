#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

TEST(WorkflowCorpusTest, CategoryCountsMatchCalibration) {
  const auto& env = GetEnvironment();
  const WorkflowCorpus& corpus = env.workflows;
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kHealthy), 1500u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kEquivalentOnly), 253u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kEquivalentPlusDead), 68u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kOverlapGood), 8u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kOverlapGoodPlusDead), 5u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kOverlapBad), 266u);
  EXPECT_EQ(corpus.CountCategory(WorkflowCategory::kDeadOnly), 900u);
  EXPECT_EQ(corpus.items.size(), 3000u);
}

TEST(WorkflowCorpusTest, AllWorkflowsValidate) {
  const auto& env = GetEnvironment();
  for (size_t i = 0; i < env.workflows.items.size(); i += 97) {
    const GeneratedWorkflow& item = env.workflows.items[i];
    EXPECT_TRUE(ValidateWorkflow(item.workflow, *env.corpus.registry,
                                 *env.corpus.ontology)
                    .ok())
        << item.workflow.id;
    EXPECT_EQ(item.seeds.size(), item.workflow.inputs.size())
        << item.workflow.id;
  }
}

TEST(ProvenanceCorpusTest, EveryWorkflowProducedATrace) {
  const auto& env = GetEnvironment();
  // 3000 workflow traces + 72 historical traces.
  EXPECT_EQ(env.provenance.num_traces(), 3072u);
  EXPECT_GT(env.provenance.num_invocations(), 3000u);
}

TEST(ProvenanceCorpusTest, RetiredModulesHaveHistoricalRecords) {
  const auto& env = GetEnvironment();
  for (const std::string& id : env.corpus.retired_ids) {
    auto records = env.provenance.RecordsOf(id);
    EXPECT_FALSE(records.empty())
        << (*env.corpus.registry->Find(id))->spec().name;
  }
}

TEST(ProvenanceCorpusTest, FindByInputsLocatesRecords) {
  const auto& env = GetEnvironment();
  const std::string& retired = env.corpus.retired_ids[0];
  auto records = env.provenance.RecordsOf(retired);
  ASSERT_FALSE(records.empty());
  const InvocationRecord* found =
      env.provenance.FindByInputs(retired, records[0]->inputs);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->module_id, retired);
  EXPECT_EQ(env.provenance.FindByInputs(retired, {Value::Str("nope")}),
            nullptr);
}

TEST(SeedCatalogTest, ProvidesSeedsForAllAnnotatedInputConcepts) {
  const auto& env = GetEnvironment();
  SeedCatalog catalog(env.corpus.kb);
  std::set<std::string> concepts;
  for (const ModulePtr& module : env.corpus.registry->AllModules()) {
    for (const Parameter& param : module->spec().inputs) {
      concepts.insert(env.corpus.ontology->NameOf(param.semantic_type));
    }
  }
  for (const std::string& concept_name : concepts) {
    auto seed = catalog.SeedFor(concept_name, 0);
    EXPECT_TRUE(seed.ok()) << concept_name << ": " << seed.status();
  }
}

TEST(SeedCatalogTest, ListParametersGetLists) {
  const auto& env = GetEnvironment();
  SeedCatalog catalog(env.corpus.kb);
  Parameter param;
  param.name = "records";
  param.structural_type = StructuralType::List(StructuralType::String());
  param.semantic_type = env.corpus.ontology->Find("UniprotRecord");
  auto seed = catalog.SeedForParameter(param, *env.corpus.ontology, 0);
  ASSERT_TRUE(seed.ok()) << seed.status();
  ASSERT_TRUE(seed->is_list());
  EXPECT_EQ(seed->AsList().size(), 4u);
}

TEST(HarvestTest, PoolCoversEveryLeafInputConcept) {
  const auto& env = GetEnvironment();
  const Ontology& onto = *env.corpus.ontology;
  // Every realizable input partition of every available module must have a
  // pooled realization (this is what makes "all input partitions covered"
  // possible in Section 4.3).
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    for (const Parameter& param : module->spec().inputs) {
      for (ConceptId partition : onto.Partitions(param.semantic_type)) {
        EXPECT_GT(env.pool->CountFor(partition), 0u)
            << module->spec().name << " needs " << onto.NameOf(partition);
      }
    }
  }
}

TEST(HarvestTest, PoolRealizationsAreWellFormed) {
  const auto& env = GetEnvironment();
  const Ontology& onto = *env.corpus.ontology;
  // The canonical UniprotRecord list must span several organisms (filter
  // calibration depends on it).
  const auto& records = env.pool->InstancesOf(onto.Find("UniprotRecord"));
  ASSERT_GE(records.size(), 4u);
  std::set<std::string> organisms;
  for (size_t i = 0; i < 4; ++i) {
    std::string text = records[i].AsString();
    size_t os = text.find("OS   ");
    ASSERT_NE(os, std::string::npos);
    organisms.insert(text.substr(os, text.find('\n', os) - os));
  }
  EXPECT_GE(organisms.size(), 3u);
}

}  // namespace
}  // namespace dexa
