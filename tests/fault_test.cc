// Tests for the fault-tolerance layer: the typed Status taxonomy, the
// deterministic retry/backoff schedule, fault injection, circuit breakers
// on the virtual clock, deadline budgets, and graceful degradation through
// AnnotateRegistry, EnactResilient and ScanForDecay.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_config.h"
#include "core/example_generator.h"
#include "corpus/fault_injector.h"
#include "engine/invocation_engine.h"
#include "repair/repair.h"
#include "tests/test_util.h"
#include "workflow/enactor.h"

namespace dexa {
namespace {

TEST(StatusTaxonomyTest, RetryDispatchIsOnCodesNotStrings) {
  EXPECT_TRUE(Status::Transient("x").IsTransient());
  EXPECT_TRUE(Status::Transient("x").IsRetryable());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Timeout("x").IsRetryable());

  EXPECT_FALSE(Status::Permanent("x").IsRetryable());
  EXPECT_FALSE(Status::Decayed("x").IsRetryable());
  EXPECT_FALSE(Status::Cancelled("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());

  EXPECT_TRUE(Status::Permanent("x").IsPermanentFailure());
  EXPECT_TRUE(Status::Decayed("x").IsPermanentFailure());
  EXPECT_TRUE(Status::Unavailable("x").IsPermanentFailure());
  EXPECT_FALSE(Status::Transient("x").IsPermanentFailure());
  EXPECT_FALSE(Status::Cancelled("x").IsPermanentFailure());
  EXPECT_FALSE(Status::OK().IsRetryable());

  // The message must not influence classification.
  EXPECT_TRUE(Status::Transient("permanent decayed timeout").IsRetryable());
}

TEST(RetryBackoffTest, ScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 1'000'000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 64'000'000;
  policy.jitter = 0.25;

  for (int attempt = 0; attempt < 10; ++attempt) {
    uint64_t a = RetryBackoffNanos(policy, 0x5eed, 42, attempt);
    uint64_t b = RetryBackoffNanos(policy, 0x5eed, 42, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;

    double base = 1'000'000.0;
    for (int i = 0; i < attempt; ++i) base *= 2.0;
    base = std::min(base, 64'000'000.0);
    EXPECT_GE(static_cast<double>(a), 0.75 * base - 1.0);
    EXPECT_LE(static_cast<double>(a), 1.25 * base + 1.0);
  }

  // Without jitter the schedule is the exact exponential curve.
  policy.jitter = 0.0;
  EXPECT_EQ(RetryBackoffNanos(policy, 1, 2, 0), 1'000'000u);
  EXPECT_EQ(RetryBackoffNanos(policy, 1, 2, 3), 8'000'000u);
  EXPECT_EQ(RetryBackoffNanos(policy, 1, 2, 9), 64'000'000u);

  // Jitter decorrelates invocations: distinct keys must not share one
  // schedule.
  policy.jitter = 0.25;
  bool any_difference = false;
  for (uint64_t key = 0; key < 8; ++key) {
    if (RetryBackoffNanos(policy, 0x5eed, key, 0) !=
        RetryBackoffNanos(policy, 0x5eed, key + 8, 0)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(EngineConfigTest, BuilderConfiguresEngineRetryAndGenerator) {
  EngineConfig config = EngineConfig()
                            .Threads(2)
                            .Seed(0xD5)
                            .MaxAttempts(4)
                            .Backoff(2'000'000, 3.0, 32'000'000)
                            .Jitter(0.5)
                            .DeadlineNanos(50'000'000)
                            .Breaker(3, 200'000'000)
                            .MaxCombinations(1024)
                            .FullCartesian(false);

  EXPECT_EQ(config.engine_options().threads, 2u);
  EXPECT_EQ(config.engine_options().seed, 0xD5u);
  EXPECT_EQ(config.retry_policy().max_attempts, 4);
  EXPECT_EQ(config.retry_policy().initial_backoff_ns, 2'000'000u);
  EXPECT_EQ(config.retry_policy().backoff_multiplier, 3.0);
  EXPECT_EQ(config.retry_policy().max_backoff_ns, 32'000'000u);
  EXPECT_EQ(config.retry_policy().jitter, 0.5);
  EXPECT_EQ(config.retry_policy().deadline_ns, 50'000'000u);
  EXPECT_EQ(config.retry_policy().breaker_threshold, 3);
  EXPECT_EQ(config.retry_policy().breaker_cooldown_ns, 200'000'000u);
  EXPECT_EQ(config.generator_options().max_combinations, 1024u);
  EXPECT_FALSE(config.generator_options().full_cartesian);
  EXPECT_TRUE(config.retry_policy().retries_enabled());
  EXPECT_TRUE(config.retry_policy().breaker_enabled());

  auto engine = config.BuildEngine();
  EXPECT_EQ(engine->threads(), 2u);
  EXPECT_EQ(engine->options().seed, 0xD5u);

  // A default config reproduces the fail-fast defaults.
  EngineConfig defaults;
  EXPECT_FALSE(defaults.retry_policy().retries_enabled());
  EXPECT_FALSE(defaults.retry_policy().breaker_enabled());
}

/// A module whose failure mode is toggled by the test: the controllable
/// backend the breaker tests drive through trip / half-open / recovery.
class ToggleModule : public Module {
 public:
  ToggleModule() : Module(MakeSpec()) {}

  std::atomic<bool> fail{true};

 protected:
  Result<std::vector<Value>> InvokeImpl(
      const std::vector<Value>& inputs) const override {
    if (fail.load(std::memory_order_relaxed)) {
      return Status::Permanent("backend gone");
    }
    return std::vector<Value>{inputs[0]};
  }

 private:
  static ModuleSpec MakeSpec() {
    ModuleSpec spec;
    spec.id = "test.toggle";
    spec.name = "Toggle";
    spec.inputs.push_back(Parameter{.name = "in"});
    spec.outputs.push_back(Parameter{.name = "out"});
    return spec;
  }
};

TEST(CircuitBreakerTest, TripsShortCircuitsAndRecoversThroughHalfOpen) {
  auto module = std::make_shared<ToggleModule>();
  auto engine = EngineConfig()
                    .Threads(1)
                    .MaxAttempts(1)
                    .Breaker(/*threshold=*/2, /*cooldown_ns=*/1'000)
                    .BuildEngine();
  const std::vector<Value> inputs{Value::Str("x")};
  const std::string& id = module->spec().id;

  // Two consecutive permanent failures trip the breaker.
  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsPermanent());
  EXPECT_EQ(engine->BreakerOf(id).stage, BreakerStage::kClosed);
  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsPermanent());
  BreakerView tripped = engine->BreakerOf(id);
  EXPECT_EQ(tripped.stage, BreakerStage::kOpen);
  EXPECT_EQ(tripped.trips, 1u);
  EXPECT_EQ(tripped.consecutive_permanent_failures, 2);

  // Open: invocations short-circuit with kDecayed, the module is not hit.
  auto denied = engine->Invoke(*module, inputs);
  EXPECT_TRUE(denied.status().IsDecayed()) << denied.status();
  EXPECT_NE(denied.status().message().find("circuit breaker"),
            std::string::npos);
  EXPECT_EQ(engine->metrics().Snapshot().breaker_short_circuits, 1u);
  EXPECT_EQ(engine->metrics().Snapshot().breaker_trips, 1u);

  // Cooldown elapses on the virtual clock: half-open admits a probe.
  engine->clock().Advance(1'000);
  EXPECT_EQ(engine->BreakerOf(id).stage, BreakerStage::kHalfOpen);

  // Failed probe re-arms the cooldown; the breaker is open again.
  EXPECT_TRUE(engine->Invoke(*module, inputs).status().IsPermanent());
  EXPECT_EQ(engine->BreakerOf(id).stage, BreakerStage::kOpen);

  // Next probe succeeds: the breaker closes and traffic flows again.
  engine->clock().Advance(1'000);
  EXPECT_EQ(engine->BreakerOf(id).stage, BreakerStage::kHalfOpen);
  module->fail.store(false, std::memory_order_relaxed);
  auto recovered = engine->Invoke(*module, inputs);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(engine->BreakerOf(id).stage, BreakerStage::kClosed);
  EXPECT_TRUE(engine->Invoke(*module, inputs).ok());
}

TEST(CircuitBreakerTest, BatchAdmissionIsAtomic) {
  auto module = std::make_shared<ToggleModule>();
  auto engine = EngineConfig()
                    .Threads(4)
                    .Breaker(/*threshold=*/1, /*cooldown_ns=*/1'000'000)
                    .BuildEngine();
  std::vector<std::vector<Value>> batch;
  for (int i = 0; i < 16; ++i) batch.push_back({Value::Str("x")});

  // First batch is admitted wholesale: every slot carries the module's own
  // failure, not a short-circuit, even though the fold trips the breaker.
  auto results = engine->InvokeBatch(*module, batch);
  for (const auto& result : results) {
    EXPECT_TRUE(result.status().IsPermanent()) << result.status();
  }
  EXPECT_EQ(engine->BreakerOf(module->spec().id).stage, BreakerStage::kOpen);

  // Second batch short-circuits wholesale.
  auto denied = engine->InvokeBatch(*module, batch);
  for (const auto& result : denied) {
    EXPECT_TRUE(result.status().IsDecayed()) << result.status();
  }
  EXPECT_EQ(engine->metrics().Snapshot().breaker_short_circuits,
            batch.size());
}

TEST(FaultInjectorTest, DrawsAreDeterministicPerInputAndAttempt) {
  auto module = std::make_shared<ToggleModule>();
  module->fail.store(false, std::memory_order_relaxed);
  FaultProfile profile;
  profile.seed = 77;
  profile.transient_rate = 0.5;
  FaultInjector injector(module, profile);

  const std::vector<Value> inputs{Value::Str("abc")};
  for (int attempt = 0; attempt < 8; ++attempt) {
    InvocationContext first;
    first.attempt = attempt;
    InvocationContext second;
    second.attempt = attempt;
    auto a = injector.Invoke(inputs, first);
    auto b = injector.Invoke(inputs, second);
    EXPECT_EQ(a.ok(), b.ok()) << "attempt " << attempt;
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      EXPECT_TRUE(a.status().IsRetryable());
    }
  }
  // At rate 0.5 over 8 attempts, both fates must occur (p ~ 2^-7 each).
  EXPECT_GT(injector.faults_injected(), 0u);
  EXPECT_LT(injector.faults_injected(), injector.invocations());
}

TEST(FaultInjectorTest, FlakyWarmupIsOutlastedByEnoughAttempts) {
  auto module = std::make_shared<ToggleModule>();
  module->fail.store(false, std::memory_order_relaxed);
  FaultProfile profile;
  profile.flaky_first_attempts = 2;
  const std::vector<Value> inputs{Value::Str("x")};

  auto patient_engine = EngineConfig().Threads(1).MaxAttempts(4).BuildEngine();
  auto patient = std::make_shared<FaultInjector>(module, profile);
  EXPECT_TRUE(patient_engine->Invoke(*patient, inputs).ok());
  EXPECT_GT(patient_engine->metrics().Snapshot().retries, 0u);

  auto hasty_engine = EngineConfig().Threads(1).MaxAttempts(2).BuildEngine();
  auto hasty = std::make_shared<FaultInjector>(module, profile);
  auto failed = hasty_engine->Invoke(*hasty, inputs);
  EXPECT_TRUE(failed.status().IsTransient()) << failed.status();
}

TEST(DeadlineBudgetTest, InjectedLatencyExhaustsTheBudget) {
  auto module = std::make_shared<ToggleModule>();
  module->fail.store(false, std::memory_order_relaxed);
  FaultProfile profile;
  profile.latency_ns = 10'000'000;  // 10 virtual ms per attempt.
  auto injector = std::make_shared<FaultInjector>(module, profile);

  auto engine =
      EngineConfig().Threads(1).DeadlineNanos(5'000'000).BuildEngine();
  const uint64_t clock_before = engine->clock().Now();
  auto result = engine->Invoke(*injector, {Value::Str("x")});
  EXPECT_TRUE(result.status().IsTimeout()) << result.status();
  EXPECT_EQ(engine->metrics().Snapshot().deadline_exhaustions, 1u);
  // The charged latency advanced the virtual clock, never the wall clock.
  EXPECT_EQ(engine->clock().Now() - clock_before, 10'000'000u);

  // A roomier budget admits the same invocation.
  auto roomy =
      EngineConfig().Threads(1).DeadlineNanos(20'000'000).BuildEngine();
  EXPECT_TRUE(roomy->Invoke(*injector, {Value::Str("x")}).ok());
}

/// Full-set equality including partition bookkeeping.
bool IdenticalSets(const DataExampleSet& a, const DataExampleSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
    if (a[i].input_partitions != b[i].input_partitions) return false;
  }
  return true;
}

TEST(FaultToleranceTest, RetriesRecoverAnnotationsUnderTransientFaults) {
  const auto& env = testing_env::GetEnvironment();

  FaultProfile profile;
  profile.seed = 0xFA17;
  profile.transient_rate = 0.2;

  // The acceptance bar: at a 20% per-attempt transient rate with 4
  // attempts, P(losing a combination) = 0.2^4 = 0.16%, so >= 95% of the
  // fault-free examples must survive — and the surviving set must be
  // byte-identical between threads=1 and threads=8.
  EngineConfig config = EngineConfig().Seed(0x5eed).MaxAttempts(4);
  auto serial_engine = config.Threads(1).BuildEngine();
  auto pooled_engine = config.Threads(8).BuildEngine();

  auto serial_wrapped = WrapRegistryWithFaults(*env.corpus.registry, profile,
                                               &serial_engine->metrics());
  ASSERT_TRUE(serial_wrapped.ok()) << serial_wrapped.status();
  auto pooled_wrapped = WrapRegistryWithFaults(*env.corpus.registry, profile,
                                               &pooled_engine->metrics());
  ASSERT_TRUE(pooled_wrapped.ok()) << pooled_wrapped.status();

  ExampleGenerator serial_generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), serial_engine.get());
  ExampleGenerator pooled_generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), pooled_engine.get());

  auto serial_report = AnnotateRegistry(serial_generator, **serial_wrapped);
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();
  ASSERT_TRUE(serial_report->complete()) << serial_report->run_status;
  auto pooled_report = AnnotateRegistry(pooled_generator, **pooled_wrapped);
  ASSERT_TRUE(pooled_report.ok()) << pooled_report.status();
  ASSERT_TRUE(pooled_report->complete()) << pooled_report->run_status;

  // Identical runs at any thread count, faults and all.
  EXPECT_EQ(serial_report->annotated, pooled_report->annotated);
  EXPECT_EQ(serial_report->decayed, pooled_report->decayed);
  EXPECT_EQ(serial_report->examples, pooled_report->examples);
  EXPECT_EQ(serial_report->transient_exhausted,
            pooled_report->transient_exhausted);
  EXPECT_EQ(serial_report->decayed_ids, pooled_report->decayed_ids);

  size_t baseline_examples = 0;
  size_t recovered_examples = 0;
  for (const ModulePtr& module : env.corpus.registry->AvailableModules()) {
    const std::string& id = module->spec().id;
    baseline_examples += env.corpus.registry->DataExamplesOf(id).size();
    recovered_examples += (*serial_wrapped)->DataExamplesOf(id).size();
    EXPECT_TRUE(IdenticalSets((*serial_wrapped)->DataExamplesOf(id),
                              (*pooled_wrapped)->DataExamplesOf(id)))
        << "module " << id << " diverged between threads=1 and threads=8";
  }
  ASSERT_GT(baseline_examples, 0u);
  EXPECT_LE(recovered_examples, baseline_examples);
  EXPECT_GE(static_cast<double>(recovered_examples),
            0.95 * static_cast<double>(baseline_examples))
      << recovered_examples << " of " << baseline_examples
      << " examples recovered";

  // The faults actually fired, and the retries actually happened.
  EXPECT_GT(serial_engine->metrics().Snapshot().injected_faults, 0u);
  EXPECT_GT(serial_engine->metrics().Snapshot().retries, 0u);
  EXPECT_EQ(serial_report->decayed, 0u);
}

/// Wraps every module of the environment registry in a pass-through
/// injector, with `down_id` wired to fail permanently.
std::unique_ptr<ModuleRegistry> WrapWithOneModuleDown(
    const ModuleRegistry& registry, const std::string& down_id) {
  auto wrapped = std::make_unique<ModuleRegistry>();
  for (const ModulePtr& module : registry.AllModules()) {
    FaultProfile profile;
    profile.down = module->spec().id == down_id;
    auto injector = std::make_shared<FaultInjector>(module, profile);
    if (!module->available()) injector->Retire();
    EXPECT_TRUE(wrapped->Register(std::move(injector)).ok());
  }
  return wrapped;
}

TEST(FaultToleranceTest, AnnotateRegistryReportsPartialResults) {
  const auto& env = testing_env::GetEnvironment();
  const std::string down_id = env.corpus.available_ids.front();
  auto wrapped = WrapWithOneModuleDown(*env.corpus.registry, down_id);

  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  auto report = AnnotateRegistry(generator, *wrapped);
  ASSERT_TRUE(report.ok()) << report.status();

  // The run survived the decayed module and annotated everything else.
  EXPECT_EQ(report->decayed, 1u);
  ASSERT_EQ(report->decayed_ids.size(), 1u);
  EXPECT_EQ(report->decayed_ids.front(), down_id);
  EXPECT_EQ(report->annotated + report->decayed,
            wrapped->AvailableModules().size());
  EXPECT_GT(report->examples, 0u);
  EXPECT_TRUE(wrapped->DataExamplesOf(down_id).empty());
}

TEST(FaultToleranceTest, EnactResilientSkipsDecayedSteps) {
  const auto& env = testing_env::GetEnvironment();

  // Pick a module that actually appears in a workflow and is still
  // available, then take it down.
  std::string down_id;
  const GeneratedWorkflow* victim = nullptr;
  for (const GeneratedWorkflow& item : env.workflows.items) {
    for (const Processor& processor : item.workflow.processors) {
      ModulePtr module = *env.corpus.registry->Find(processor.module_id);
      if (module->available()) {
        down_id = processor.module_id;
        victim = &item;
        break;
      }
    }
    if (victim != nullptr) break;
  }
  ASSERT_NE(victim, nullptr);

  auto wrapped = WrapWithOneModuleDown(*env.corpus.registry, down_id);
  InvocationEngine engine(EngineOptions{.threads = 1});

  // The strict enactor fails on the decayed step...
  auto strict = Enact(victim->workflow, *wrapped, victim->seeds, engine);
  EXPECT_TRUE(strict.status().IsPermanent()) << strict.status();

  // ...the resilient one degrades: the decayed step (and its dependents)
  // are skipped, everything else runs, and the module is reported.
  auto resilient =
      EnactResilient(victim->workflow, *wrapped, victim->seeds, engine);
  ASSERT_TRUE(resilient.ok()) << resilient.status();
  EXPECT_FALSE(resilient->complete());
  ASSERT_EQ(resilient->decayed_modules.size(), 1u);
  EXPECT_EQ(resilient->decayed_modules.front(), down_id);
  EXPECT_FALSE(resilient->skipped_processors.empty());
  EXPECT_EQ(resilient->outputs.size(), victim->workflow.outputs.size());
  for (const InvocationRecord& record : resilient->invocations) {
    EXPECT_NE(record.module_id, down_id);
  }
}

TEST(FaultToleranceTest, EnactResilientMatchesEnactOnHealthyWorkflows) {
  const auto& env = testing_env::GetEnvironment();
  InvocationEngine engine(EngineOptions{.threads = 1});

  size_t compared = 0;
  for (const GeneratedWorkflow& item : env.workflows.items) {
    if (!UnavailableModules(item.workflow, *env.corpus.registry).empty()) {
      continue;
    }
    auto strict = Enact(item.workflow, *env.corpus.registry, item.seeds,
                        engine);
    ASSERT_TRUE(strict.ok()) << strict.status();
    auto resilient = EnactResilient(item.workflow, *env.corpus.registry,
                                    item.seeds, engine);
    ASSERT_TRUE(resilient.ok()) << resilient.status();
    EXPECT_TRUE(resilient->complete());
    EXPECT_EQ(resilient->missing_outputs, 0u);
    ASSERT_EQ(resilient->outputs.size(), strict->outputs.size());
    for (size_t i = 0; i < strict->outputs.size(); ++i) {
      EXPECT_TRUE(resilient->outputs[i].Equals(strict->outputs[i]));
    }
    EXPECT_EQ(resilient->invocations.size(), strict->invocations.size());
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST(FaultToleranceTest, ScanForDecayRetiresDynamicallyDecayedModules) {
  const auto& env = testing_env::GetEnvironment();

  // Take down one module that appears in the workflow corpus.
  std::string down_id;
  for (const GeneratedWorkflow& item : env.workflows.items) {
    for (const Processor& processor : item.workflow.processors) {
      ModulePtr module = *env.corpus.registry->Find(processor.module_id);
      if (module->available()) {
        down_id = processor.module_id;
        break;
      }
    }
    if (!down_id.empty()) break;
  }
  ASSERT_FALSE(down_id.empty());

  auto wrapped = WrapWithOneModuleDown(*env.corpus.registry, down_id);
  InvocationEngine engine(EngineOptions{.threads = 1});
  ASSERT_TRUE((*wrapped->Find(down_id))->available());

  auto report =
      ScanForDecay(*wrapped, env.workflows, engine, wrapped.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->workflows_enacted, env.workflows.items.size());
  EXPECT_GT(report->workflows_degraded, 0u);

  // The scan saw the down module and retired it in place.
  bool found = false;
  for (const std::string& id : report->decayed_ids) {
    if (id == down_id) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GE(report->newly_retired, 1u);
  EXPECT_FALSE((*wrapped->Find(down_id))->available());

  // A second scan finds it already retired: decay is reported (the probes
  // still fail) but nothing new is retired.
  auto again = ScanForDecay(*wrapped, env.workflows, engine, wrapped.get());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->newly_retired, 0u);
}

}  // namespace
}  // namespace dexa
