// Dedicated suite for the instance classifier: the component that decides
// which partition of a declared concept a raw value instantiates (output
// coverage, pool harvesting, annotation verification all depend on it).

#include <gtest/gtest.h>

#include "core/instance_classifier.h"
#include "corpus/behaviors.h"
#include "kb/render.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest()
      : env_(GetEnvironment()), classifier_(env_.corpus.ontology.get()) {}

  ConceptId C(const char* name) { return env_.corpus.ontology->Find(name); }

  std::string Classified(const Value& value, const char* declared) {
    ConceptId c = classifier_.Classify(value, C(declared));
    return c == kInvalidConcept ? "<none>" : env_.corpus.ontology->NameOf(c);
  }

  const testing_env::Environment& env_;
  InstanceClassifier classifier_;
};

TEST_F(ClassifierTest, EveryAccessionNamespaceUnderAccession) {
  const KnowledgeBase& kb = *env_.corpus.kb;
  EXPECT_EQ(Classified(Value::Str(kb.proteins()[0].accession), "Accession"),
            "UniprotAccession");
  EXPECT_EQ(
      Classified(Value::Str(kb.proteins()[0].pdb_accession), "Accession"),
      "PDBAccession");
  EXPECT_EQ(
      Classified(Value::Str(kb.proteins()[0].embl_accession), "Accession"),
      "EMBLAccession");
  EXPECT_EQ(Classified(Value::Str(kb.genes()[0].gene_id), "Accession"),
            "KEGGGeneId");
  EXPECT_EQ(Classified(Value::Str(kb.enzymes()[0].ec_number), "Accession"),
            "EnzymeId");
  EXPECT_EQ(Classified(Value::Str(kb.glycans()[0].glycan_id), "Accession"),
            "GlycanId");
  EXPECT_EQ(Classified(Value::Str(kb.ligands()[0].ligand_id), "Accession"),
            "LigandId");
  EXPECT_EQ(Classified(Value::Str(kb.compounds()[0].compound_id), "Accession"),
            "CompoundId");
  EXPECT_EQ(Classified(Value::Str(kb.pathways()[0].pathway_id), "Accession"),
            "PathwayId");
  EXPECT_EQ(Classified(Value::Str(kb.go_terms()[0].go_id), "Accession"),
            "GOTermId");
}

TEST_F(ClassifierTest, EveryRecordFormatUnderRecord) {
  const KnowledgeBase& kb = *env_.corpus.kb;
  struct Row {
    RecordKind kind;
    std::string accession;
  };
  std::vector<Row> rows = {
      {RecordKind::kUniprot, kb.proteins()[0].accession},
      {RecordKind::kFasta, kb.proteins()[0].accession},
      {RecordKind::kEmbl, kb.proteins()[0].embl_accession},
      {RecordKind::kGenBank, kb.proteins()[0].embl_accession},
      {RecordKind::kPdb, kb.proteins()[0].pdb_accession},
      {RecordKind::kKeggGene, kb.genes()[0].gene_id},
      {RecordKind::kEnzyme, kb.enzymes()[0].ec_number},
      {RecordKind::kGlycan, kb.glycans()[0].glycan_id},
      {RecordKind::kLigand, kb.ligands()[0].ligand_id},
      {RecordKind::kCompound, kb.compounds()[0].compound_id},
      {RecordKind::kPathway, kb.pathways()[0].pathway_id},
      {RecordKind::kGo, kb.go_terms()[0].go_id},
      {RecordKind::kInterPro, kb.proteins()[0].accession},
      {RecordKind::kPfam, kb.proteins()[0].accession},
      {RecordKind::kDisease, kb.genes()[0].gene_id},
  };
  for (const Row& row : rows) {
    auto record = RetrieveRecord(kb, row.kind, row.accession);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(Classified(Value::Str(*record), "Record"),
              RecordKindConcept(row.kind));
  }
}

TEST_F(ClassifierTest, SequencesUnderBiologicalSequence) {
  EXPECT_EQ(Classified(Value::Str("ACGTACGT"), "BiologicalSequence"),
            "DNASequence");
  EXPECT_EQ(Classified(Value::Str("ACGUACGU"), "BiologicalSequence"),
            "RNASequence");
  EXPECT_EQ(Classified(Value::Str("MKWYHQ"), "BiologicalSequence"),
            "ProteinSequence");
  EXPECT_EQ(Classified(Value::Str(""), "BiologicalSequence"), "<none>");
  EXPECT_EQ(Classified(Value::Str("not a sequence!"), "BiologicalSequence"),
            "<none>");
}

TEST_F(ClassifierTest, TermsAndParameters) {
  EXPECT_EQ(Classified(Value::Str("GO:0001000 ! protein folding"),
                       "OntologyTerm"),
            "GOTerm");
  EXPECT_EQ(Classified(Value::Str("HP:0001250 ! recurrent seizures"),
                       "OntologyTerm"),
            "PhenotypeTerm");
  EXPECT_EQ(Classified(Value::Str("blastp"), "AlgorithmName"),
            "AlgorithmName");
  EXPECT_EQ(Classified(Value::Str("uniprot"), "DatabaseName"),
            "DatabaseName");
  EXPECT_EQ(Classified(Value::Real(5.0), "ErrorTolerance"), "ErrorTolerance");
  EXPECT_EQ(Classified(Value::Int(42), "Count"), "Count");
}

TEST_F(ClassifierTest, ListShapedLeafAndHomogeneousLists) {
  Value masses = Value::ListOf({Value::Real(1000.5), Value::Real(1100.25)});
  EXPECT_EQ(Classified(masses, "PeptideMassList"), "PeptideMassList");
  Value accessions = Value::ListOf(
      {Value::Str("P00001"), Value::Str("P00002")});
  EXPECT_EQ(Classified(accessions, "Accession"), "UniprotAccession");
  // Mixed lists classify as nothing (callers fall back to per-element).
  Value mixed = Value::ListOf({Value::Str("P00001"), Value::Str("G00100")});
  EXPECT_EQ(Classified(mixed, "Accession"), "<none>");
  EXPECT_EQ(Classified(Value::ListOf({}), "Accession"), "<none>");
}

TEST_F(ClassifierTest, NullAndInvalidDeclared) {
  EXPECT_EQ(classifier_.Classify(Value::Null(), C("Accession")),
            kInvalidConcept);
  EXPECT_EQ(classifier_.Classify(Value::Str("x"), kInvalidConcept),
            kInvalidConcept);
}

TEST_F(ClassifierTest, DeclaredLeafActsAsFallback) {
  // TextDocument is realizable: any free text lands on it.
  EXPECT_EQ(Classified(Value::Str("some free text here"), "TextDocument"),
            "TextDocument");
  // But structured grammars do not read as free text.
  EXPECT_EQ(Classified(Value::Str("P00001"), "TextDocument"), "<none>");
}

TEST_F(ClassifierTest, MatchesIsLeafMembership) {
  EXPECT_TRUE(classifier_.Matches(Value::Str("P00001"), C("UniprotAccession")));
  EXPECT_FALSE(classifier_.Matches(Value::Str("P00001"), C("PDBAccession")));
  EXPECT_FALSE(classifier_.Matches(Value::Null(), C("UniprotAccession")));
  EXPECT_TRUE(classifier_.Matches(
      Value::ListOf({Value::Str("P00001"), Value::Str("P00002")}),
      C("UniprotAccession")));
  EXPECT_FALSE(classifier_.Matches(
      Value::ListOf({Value::Str("P00001"), Value::Str("G00100")}),
      C("UniprotAccession")));
}

}  // namespace
}  // namespace dexa
