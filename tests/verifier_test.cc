// Tests of the output-annotation verifier (ontology-based partitioning as
// annotation evidence, cf. the paper's reference [3]).

#include <gtest/gtest.h>

#include "core/annotation_verifier.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : env_(GetEnvironment()), verifier_(env_.corpus.ontology.get()) {}

  std::vector<OutputAnnotationReport> ReportsFor(const std::string& name) {
    ModulePtr module = *env_.corpus.registry->FindByName(name);
    return verifier_.VerifyOutputs(
        module->spec(),
        env_.corpus.registry->DataExamplesOf(module->spec().id));
  }

  const testing_env::Environment& env_;
  AnnotationVerifier verifier_;
};

TEST_F(VerifierTest, ConfirmsLeafAnnotations) {
  auto reports = ReportsFor("EBI_GetUniprotRecord");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kConfirmed);
  ASSERT_EQ(reports[0].observed_partitions.size(), 1u);
  EXPECT_EQ(env_.corpus.ontology->NameOf(reports[0].observed_partitions[0]),
            "UniprotRecord");
}

TEST_F(VerifierTest, FlagsOverGeneralAnnotations) {
  // GetBiologicalSequence only ever emits protein and DNA sequences; the
  // BiologicalSequence annotation is broader than the behavior.
  auto reports = ReportsFor("EBI_GetBiologicalSequence");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kOverGeneral);
  EXPECT_EQ(reports[0].observed_partitions.size(), 2u);
  // The suggested refinement is the LCS of {ProteinSequence, DNASequence}.
  EXPECT_EQ(env_.corpus.ontology->NameOf(reports[0].suggested),
            "BiologicalSequence");
}

TEST_F(VerifierTest, SuggestsTightRefinementForSingleNamespace) {
  // get_genes_by_enzyme is annotated with the coarse Accession concept but
  // only ever returns KEGG gene ids: the verifier pins it down.
  auto reports = ReportsFor("get_genes_by_enzyme");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kOverGeneral);
  ASSERT_EQ(reports[0].observed_partitions.size(), 1u);
  EXPECT_EQ(env_.corpus.ontology->NameOf(reports[0].suggested), "KEGGGeneId");
}

TEST_F(VerifierTest, ConfirmedForFullyWitnessedCoarseAnnotation) {
  // NormalizeAccession echoes all ten accession namespaces: its coarse
  // Accession annotation is genuinely exercised in full.
  auto reports = ReportsFor("NormalizeAccession");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kConfirmed);
  EXPECT_EQ(reports[0].observed_partitions.size(), 10u);
}

TEST_F(VerifierTest, UnobservedWithoutExamples) {
  ModulePtr module = *env_.corpus.registry->FindByName("EBI_GetUniprotRecord");
  auto reports = verifier_.VerifyOutputs(module->spec(), {});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kUnobserved);
}

TEST_F(VerifierTest, DetectsViolatedAnnotations) {
  // Forge an example whose output is not an accession at all.
  ModulePtr module = *env_.corpus.registry->FindByName("NormalizeAccession");
  DataExample forged;
  forged.inputs = {Value::Str("P00000")};
  forged.outputs = {Value::Str("this is not an accession")};
  forged.input_partitions = {kInvalidConcept};
  auto reports = verifier_.VerifyOutputs(module->spec(), {forged});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, AnnotationVerdict::kViolated);
}

TEST_F(VerifierTest, CorpusWideVerdictCensus) {
  // The 19 output-coverage exceptions show up as over-general output
  // annotations. The verifier is stricter than the coverage metric and
  // additionally catches a real annotation *violation* the coverage metric
  // silently ignores: the 7 record-id extractors emit InterPro/Pfam/Disease
  // identifiers that instantiate no partition of the declared Accession
  // concept at all.
  size_t confirmed = 0, over_general = 0, violated = 0, unobserved = 0;
  size_t modules_not_confirmed = 0;
  for (const std::string& id : env_.corpus.available_ids) {
    ModulePtr module = *env_.corpus.registry->Find(id);
    auto reports = verifier_.VerifyOutputs(
        module->spec(), env_.corpus.registry->DataExamplesOf(id));
    bool all_confirmed = true;
    for (const OutputAnnotationReport& report : reports) {
      switch (report.verdict) {
        case AnnotationVerdict::kConfirmed:
          ++confirmed;
          break;
        case AnnotationVerdict::kOverGeneral:
          ++over_general;
          all_confirmed = false;
          break;
        case AnnotationVerdict::kViolated:
          ++violated;
          all_confirmed = false;
          break;
        case AnnotationVerdict::kUnobserved:
          ++unobserved;
          all_confirmed = false;
          break;
      }
    }
    if (!all_confirmed) ++modules_not_confirmed;
  }
  EXPECT_EQ(violated, 7u);  // The ExtractPrimaryId family.
  EXPECT_EQ(unobserved, 0u);
  EXPECT_EQ(over_general, 19u);  // The Section 4.3 exceptions.
  EXPECT_EQ(modules_not_confirmed, 26u);
  EXPECT_EQ(confirmed + over_general + violated, 252u);
}

TEST_F(VerifierTest, VerdictNames) {
  EXPECT_STREQ(AnnotationVerdictName(AnnotationVerdict::kConfirmed),
               "confirmed");
  EXPECT_STREQ(AnnotationVerdictName(AnnotationVerdict::kOverGeneral),
               "over-general");
  EXPECT_STREQ(AnnotationVerdictName(AnnotationVerdict::kViolated),
               "violated");
  EXPECT_STREQ(AnnotationVerdictName(AnnotationVerdict::kUnobserved),
               "unobserved");
}

}  // namespace
}  // namespace dexa
