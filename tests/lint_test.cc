// dexa-lint rule-by-rule coverage: every rule family must fire on a
// violating fixture and stay silent on a conforming one, suppression
// comments must work, and — the point of the exercise — the live tree
// must lint clean.

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/index.h"
#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"
#include "tools/lint/rules.h"
#include "tools/lint/sarif.h"

namespace dexa::lint {
namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

LintReport Lint(const Sources& sources) {
  Linter linter;
  for (const auto& [path, text] : sources) linter.AddSource(path, text);
  return linter.Run();
}

/// Rule names present in `report`, for order-insensitive assertions.
std::set<std::string> RuleSet(const LintReport& report) {
  std::set<std::string> rules;
  for (const Finding& f : report.findings) rules.insert(f.rule);
  return rules;
}

std::string Describe(const LintReport& report) {
  std::string out;
  for (const Finding& f : report.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokensCommentsStringsAndIncludes) {
  LexedSource lex = LexSource(
      "#include \"common/status.h\"\n"
      "#include <vector>\n"
      "// std::thread in a comment is not a token\n"
      "const char* s = \"std::thread\";  /* nor in a string */\n"
      "int x = 42;\n");
  ASSERT_EQ(lex.includes.size(), 2u);
  EXPECT_EQ(lex.includes[0].path, "common/status.h");
  EXPECT_FALSE(lex.includes[0].angled);
  EXPECT_EQ(lex.includes[1].path, "vector");
  EXPECT_TRUE(lex.includes[1].angled);
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "thread") << "leaked from comment/string";
  }
}

TEST(LexerTest, RawStringsSwallowBannedTokens) {
  LexedSource lex = LexSource(
      "auto fixture = R\"cpp(\n"
      "  std::random_device rd;  // not code\n"
      ")cpp\";\n"
      "int after = 1;\n");
  bool saw_after = false;
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "random_device");
    saw_after |= t.text == "after";
  }
  EXPECT_TRUE(saw_after) << "lexing must resume after the raw string";
}

TEST(LexerTest, SuppressionComments) {
  LexedSource lex = LexSource(
      "// dexa-lint: allow(wall-clock, entropy)\n"
      "int x;\n"
      "/* dexa-lint: allow-file(layering) */\n");
  ASSERT_TRUE(lex.line_suppressions.count(1));
  EXPECT_TRUE(lex.line_suppressions[1].count("wall-clock"));
  EXPECT_TRUE(lex.line_suppressions[1].count("entropy"));
  EXPECT_TRUE(lex.file_suppressions.count("layering"));
}

TEST(LexerTest, LineNumbersSurviveMultilineConstructs) {
  LexedSource lex = LexSource("/* one\ntwo\nthree */\nint marker;\n");
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[0].line, 4);
}

TEST(LexerTest, BackslashContinuationsKeepMacroBodiesOutOfTheStream) {
  // A continued #define spans three physical lines; none of its body may
  // leak into the token stream (macro bodies are not call sites), and the
  // line counter must still account for the swallowed newlines.
  LexedSource lex = LexSource(
      "#define SPAWN(body) \\\n"
      "  std::thread t(body); \\\n"
      "  t.detach()\n"
      "int after = 1;\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "thread") << "macro body leaked into the token stream";
    EXPECT_NE(t.text, "detach") << "macro body leaked into the token stream";
  }
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[0].line, 4);
}

TEST(LexerTest, IncludeOfMacroExpansionIsSkippedNotMangled) {
  // `#include MACRO` has no literal path: the directive must be consumed
  // without recording a bogus include and without tokenizing the macro name.
  LexedSource lex = LexSource(
      "#define KB_HEADER \"kb/entities.h\"\n"
      "#include KB_HEADER\n"
      "#include <vector>\n"
      "int after;\n");
  ASSERT_EQ(lex.includes.size(), 1u);
  EXPECT_EQ(lex.includes[0].path, "vector");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "KB_HEADER");
  }
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].text, "int");
}

// ---------------------------------------------------------------------------
// Symbol index (tools/lint/index.h)
// ---------------------------------------------------------------------------

TEST(IndexerTest, OutOfLineMemberDefinitionSplitAcrossLines) {
  // The declarator chain of an out-of-line member may be broken across
  // physical lines; the indexer works on tokens, so the qualified name and
  // the body's call edges must come out intact.
  LexedSource lex = LexSource(
      "Status\n"
      "RunJournal::\n"
      "    Seal(int epoch,\n"
      "         bool flush) {\n"
      "  Append(epoch);\n"
      "  return Finish(flush);\n"
      "}\n");
  FileIndex index = BuildFileIndex("src/durability/j.cc", "durability", lex);
  ASSERT_EQ(index.functions.size(), 1u);
  EXPECT_EQ(index.functions[0].name, "RunJournal::Seal");
  std::set<std::string> calls;
  for (const CallSite& c : index.functions[0].calls) calls.insert(c.name);
  EXPECT_TRUE(calls.count("Append"));
  EXPECT_TRUE(calls.count("Finish"));
}

TEST(IndexerTest, RecordsTaintSourcesPerFunction) {
  LexedSource lex = LexSource(
      "uint64_t Now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n"
      "int Roll() { std::random_device rd; return rd(); }\n"
      "int Pure(int x) { return x + 1; }\n");
  FileIndex index = BuildFileIndex("src/formats/x.cc", "formats", lex);
  ASSERT_EQ(index.functions.size(), 3u);
  ASSERT_EQ(index.functions[0].sources.size(), 1u);
  EXPECT_EQ(index.functions[0].sources[0].kind, "wall-clock");
  EXPECT_EQ(index.functions[0].sources[0].what, "steady_clock");
  ASSERT_EQ(index.functions[1].sources.size(), 1u);
  EXPECT_EQ(index.functions[1].sources[0].kind, "entropy");
  EXPECT_TRUE(index.functions[2].sources.empty());
}

// ---------------------------------------------------------------------------
// Family 1: determinism (wall-clock, entropy)
// ---------------------------------------------------------------------------

TEST(WallClockRuleTest, FiresOnChronoClocksInDeterministicLayers) {
  LintReport report = Lint(
      {{"src/core/x.cc",
        "#include <chrono>\n"
        "void F() { auto t = std::chrono::system_clock::now(); }\n"},
       {"src/durability/y.cc", "void G() { time_t t = time(nullptr); }\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_TRUE(RuleSet(report).count("wall-clock"));
}

TEST(WallClockRuleTest, SilentOutsideDeterministicLayersAndOnVirtualClock) {
  LintReport report = Lint(
      {{"bench/b.cc",
        "void F() { auto t = std::chrono::steady_clock::now(); }\n"},
       {"src/core/ok.cc",
        "#include \"engine/virtual_clock.h\"\n"
        "void G(VirtualClock& clock) { auto t = clock.NowNanos(); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(WallClockRuleTest, DeclarationOfVariableNamedTimeIsNotACall) {
  LintReport report =
      Lint({{"src/engine/ok.cc", "void F() { VirtualTime time(0); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(EntropyRuleTest, FiresOnAmbientEntropyInDeterministicLayers) {
  LintReport report = Lint(
      {{"src/engine/x.cc", "void F() { std::random_device rd; }\n"},
       {"src/core/y.cc", "int G() { return rand(); }\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"entropy"});
}

TEST(EntropyRuleTest, SilentOnSeededRngAndOutsideScope) {
  LintReport report = Lint(
      {{"src/core/ok.cc",
        "#include \"common/rng.h\"\n"
        "void F(Rng& rng) { auto v = rng.NextBelow(10); }\n"},
       {"tests/t.cc", "void G() { std::random_device rd; }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Family 2: unchecked errors
// ---------------------------------------------------------------------------

TEST(UncheckedStatusRuleTest, FiresOnDiscardedStatusCall) {
  LintReport report = Lint(
      {{"src/durability/j.h", "Status Append(int x);\n"},
       {"src/durability/j.cc", "void F() { Append(1); }\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  EXPECT_EQ(report.findings[0].rule, "unchecked-status");
  EXPECT_EQ(report.findings[0].file, "src/durability/j.cc");
}

TEST(UncheckedStatusRuleTest, FiresOnDiscardedMemberChainCall) {
  LintReport report = Lint(
      {{"src/durability/j.h",
        "class RunJournal { public: Status Seal(); };\n"},
       {"src/durability/j.cc", "void F(RunJournal& j) { j.Seal(); }\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  EXPECT_EQ(report.findings[0].rule, "unchecked-status");
}

TEST(UncheckedStatusRuleTest, SilentWhenResultIsConsumed) {
  LintReport report = Lint(
      {{"src/durability/j.h",
        "Status Append(int x);\nResult<int> Parse(int y);\n"},
       {"src/durability/j.cc",
        "Status G() {\n"
        "  Status s = Append(1);\n"
        "  if (!s.ok()) return s;\n"
        "  auto r = Parse(2);\n"
        "  (void)Append(3);  // explicit discard is fine\n"
        "  return Append(4);\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(UncheckedStatusRuleTest, AmbiguousNamesArePruned) {
  // `Reset` is declared both Status- and void-returning: name-based lookup
  // would be a coin flip, so the rule must not fire.
  LintReport report = Lint(
      {{"src/core/a.h", "Status Reset();\n"},
       {"src/engine/b.h", "void Reset();\n"},
       {"src/core/a.cc", "void F() { Reset(); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Family 3: concurrency discipline
// ---------------------------------------------------------------------------

TEST(RawThreadRuleTest, FiresOutsideEngine) {
  LintReport report = Lint(
      {{"src/core/x.cc", "void F() { std::thread t([] {}); t.detach(); }\n"},
       {"tests/t.cc", "auto f = std::async([] { return 1; });\n"}});
  EXPECT_EQ(report.findings.size(), 3u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"raw-thread"});
}

TEST(RawThreadRuleTest, EngineAndQueriesAreExempt) {
  LintReport report = Lint(
      {{"src/engine/pool.cc", "void F() { std::jthread t([] {}); }\n"},
       {"bench/b.cc",
        "size_t N() { return std::thread::hardware_concurrency(); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(NakedLockRuleTest, FiresOnManualLockAndUnlock) {
  LintReport report = Lint(
      {{"src/pool/p.cc",
        "void F(std::mutex& mu) { mu.lock(); work(); mu.unlock(); }\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"naked-lock"});
}

TEST(NakedLockRuleTest, RaiiGuardsAreSilent) {
  LintReport report = Lint(
      {{"src/pool/p.cc",
        "void F(std::mutex& mu) {\n"
        "  std::lock_guard<std::mutex> lock(mu);\n"
        "  std::unique_lock<std::mutex> lk(mu, std::try_to_lock);\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Family 4: layering
// ---------------------------------------------------------------------------

TEST(LayeringRuleTest, FiresOnUpwardInclude) {
  LintReport report = Lint(
      {{"src/types/v.cc", "#include \"engine/metrics.h\"\n"},
       {"src/modules/m.h", "#include \"corpus/corpus.h\"\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"layering"});
}

TEST(LayeringRuleTest, DownwardAndSameLayerIncludesAreSilent) {
  LintReport report = Lint(
      {{"src/kb/k.cc",
        "#include \"formats/sequence_record.h\"\n"
        "#include \"kb/entities.h\"\n"
        "#include \"common/status.h\"\n"
        "#include <vector>\n"},
       {"tests/t.cc", "#include \"engine/metrics.h\"\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(LayeringRuleTest, ObsSlotsBelowItsConsumersOnly) {
  // Consumers of obs (core, workflow, durability) may include it; obs may
  // reach down to engine but never back up into its consumers, and engine
  // itself must stay obs-free (the engine seam is EngineMetrics, not spans).
  LintReport silent = Lint(
      {{"src/core/a.cc", "#include \"obs/trace.h\"\n"},
       {"src/workflow/b.cc", "#include \"obs/trace.h\"\n"},
       {"src/durability/c.cc", "#include \"obs/metrics_registry.h\"\n"},
       {"src/obs/trace.cc",
        "#include \"engine/metrics.h\"\n"
        "#include \"common/status.h\"\n"}});
  EXPECT_TRUE(silent.findings.empty()) << Describe(silent);

  LintReport fires = Lint(
      {{"src/obs/trace.cc", "#include \"core/example_generator.h\"\n"},
       {"src/engine/invocation_engine.cc", "#include \"obs/trace.h\"\n"}});
  EXPECT_EQ(fires.findings.size(), 2u) << Describe(fires);
  EXPECT_EQ(RuleSet(fires), std::set<std::string>{"layering"});
}

TEST(LayeringRuleTest, NormativeDagIsAcyclic) {
  const auto& deps = LayerDependencies();
  // Every declared dependency must itself be a declared layer, and the
  // transitive closure must never reach back to the starting layer.
  for (const auto& [layer, allowed] : deps) {
    std::vector<std::string> frontier(allowed.begin(), allowed.end());
    std::set<std::string> seen;
    while (!frontier.empty()) {
      std::string next = frontier.back();
      frontier.pop_back();
      if (!seen.insert(next).second) continue;
      ASSERT_TRUE(deps.count(next)) << next << " is not a declared layer";
      EXPECT_NE(next, layer) << "cycle through " << layer;
      const auto& down = deps.at(next);
      frontier.insert(frontier.end(), down.begin(), down.end());
    }
  }
}

// ---------------------------------------------------------------------------
// Family 5: ordered-output hygiene
// ---------------------------------------------------------------------------

TEST(UnorderedIterationRuleTest, FiresInSerializationPaths) {
  LintReport report = Lint(
      {{"src/durability/codec.cc",
        "void Emit(const std::unordered_map<int, int>& index) {\n"
        "  for (const auto& [k, v] : index) { Write(k, v); }\n"
        "}\n"},
       {"src/modules/registry_io.cc",
        "void F() {\n"
        "  std::unordered_set<int> ids;\n"
        "  for (int id : ids) { Write(id); }\n"
        "}\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"unordered-iteration"});
}

TEST(UnorderedIterationRuleTest, OrderedContainersAndOtherLayersAreSilent) {
  LintReport report = Lint(
      {{"src/durability/codec.cc",
        "void Emit(const std::map<int, int>& index) {\n"
        "  for (const auto& [k, v] : index) { Write(k, v); }\n"
        "}\n"},
       {"src/core/scratch.cc",
        "void G(const std::unordered_map<int, int>& m) {\n"
        "  for (const auto& [k, v] : m) { Count(k, v); }\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Family 6: observability (span hygiene)
// ---------------------------------------------------------------------------

TEST(ManualSpanRuleTest, FiresOnManualBeginEndPairsInInstrumentedLayers) {
  // A manual Begin/End pair leaks the span on the early return between them.
  LintReport report = Lint(
      {{"src/core/x.cc",
        "Status F(obs::Tracer* tracer) {\n"
        "  uint64_t id = tracer->BeginSpan(obs::SpanKind::kPhase, \"g\", 0);\n"
        "  if (Step().ok()) return Status::Cancelled(\"leaks the span\");\n"
        "  tracer->EndSpan(id);\n"
        "  return Status::OK();\n"
        "}\n"}});
  EXPECT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"manual-span"});
}

TEST(ManualSpanRuleTest, ObsLayerAndTestsAreExempt) {
  // obs implements the RAII guard on top of the raw pair; tests drive the
  // Tracer API directly to pin its semantics.
  LintReport report = Lint(
      {{"src/obs/trace.cc",
        "uint64_t Tracer::BeginSpan(SpanKind k, const std::string& n,\n"
        "                           uint64_t parent) { return Open(k, n); }\n"},
       {"tests/obs_test.cc",
        "void T(obs::Tracer& tracer) {\n"
        "  uint64_t id = tracer.BeginSpan(obs::SpanKind::kRun, \"r\", 0);\n"
        "  tracer.EndSpan(id);\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(UnnamedSpanRuleTest, FiresOnImmediateTemporary) {
  // An unnamed guard destructs at the end of the full expression: the span
  // closes on the tick it opened and covers nothing.
  LintReport report = Lint(
      {{"src/workflow/w.cc",
        "void F(obs::Tracer* tracer) {\n"
        "  obs::ScopedSpan(tracer, obs::SpanKind::kPhase, \"enact\", 0);\n"
        "  Work();\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  EXPECT_EQ(report.findings[0].rule, "unnamed-span");
  EXPECT_EQ(report.findings[0].line, 2);
}

TEST(UnnamedSpanRuleTest, NamedGuardsAndObsDeclarationsAreSilent) {
  LintReport report = Lint(
      {{"src/core/g.cc",
        "void F(obs::Tracer* tracer) {\n"
        "  obs::ScopedSpan phase(tracer, obs::SpanKind::kPhase, \"x\", 0);\n"
        "  Work(phase.id());\n"
        "}\n"},
       {"src/obs/trace.h",
        "class ScopedSpan {\n"
        " public:\n"
        "  ScopedSpan(Tracer* tracer, SpanKind kind, std::string name);\n"
        "  ScopedSpan(const ScopedSpan&) = delete;\n"
        "};\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(StringKeyedLookupRuleTest, FiresOnNameOfAndOntologyFindInHotLayers) {
  LintReport report = Lint(
      {{"src/core/a.cc",
        "void F(const Ontology& ontology, ConceptId c) {\n"
        "  std::string name = ontology.NameOf(c);\n"
        "  ConceptId d = ontology.Find(\"ProteinSequence\");\n"
        "}\n"},
       {"src/workflow/b.cc",
        "void G(const Ontology* ontology) {\n"
        "  auto id = ontology->Require(\"GOTerm\");\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 3u) << Describe(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "string-keyed-lookup");
  }
}

TEST(StringKeyedLookupRuleTest, OntologyLayerIoFilesAndOtherReceiversSilent) {
  LintReport report = Lint(
      {// The ontology layer owns the string APIs.
       {"src/ontology/ontology.cc",
        "const std::string& Ontology::NameOf(ConceptId c) const;\n"},
       // Serialization boundaries are exempt wholesale: names ARE the
       // wire format there.
       {"src/workflow/workflow_io.cc",
        "void W(const Ontology& ontology, ConceptId c) {\n"
        "  Emit(ontology.NameOf(c));\n"
        "}\n"},
       // Find on a non-ontology receiver (registry, JSON) is fine.
       {"src/core/c.cc",
        "void H(const ModuleRegistry& registry) {\n"
        "  auto m = registry.Find(\"EBI_GetUniprotRecord\");\n"
        "}\n"},
       // Layers outside the interned hot set are out of scope.
       {"src/provenance/p.cc",
        "void P(const Ontology& ontology, ConceptId c) {\n"
        "  Log(ontology.NameOf(c));\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(StringKeyedLookupRuleTest, AllowCommentSuppresses) {
  LintReport report = Lint(
      {{"src/workflow/w.cc",
        "void F(const Ontology& ontology, ConceptId c) {\n"
        "  // dexa-lint: allow(string-keyed-lookup) — diagnostics only\n"
        "  Diag(ontology.NameOf(c));\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(UncachedReasoningRuleTest, FiresOnDirectPrimitivesInEngineAndCore) {
  LintReport report = Lint(
      {{"src/core/a.cc",
        "bool F(const Ontology& ontology, ConceptId a, ConceptId b) {\n"
        "  return ontology.IsSubsumedBy(a, b);\n"
        "}\n"},
       {"src/engine/b.cc",
        "void G(const Ontology* ontology, ConceptId c) {\n"
        "  auto down = ontology->Descendants(c);\n"
        "  auto parts = ontology->Partitions(c);\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 3u) << Describe(report);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "uncached-reasoning");
  }
}

TEST(UncachedReasoningRuleTest, CacheItselfOtherLayersAndCacheCallsSilent) {
  LintReport report = Lint(
      {// The cache is the sanctioned caller of the backing view.
       {"src/engine/concept_cache.cc",
        "bool ConceptCache::IsSubsumedBy(ConceptId a, ConceptId b) const {\n"
        "  return view_ontology_.IsSubsumedBy(a, b);\n"
        "}\n"},
       // Calls through the cache are the point of the rule.
       {"src/core/c.cc",
        "bool H(const ConceptCache& cache, ConceptId a, ConceptId b) {\n"
        "  return cache.IsSubsumedBy(a, b) && cache.Comparable(a, b);\n"
        "}\n"},
       // The ontology layer implements the primitives.
       {"src/ontology/ontology.cc",
        "bool Ontology::IsSubsumedBy(ConceptId a, ConceptId b) const;\n"},
       // Workflow/repair may reason directly (they are not hot loops).
       {"src/workflow/w.cc",
        "bool W(const Ontology& ontology, ConceptId a, ConceptId b) {\n"
        "  return ontology.IsSubsumedBy(a, b);\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Family 8: run-entry discipline
// ---------------------------------------------------------------------------

TEST(LegacyRunEntryRuleTest, FiresOnLegacyCallsOutsideDurability) {
  LintReport report = Lint(
      {{"src/serve/s.cc",
        "void F(ExampleGenerator& g, ModuleRegistry& r, const Ontology& o,\n"
        "       RunJournal& j) {\n"
        "  auto report = AnnotateRegistryDurable(g, r, o, j);\n"
        "}\n"},
       {"tools/t.cpp",
        "void G(const Workflow& w, const ModuleRegistry& r, Inputs in,\n"
        "       InvocationEngine& e, RunJournal& j) {\n"
        "  auto result = EnactResilientDurable(w, r, in, e, j);\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"legacy-run-entry"});
  EXPECT_NE(report.findings[0].message.find("SubmitRun"), std::string::npos);
}

TEST(LegacyRunEntryRuleTest, ShimHomeTestsAndBenchesAreExempt) {
  LintReport report = Lint(
      {// src/durability hosts the shims and the facade implementation.
       {"src/durability/run_api.cc",
        "void F() { auto r = AnnotateRegistryDurable(g, reg, o, j); }\n"},
       // The equivalence suite compares shim output against the facade.
       {"tests/run_api_test.cc",
        "void G() { auto r = AnnotateRegistryDurable(g, reg, o, j); }\n"},
       // The crash-recovery bench predates the facade on purpose.
       {"bench/bench_crash_recovery.cc",
        "void H() { auto r = EnactResilientDurable(w, reg, in, e, j); }\n"},
       // Mentioning the name without calling it (docs, declarations).
       {"src/serve/s.h", "// AnnotateRegistryDurable is deprecated.\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(LegacyRunEntryRuleTest, SuppressibleWithAllowComment) {
  LintReport report = Lint(
      {{"src/serve/s.cc",
        "// dexa-lint: allow(legacy-run-entry) — migration shim\n"
        "auto r = AnnotateRegistryDurable(g, reg, o, j);\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
  EXPECT_EQ(report.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Family 9: io — file bytes go through the IoEnv seam
// ---------------------------------------------------------------------------

TEST(RawIoRuleTest, FiresOnDirectPosixCallsInSrc) {
  LintReport report = Lint(
      {{"src/durability/bad.cc",
        "void F(int fd, const char* p, size_t n) {\n"
        "  ::write(fd, p, n);\n"
        "  ::fsync(fd);\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"raw-io"});
  EXPECT_NE(report.findings[0].message.find("IoEnv"), std::string::npos);
}

TEST(RawIoRuleTest, FiresOnFilesystemRename) {
  LintReport report = Lint(
      {{"src/kbimage/swap.cc",
        "void G(const std::string& a, const std::string& b) {\n"
        "  std::filesystem::rename(a, b);\n"
        "}\n"},
       {"src/durability/swap.cc",
        "namespace fs = std::filesystem;\n"
        "void H(const std::string& a, const std::string& b) {\n"
        "  fs::rename(a, b);\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 2u) << Describe(report);
  EXPECT_EQ(RuleSet(report), std::set<std::string>{"raw-io"});
  EXPECT_NE(report.findings[0].message.find("IoEnv::Rename"), std::string::npos);
}

TEST(RawIoRuleTest, SeamSocketLoopTestsAndQualifiedCallsAreExempt) {
  LintReport report = Lint(
      {// The seam implementation itself owns the raw syscalls.
       {"src/common/io_env.cc", "void F(int fd) { ::fsync(fd); }\n"},
       // The serve socket loop reads and writes fds, not files.
       {"src/serve/server.cc", "void G(int fd, char* b) { ::read(fd, b, 1); }\n"},
       // Tests and benches exercise sockets and raw files deliberately.
       {"tests/x_test.cc", "void H(int fd) { ::write(fd, \"x\", 1); }\n"},
       {"bench/bench_x.cc", "void I(int fd) { ::close(fd); }\n"},
       // Qualified member / scoped calls are not the POSIX symbols.
       {"src/core/member.cc",
        "void J(File* f, char* p) { f->file_::write(p, 1); }\n"
        "void K() { Writer::rename(\"a\", \"b\"); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(RawIoRuleTest, SuppressibleWithAllowComment) {
  LintReport report = Lint(
      {{"src/core/probe.cc",
        "// dexa-lint: allow(raw-io) — feature probe, bytes discarded\n"
        "void F(int fd) { ::fsync(fd); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
  EXPECT_EQ(report.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Whole-program determinism taint (call graph over the symbol index)
// ---------------------------------------------------------------------------

TEST(DeterminismTaintRuleTest, FiresAcrossFilesWithFullCallChain) {
  // The source lives two hops away from the committed-byte sink, in a layer
  // the first-order wall-clock rule does not cover — only the transitive
  // taint pass can connect them.
  LintReport report = Lint(
      {{"src/formats/stamp.h",
        "inline uint64_t NowStamp() {\n"
        "  return std::chrono::system_clock::now().time_since_epoch()\n"
        "      .count();\n"
        "}\n"},
       {"src/formats/render.h",
        "inline std::string FormatStamp() {\n"
        "  return std::to_string(NowStamp());\n"
        "}\n"},
       {"src/durability/commit_codec.cc",
        "void EncodeFrame(Buffer& buffer) {\n"
        "  buffer.Add(FormatStamp());\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "determinism-taint");
  EXPECT_EQ(f.file, "src/durability/commit_codec.cc");
  EXPECT_EQ(f.line, 1);
  EXPECT_NE(f.message.find("EncodeFrame -> FormatStamp -> NowStamp"),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("wall-clock"), std::string::npos) << f.message;
  // Flow: sink definition, two call hops, the source itself.
  ASSERT_EQ(f.flow.size(), 4u);
  EXPECT_EQ(f.flow.front().file, "src/durability/commit_codec.cc");
  EXPECT_EQ(f.flow.back().file, "src/formats/stamp.h");
  EXPECT_EQ(f.flow.back().line, 2);
}

TEST(DeterminismTaintRuleTest, SilentWhenNoPathReachesASink) {
  // Same nondeterministic helper, but every caller is outside the sink set:
  // nondeterminism that never becomes committed bytes is not a finding.
  LintReport report = Lint(
      {{"src/formats/stamp.h",
        "inline uint64_t NowStamp() {\n"
        "  return std::chrono::system_clock::now().time_since_epoch()\n"
        "      .count();\n"
        "}\n"},
       {"src/kb/loader.cc",
        "void WarmCaches() { auto t = NowStamp(); Use(t); }\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(DeterminismTaintRuleTest, AllowCommentAtTheSourceSeversTheChain) {
  LintReport report = Lint(
      {{"src/formats/stamp.h",
        "inline uint64_t NowStamp() {\n"
        "  // dexa-lint: allow(determinism-taint) — display-only stamp\n"
        "  return std::chrono::system_clock::now().time_since_epoch()\n"
        "      .count();\n"
        "}\n"},
       {"src/durability/commit_codec.cc",
        "void EncodeFrame(Buffer& buffer) {\n"
        "  buffer.Add(NowStamp());\n"
        "}\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

TEST(DeterminismTaintRuleTest, SourceInsideTheSinkFileIsAMinimalChain) {
  // serve/wire is a sink by path; entropy's first-order scope does not
  // cover serve, so the taint pass is the only gate left — and a source
  // inside the sink function itself is the degenerate one-node chain.
  LintReport report = Lint(
      {{"src/serve/wire.cc",
        "void WriteHeader(Frame& frame) {\n"
        "  std::random_device seed;\n"
        "  frame.Put(seed());\n"
        "}\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  EXPECT_EQ(report.findings[0].rule, "determinism-taint");
  ASSERT_EQ(report.findings[0].flow.size(), 2u);
  EXPECT_EQ(report.findings[0].flow[1].line, 2);
}

// ---------------------------------------------------------------------------
// Family 10: lock discipline (guarded fields)
// ---------------------------------------------------------------------------

TEST(GuardedFieldRuleTest, FiresOnUnannotatedFieldOfMutexOwningClass) {
  LintReport report = Lint(
      {{"src/engine/q.h",
        "class WorkQueue {\n"
        " public:\n"
        "  void Push(int v);\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  std::deque<int> items_;\n"
        "};\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  EXPECT_EQ(report.findings[0].rule, "guarded-field");
  EXPECT_EQ(report.findings[0].line, 6);
  EXPECT_NE(report.findings[0].message.find("items_"), std::string::npos)
      << report.findings[0].message;
}

TEST(GuardedFieldRuleTest, AnnotatedExemptAndAllowListedFieldsAreSilent) {
  LintReport report = Lint(
      {{"src/serve/table.h",
        "class RunTable {\n"
        " public:\n"
        "  using Id = uint64_t;\n"
        "  static constexpr int kShards = 4;\n"
        "  void Insert(Id id);\n"
        " private:\n"
        "  mutable std::shared_mutex mutex_;\n"
        "  std::map<Id, int> runs_ DEXA_GUARDED_BY(mutex_);\n"
        "  std::atomic<uint64_t> epoch_{0};\n"
        "  std::condition_variable_any cv_;\n"
        "  // dexa-lint: allow(guarded-field) — written once before sharing\n"
        "  std::string name_;\n"
        "};\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(GuardedFieldRuleTest, MutexFreeClassesAndOtherLayersAreOutOfScope) {
  LintReport report = Lint(
      {// No mutex, no contract to annotate.
       {"src/engine/plain.h",
        "class Plain { int x_; std::string y_; };\n"},
       // The rule's proving ground is engine + serve only.
       {"src/kb/locked.h",
        "class Table { std::mutex mutex_; std::map<int, int> rows_; };\n"}});
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, SameLinePrecedingLineAndFileWide) {
  Sources sources = {
      {"src/core/a.cc",
       "void F() {\n"
       "  auto t = std::chrono::system_clock::now();  "
       "// dexa-lint: allow(wall-clock)\n"
       "}\n"},
      {"src/core/b.cc",
       "void G() {\n"
       "  // dexa-lint: allow(wall-clock) — reporting only\n"
       "  auto t = std::chrono::system_clock::now();\n"
       "}\n"},
      {"src/core/c.cc",
       "// dexa-lint: allow-file(entropy)\n"
       "void H() { std::random_device a; std::random_device b; }\n"}};
  LintReport report = Lint(sources);
  EXPECT_TRUE(report.findings.empty()) << Describe(report);
  EXPECT_EQ(report.suppressed, 4u);
}

TEST(SuppressionTest, AllowForOneRuleDoesNotSilenceAnother) {
  LintReport report = Lint(
      {{"src/core/a.cc",
        "// dexa-lint: allow(entropy)\n"
        "auto t = std::chrono::system_clock::now();\n"}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "wall-clock");
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(ReportTest, JsonContainsFindingsAndCounts) {
  LintReport report = Lint(
      {{"src/core/a.cc", "void F() { std::random_device rd; }\n"}});
  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"tool\": \"dexa-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"entropy\""), std::string::npos);
  EXPECT_NE(json.find("src/core/a.cc"), std::string::npos);
}

TEST(ReportTest, EveryRegisteredRuleHasNameFamilySummary) {
  std::set<std::string> names;
  for (const RuleInfo& rule : Rules()) {
    EXPECT_TRUE(names.insert(rule.name).second) << "duplicate " << rule.name;
    EXPECT_STRNE(rule.family, "");
    EXPECT_STRNE(rule.summary, "");
  }
  EXPECT_EQ(names.size(), 15u) << "fifteen rules in ten families (DESIGN.md)";
}

TEST(ReportTest, JsonCarriesTaintFlows) {
  LintReport report = Lint(
      {{"src/serve/wire.cc",
        "void W(Frame& f) { std::random_device rd; f.Put(rd()); }\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"flow\""), std::string::npos);
  EXPECT_NE(json.find("entropy source"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------

/// Cheap well-formedness: every brace/bracket closes, quotes balance.
void ExpectBalancedJson(const std::string& doc) {
  long braces = 0;
  long brackets = 0;
  size_t quotes = 0;
  bool in_string = false;
  for (size_t i = 0; i < doc.size(); ++i) {
    char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        ++quotes;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; ++quotes; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_FALSE(in_string);
}

TEST(SarifTest, DocumentCarriesSchemaRuleCatalogAndResults) {
  LintReport report = Lint(
      {{"src/core/a.cc", "void F() { std::random_device rd; }\n"}});
  std::string sarif = ReportToSarif(report);
  ExpectBalancedJson(sarif);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"dexa-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"entropy\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/a.cc\""), std::string::npos);
  // The driver catalog lists every registered rule, finding or not.
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.name) + "\""),
              std::string::npos)
        << rule.name;
  }
  // Deterministic byte-for-byte.
  EXPECT_EQ(sarif, ReportToSarif(report));
}

TEST(SarifTest, TaintChainsRenderAsCodeFlows) {
  LintReport report = Lint(
      {{"src/formats/stamp.h",
        "inline uint64_t NowStamp() {\n"
        "  return std::chrono::system_clock::now().time_since_epoch()\n"
        "      .count();\n"
        "}\n"},
       {"src/durability/commit_codec.cc",
        "void EncodeFrame(Buffer& b) { b.Add(NowStamp()); }\n"}});
  ASSERT_EQ(report.findings.size(), 1u) << Describe(report);
  std::string sarif = ReportToSarif(report);
  ExpectBalancedJson(sarif);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("\"threadFlows\""), std::string::npos);
  // The chain's hops carry locations in both files.
  size_t flows = sarif.find("\"codeFlows\"");
  EXPECT_NE(sarif.find("src/formats/stamp.h", flows), std::string::npos);
  EXPECT_NE(sarif.find("src/durability/commit_codec.cc", flows),
            std::string::npos);
}

TEST(SarifTest, CleanReportHasEmptyResults) {
  std::string sarif = ReportToSarif(Lint({{"src/core/ok.cc", "int x;\n"}}));
  ExpectBalancedJson(sarif);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Warm-run cache
// ---------------------------------------------------------------------------

TEST(CacheTest, AnalyzedFileSurvivesSerializeParseRoundTrip) {
  // One fixture exercising every serialized facet: a per-file finding, a
  // suppressed finding, a taint source, call edges, a Status declaration
  // and a discarded call.
  AnalyzedFile original = AnalyzeSource(
      "src/core/a.cc",
      "Status Flush();\n"
      "void F() {\n"
      "  std::random_device rd;\n"
      "  Flush();\n"
      "  // dexa-lint: allow(wall-clock)\n"
      "  auto t = std::chrono::system_clock::now();\n"
      "  Use(t, rd);\n"
      "}\n");
  std::string record = SerializeAnalyzedFile(original);
  AnalyzedFile parsed;
  ASSERT_TRUE(ParseAnalyzedFile(record, parsed));

  EXPECT_EQ(parsed.path, original.path);
  EXPECT_EQ(parsed.layer, original.layer);
  EXPECT_EQ(parsed.content_hash, original.content_hash);
  EXPECT_EQ(parsed.suppressed, original.suppressed);
  EXPECT_EQ(parsed.status_functions, original.status_functions);
  EXPECT_EQ(parsed.ambiguous, original.ambiguous);
  EXPECT_EQ(parsed.file_suppressions, original.file_suppressions);
  EXPECT_EQ(parsed.line_suppressions, original.line_suppressions);
  ASSERT_EQ(parsed.discards.size(), original.discards.size());
  ASSERT_EQ(parsed.findings.size(), original.findings.size());
  for (size_t i = 0; i < parsed.findings.size(); ++i) {
    EXPECT_EQ(parsed.findings[i].rule, original.findings[i].rule);
    EXPECT_EQ(parsed.findings[i].line, original.findings[i].line);
    EXPECT_EQ(parsed.findings[i].message, original.findings[i].message);
  }
  ASSERT_EQ(parsed.index.functions.size(), original.index.functions.size());
  for (size_t i = 0; i < parsed.index.functions.size(); ++i) {
    EXPECT_EQ(parsed.index.functions[i].name,
              original.index.functions[i].name);
    EXPECT_EQ(parsed.index.functions[i].calls.size(),
              original.index.functions[i].calls.size());
    EXPECT_EQ(parsed.index.functions[i].sources.size(),
              original.index.functions[i].sources.size());
  }

  // The whole-program verdict is identical either way: the parsed summary
  // is a full substitute for re-analysis.
  EXPECT_EQ(ReportToJson(FinishAnalysis({original})),
            ReportToJson(FinishAnalysis({parsed})));
}

TEST(CacheTest, ParseRejectsGarbageAndForeignVersions) {
  AnalyzedFile out;
  EXPECT_FALSE(ParseAnalyzedFile("", out));
  EXPECT_FALSE(ParseAnalyzedFile("not a cache record\n", out));
  EXPECT_FALSE(ParseAnalyzedFile("dexa-lint-cache 999\npath src/a.cc\n", out));
}

TEST(CacheTest, WarmRunMatchesColdRunAndEditsInvalidate) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "dexa_lint_cache_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  const std::string rel = "src/core/a.cc";
  auto write = [&](const std::string& text) {
    std::ofstream out(root / rel, std::ios::trunc);
    out << text;
  };
  write("void F() { std::random_device rd; Use(rd); }\n");

  const std::string cache = (root / "cache").string();
  LintStats cold_stats;
  LintReport cold = LintPaths(root.string(), {rel}, cache, &cold_stats);
  EXPECT_EQ(cold_stats.cache_misses, 1u);
  EXPECT_EQ(cold_stats.cache_hits, 0u);

  LintStats warm_stats;
  LintReport warm = LintPaths(root.string(), {rel}, cache, &warm_stats);
  EXPECT_EQ(warm_stats.cache_hits, 1u);
  EXPECT_EQ(warm_stats.cache_misses, 0u);
  EXPECT_EQ(ReportToJson(cold), ReportToJson(warm));
  ASSERT_EQ(warm.findings.size(), 1u) << Describe(warm);
  EXPECT_EQ(warm.findings[0].rule, "entropy");

  // An edit changes the content hash: the stale record must not be served.
  write("void F() { int x = rand(); Use(x); }\n");
  LintStats edited_stats;
  LintReport edited = LintPaths(root.string(), {rel}, cache, &edited_stats);
  EXPECT_EQ(edited_stats.cache_misses, 1u);
  ASSERT_EQ(edited.findings.size(), 1u) << Describe(edited);
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// The live tree
// ---------------------------------------------------------------------------

TEST(LiveTreeTest, RepositoryLintsClean) {
  const std::string root = DEXA_SOURCE_DIR;
  std::vector<std::string> files = CollectSourceFiles(
      root, {"src", "tests", "bench", "tools", "examples"});
  ASSERT_GT(files.size(), 100u) << "source collection missed the tree";
  LintReport report = LintPaths(root, files);
  EXPECT_EQ(report.files_scanned, files.size());
  EXPECT_TRUE(report.findings.empty())
      << "the live tree must lint clean:\n"
      << Describe(report);
}

}  // namespace
}  // namespace dexa::lint
