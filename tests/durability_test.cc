// Tests for the durability layer: journal framing and CRC32, segment
// rolling, torn-tail detection and discard, crash-point injection,
// crash-resume determinism (byte-identical state at any thread count),
// atomic snapshot/restore, and durable workflow enactment.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_config.h"
#include "corpus/fault_injector.h"
#include "common/crc32.h"
#include "durability/durable_annotate.h"
#include "durability/durable_enact.h"
#include "durability/journal.h"
#include "durability/snapshot.h"
#include "durability/trace_io.h"
#include "modules/registry_io.h"
#include "pool/pool_io.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

namespace fs = std::filesystem;

using testing_env::GetEnvironment;

/// A fresh directory under the test temp root, wiped on creation.
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_durability" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A fresh, unannotated registry with the environment's module ids (every
/// module wrapped in a pass-through injector).
std::unique_ptr<ModuleRegistry> FreshRegistry() {
  const auto& env = GetEnvironment();
  auto wrapped = WrapRegistryWithFaults(*env.corpus.registry, FaultProfile{});
  EXPECT_TRUE(wrapped.ok()) << wrapped.status();
  return std::move(wrapped).value();
}

TEST(Crc32Test, MatchesTheIeeeCheckVector) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental form agrees with the one-shot form.
  uint32_t crc = Crc32Update(0, "1234");
  EXPECT_EQ(Crc32Update(crc, "56789"), Crc32("123456789"));
}

TEST(RunJournalTest, AppendRecoverRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  auto journal = RunJournal::Create(dir);
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::vector<std::string> payloads = {"alpha", "beta\nwith lines",
                                       std::string(1000, 'x'), ""};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(journal->Append(payload).ok());
  }
  ASSERT_TRUE(journal->Seal().ok());

  auto recovery = RecoverJournal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovery->tail_discarded());
  EXPECT_EQ(recovery->records, payloads);
}

TEST(RunJournalTest, RollsSegmentsPastTheSizeCap) {
  const std::string dir = FreshDir("rolling");
  JournalOptions options;
  options.segment_bytes = 256;
  auto journal = RunJournal::Create(dir, options);
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back("record-" + std::to_string(i) + "-" +
                       std::string(100, 'p'));
    ASSERT_TRUE(journal->Append(payloads.back()).ok());
  }
  ASSERT_TRUE(journal->Seal().ok());
  EXPECT_GT(journal->segments_sealed(), 3u);

  auto recovery = RecoverJournal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovery->tail_discarded());
  EXPECT_EQ(recovery->records, payloads);
  EXPECT_GT(recovery->segments_scanned, 3u);
}

TEST(RunJournalTest, TornTailIsDetectedDiscardedAndResumable) {
  const std::string dir = FreshDir("torn");
  auto journal = RunJournal::Create(dir);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        journal->Append("payload-" + std::to_string(i) + std::string(64, 'q'))
            .ok());
  }
  ASSERT_TRUE(journal->Seal().ok());

  // A crash lands mid-write: the tail is truncated and bit-flipped.
  ASSERT_TRUE(TearJournalTail(dir, /*seed=*/7, /*flips=*/3,
                              /*truncate_bytes=*/5)
                  .ok());

  EngineMetrics metrics;
  auto recovery = RecoverJournal(dir, &metrics);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery->tail_discarded());
  EXPECT_TRUE(recovery->tail_status.IsCorrupted());
  EXPECT_GT(recovery->bytes_discarded, 0u);
  EXPECT_LT(recovery->records.size(), 8u);
  EXPECT_EQ(metrics.Snapshot().torn_tails_discarded, 1u);
  // The surviving prefix is intact.
  for (size_t i = 0; i < recovery->records.size(); ++i) {
    EXPECT_EQ(recovery->records[i],
              "payload-" + std::to_string(i) + std::string(64, 'q'));
  }

  // Resume truncates the damage; appends land behind the valid prefix.
  auto resumed = RunJournal::Resume(dir, *recovery);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->Append("after-the-crash").ok());
  ASSERT_TRUE(resumed->Seal().ok());

  auto again = RecoverJournal(dir);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->tail_discarded());
  ASSERT_EQ(again->records.size(), recovery->records.size() + 1);
  EXPECT_EQ(again->records.back(), "after-the-crash");
}

TEST(RunJournalTest, ResumeNumberingSurvivesSegmentGaps) {
  const std::string dir = FreshDir("gaps");
  {
    auto journal = RunJournal::Create(dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE(journal->Append("one").ok());
    ASSERT_TRUE(journal->Append("two").ok());
    ASSERT_TRUE(journal->Seal().ok());
  }
  // A crash left the next segment header-less (0 bytes): recovery drops it
  // whole, leaving a numbering gap after the resume writes wal-00002.
  { std::ofstream stub(fs::path(dir) / "wal-00001.seg", std::ios::binary); }
  auto recovery = RecoverJournal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery->tail_discarded());
  {
    auto resumed = RunJournal::Resume(dir, *recovery);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_TRUE(resumed->Append("three").ok());
    ASSERT_TRUE(resumed->Seal().ok());
  }

  // Live segments are now {00000, 00002}: a clean resume must number past
  // the gap, not derive an index from the list position and truncate the
  // live wal-00002 (destroying "three").
  auto clean = RecoverJournal(dir);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_FALSE(clean->tail_discarded());
  ASSERT_EQ(clean->records,
            (std::vector<std::string>{"one", "two", "three"}));
  {
    auto resumed = RunJournal::Resume(dir, *clean);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_TRUE(resumed->Append("four").ok());
    ASSERT_TRUE(resumed->Seal().ok());
  }
  auto final_pass = RecoverJournal(dir);
  ASSERT_TRUE(final_pass.ok()) << final_pass.status();
  EXPECT_FALSE(final_pass->tail_discarded());
  EXPECT_EQ(final_pass->records,
            (std::vector<std::string>{"one", "two", "three", "four"}));
}

TEST(RunJournalTest, DamagedHeaderEndsTheJournalBeforeAnyRecord) {
  SegmentScan scan = ScanSegment("GARBAGE!not a segment");
  EXPECT_TRUE(scan.status.IsCorrupted());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(SnapshotTest, AtomicWriteLeavesNoTemporaries) {
  const std::string dir = FreshDir("atomic");
  const std::string path = (fs::path(dir) / "artifact.txt").string();
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotTest, RunStateRoundTripAndCorruptionSafety) {
  const auto& env = GetEnvironment();
  const std::string dir = FreshDir("snapshot");

  ASSERT_TRUE(WriteRunStateSnapshot(dir, *env.pool, *env.corpus.registry,
                                    *env.corpus.ontology, env.provenance)
                  .ok());

  // Round trip into a fresh registry: byte-identical serialized state.
  auto restored_registry = FreshRegistry();
  auto restored =
      RestoreRunState(dir, *env.corpus.ontology, *restored_registry);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_GT(restored->modules_restored, 0u);
  EXPECT_EQ(SavePool(restored->pool), SavePool(*env.pool));
  EXPECT_EQ(SaveTraces(restored->provenance), SaveTraces(env.provenance));
  EXPECT_EQ(SaveAnnotations(*restored_registry, *env.corpus.ontology),
            SaveAnnotations(*env.corpus.registry, *env.corpus.ontology));

  // Truncate the annotations artifact mid-example: restore reports
  // kCorrupted and leaves the target registry untouched.
  const std::string annotations_path =
      (fs::path(dir) / kSnapshotAnnotationsFile).string();
  auto annotations = ReadFileToString(annotations_path);
  ASSERT_TRUE(annotations.ok());
  // Cut just before an "end" line: every surviving line is complete, but
  // the document stops inside an example — damage, not a grammar error.
  size_t cut = annotations->rfind("\nend\n");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(annotations_path, std::ios::binary | std::ios::trunc);
    out << annotations->substr(0, cut + 1);
  }
  auto clean_registry = FreshRegistry();
  auto damaged =
      RestoreRunState(dir, *env.corpus.ontology, *clean_registry);
  ASSERT_FALSE(damaged.ok());
  EXPECT_TRUE(damaged.status().IsCorrupted()) << damaged.status();
  for (const ModulePtr& module : clean_registry->AllModules()) {
    EXPECT_TRUE(clean_registry->DataExamplesOf(module->spec().id).empty());
  }
}

TEST(TraceIoTest, TruncatedTraceFileIsCorruptedNotParseError) {
  const auto& env = GetEnvironment();
  std::string rendered = SaveTraces(env.provenance);
  size_t cut = rendered.rfind("\nend\n");
  ASSERT_NE(cut, std::string::npos);
  auto result = LoadTraces(rendered.substr(0, cut + 1));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorrupted()) << result.status();
}

TEST(RegistryIoTest, TruncatedAnnotationsAreCorruptedAndAtomic) {
  const auto& env = GetEnvironment();
  std::string rendered =
      SaveAnnotations(*env.corpus.registry, *env.corpus.ontology);
  size_t cut = rendered.find("\nend\n");
  ASSERT_NE(cut, std::string::npos);
  auto registry = FreshRegistry();
  auto result = LoadAnnotations(rendered.substr(0, cut + 1),
                                *env.corpus.ontology, *registry);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorrupted()) << result.status();
  // Stage-then-commit: the failed load left nothing behind.
  for (const ModulePtr& module : registry->AllModules()) {
    EXPECT_TRUE(registry->DataExamplesOf(module->spec().id).empty());
  }
}

/// One full durable annotation run (no crash) into `dir`; returns the
/// serialized annotations of the resulting registry.
std::string UninterruptedRunState(size_t threads, const std::string& dir) {
  const auto& env = GetEnvironment();
  EngineConfig config = EngineConfig().Threads(threads).Seed(0xD0D0);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto registry = FreshRegistry();
  auto journal = RunJournal::Create(dir, {}, &engine->metrics());
  EXPECT_TRUE(journal.ok()) << journal.status();
  auto report = AnnotateRegistryDurable(generator, *registry,
                                        *env.corpus.ontology, *journal);
  EXPECT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE((*report).complete()) << (*report).run_status;
  EXPECT_GT((*report).metrics.commits, 0u);
  return SaveAnnotations(*registry, *env.corpus.ontology);
}

struct CrashCase {
  CrashPoint point;
  size_t module_index;  // Which available module the crash keys on.
};

class CrashResumeTest
    : public ::testing::TestWithParam<std::tuple<size_t, CrashCase>> {};

TEST_P(CrashResumeTest, ResumedRunIsByteIdenticalToUninterrupted) {
  const auto& env = GetEnvironment();
  const size_t threads = std::get<0>(GetParam());
  const CrashCase crash_case = std::get<1>(GetParam());

  const std::string label =
      std::string(CrashPointName(crash_case.point)) + "-t" +
      std::to_string(threads);
  const std::string baseline =
      UninterruptedRunState(threads, FreshDir("baseline-" + label));

  EngineConfig config = EngineConfig().Threads(threads).Seed(0xD0D0);

  // Phase 1: the run is killed at the chosen crash point.
  const std::string dir = FreshDir("crash-" + label);
  auto crashed_registry = FreshRegistry();
  std::string crash_module_id;
  {
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    auto journal = RunJournal::Create(dir, {}, &engine->metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    const auto modules = crashed_registry->AvailableModules();
    ASSERT_GT(modules.size(), crash_case.module_index);
    crash_module_id = modules[crash_case.module_index]->spec().id;

    DurableAnnotateOptions options;
    options.crash.point = crash_case.point;
    options.crash.key = crash_module_id;
    auto report =
        AnnotateRegistryDurable(generator, *crashed_registry,
                                *env.corpus.ontology, *journal, options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->complete());
    EXPECT_TRUE(report->run_status.IsCancelled()) << report->run_status;
    // The aborted run's report still carries the final engine counters.
    EXPECT_GT(report->metrics.invocations, 0u);
    EXPECT_GT(report->metrics.commits, 0u);
  }

  // Phase 2: a new process recovers the journal and resumes.
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto resumed_registry = FreshRegistry();
  auto recovery = RecoverJournal(dir, &engine->metrics());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  if (crash_case.point == CrashPoint::kTornWrite) {
    EXPECT_TRUE(recovery->tail_discarded());
    EXPECT_TRUE(recovery->tail_status.IsCorrupted());
  } else {
    EXPECT_FALSE(recovery->tail_discarded());
  }
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine->metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto report = AnnotateRegistry(generator, *resumed_registry,
                                 *env.corpus.ontology, *journal,
                                 ResumeFrom(*recovery));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->complete()) << report->run_status;

  // The committed prefix was served from the journal, never re-invoked.
  EXPECT_GT(report->replayed, 0u);
  EXPECT_EQ(report->replayed, engine->metrics().Snapshot().modules_replayed);
  switch (crash_case.point) {
    case CrashPoint::kCrashBeforeCommit:
      // The crash module's own commit did not survive.
      EXPECT_EQ(report->replayed, crash_case.module_index);
      break;
    case CrashPoint::kTornWrite:
      // The torn commit — and possibly a neighbor clipped by the damage
      // radius — was discarded and re-invoked.
      EXPECT_LE(report->replayed, crash_case.module_index);
      break;
    case CrashPoint::kCrashAfterCommit:
      EXPECT_EQ(report->replayed, crash_case.module_index + 1);
      break;
    default:
      FAIL() << "unexpected crash point";
  }

  // The acceptance bar: byte-identical final state.
  EXPECT_EQ(SaveAnnotations(*resumed_registry, *env.corpus.ontology),
            baseline)
      << "resume after " << label << " diverged from uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, CrashResumeTest,
    ::testing::Combine(
        ::testing::Values<size_t>(1, 8),
        ::testing::Values(
            CrashCase{CrashPoint::kCrashBeforeCommit, 11},
            CrashCase{CrashPoint::kCrashAfterCommit, 101},
            CrashCase{CrashPoint::kTornWrite, 197})),
    [](const ::testing::TestParamInfo<std::tuple<size_t, CrashCase>>& info) {
      // gtest parameter names allow only [A-Za-z0-9_].
      std::string name = CrashPointName(std::get<1>(info.param).point);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_at_" +
             std::to_string(std::get<1>(info.param).module_index) + "_t" +
             std::to_string(std::get<0>(info.param));
    });

TEST(DurableAnnotateTest, CrashBeforeFirstCommitResumesWithoutSecondHeader) {
  const auto& env = GetEnvironment();
  const std::string dir = FreshDir("first-commit-crash");
  EngineConfig config = EngineConfig().Threads(1).Seed(0xD0D0);

  // Run 1 crashes before the very first module commits: the journal holds
  // the header and nothing else.
  {
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    auto registry = FreshRegistry();
    auto journal = RunJournal::Create(dir, {}, &engine->metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    DurableAnnotateOptions options;
    options.crash.point = CrashPoint::kCrashBeforeCommit;
    options.crash.key = registry->AvailableModules()[0]->spec().id;
    auto report = AnnotateRegistryDurable(generator, *registry,
                                          *env.corpus.ontology, *journal,
                                          options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->run_status.IsCancelled()) << report->run_status;
  }

  // Run 2 resumes (zero commits to replay) and crashes again further in. A
  // resume that re-appended the header here would leave the journal with
  // two header records, permanently unresumable.
  {
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    auto registry = FreshRegistry();
    auto recovery = RecoverJournal(dir, &engine->metrics());
    ASSERT_TRUE(recovery.ok()) << recovery.status();
    ASSERT_EQ(recovery->records.size(), 1u);  // Header only.
    auto journal = RunJournal::Resume(dir, *recovery, {}, &engine->metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    DurableAnnotateOptions options;
    options.resume = &*recovery;
    options.crash.point = CrashPoint::kCrashAfterCommit;
    options.crash.key = registry->AvailableModules()[3]->spec().id;
    auto report = AnnotateRegistryDurable(generator, *registry,
                                          *env.corpus.ontology, *journal,
                                          options);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->run_status.IsCancelled()) << report->run_status;
  }

  // Run 3: the journal decodes as header + commit prefix and the run
  // completes, replaying the four committed modules.
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto registry = FreshRegistry();
  auto recovery = RecoverJournal(dir, &engine->metrics());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine->metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto report = AnnotateRegistry(generator, *registry, *env.corpus.ontology,
                                 *journal, ResumeFrom(*recovery));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->complete()) << report->run_status;
  EXPECT_EQ(report->replayed, 4u);
}

TEST(DurableAnnotateTest, ResumeRejectsForeignJournals) {
  const auto& env = GetEnvironment();
  const std::string dir = FreshDir("foreign");
  EngineConfig config = EngineConfig().Threads(1);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto registry = FreshRegistry();
  auto journal = RunJournal::Create(dir);
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto report = AnnotateRegistryDurable(generator, *registry,
                                        *env.corpus.ontology, *journal);
  ASSERT_TRUE(report.ok()) << report.status();

  // A generator with different options has a different fingerprint.
  EngineConfig other = EngineConfig().Threads(1).MaxCombinations(7);
  ExampleGenerator other_generator = other.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto recovery = RecoverJournal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  auto resumed_registry = FreshRegistry();
  auto resumed_journal = RunJournal::Resume(dir, *recovery);
  ASSERT_TRUE(resumed_journal.ok()) << resumed_journal.status();
  auto rejected = AnnotateRegistry(other_generator, *resumed_registry,
                                   *env.corpus.ontology, *resumed_journal,
                                   ResumeFrom(*recovery));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument()) << rejected.status();
}

/// Picks a still-enactable corpus workflow with at least three processors
/// for the enactment drills; its generated seeds are the inputs.
const GeneratedWorkflow& PickWorkflow() {
  const auto& env = GetEnvironment();
  for (const GeneratedWorkflow& item : env.workflows.items) {
    if (item.workflow.processors.size() >= 3 &&
        IsEnactable(item.workflow, *env.corpus.registry)) {
      return item;
    }
  }
  ADD_FAILURE() << "no enactable workflow with >= 3 processors in the corpus";
  std::abort();
}

TEST(DurableEnactTest, CrashedEnactmentResumesToIdenticalResult) {
  const auto& env = GetEnvironment();
  const GeneratedWorkflow& item = PickWorkflow();
  const Workflow& workflow = item.workflow;
  const std::vector<Value>& inputs = item.seeds;

  InvocationEngine baseline_engine;
  auto baseline = EnactResilient(workflow, *env.corpus.registry, inputs,
                                 baseline_engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Crash at the second step that actually runs.
  ASSERT_GE(baseline->invocations.size(), 2u);
  const std::string crash_key = baseline->invocations[1].module_id;

  const std::string dir = FreshDir("enact");
  {
    InvocationEngine engine;
    auto journal = RunJournal::Create(dir, {}, &engine.metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    DurableEnactOptions options;
    options.crash.point = CrashPoint::kCrashAfterCommit;
    options.crash.key = crash_key;
    auto crashed = EnactResilientDurable(workflow, *env.corpus.registry,
                                         inputs, engine, *journal, options);
    ASSERT_FALSE(crashed.ok());
    EXPECT_TRUE(crashed.status().IsCancelled()) << crashed.status();
  }

  InvocationEngine engine;
  auto recovery = RecoverJournal(dir, &engine.metrics());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_FALSE(recovery->tail_discarded());
  EXPECT_GT(recovery->records.size(), 1u);  // Header + committed steps.
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine.metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  DurableEnactOptions options;
  options.resume = &*recovery;
  auto resumed = EnactResilientDurable(workflow, *env.corpus.registry,
                                       inputs, engine, *journal, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();

  // Byte-identical outcome: outputs, provenance, and bookkeeping all match
  // the uninterrupted enactment.
  ASSERT_EQ(resumed->outputs.size(), baseline->outputs.size());
  for (size_t i = 0; i < baseline->outputs.size(); ++i) {
    EXPECT_TRUE(resumed->outputs[i].Equals(baseline->outputs[i]))
        << "workflow output " << i << " diverged";
  }
  ASSERT_EQ(resumed->invocations.size(), baseline->invocations.size());
  for (size_t i = 0; i < baseline->invocations.size(); ++i) {
    EXPECT_EQ(resumed->invocations[i].processor_name,
              baseline->invocations[i].processor_name);
    EXPECT_EQ(resumed->invocations[i].module_id,
              baseline->invocations[i].module_id);
  }
  EXPECT_EQ(resumed->missing_outputs, baseline->missing_outputs);
  EXPECT_EQ(resumed->skipped_processors, baseline->skipped_processors);
  // The committed prefix was replayed, not re-invoked.
  EXPECT_GT(engine.metrics().Snapshot().modules_replayed, 0u);
}

TEST(DurableEnactTest, TornStepCommitIsReinvokedOnResume) {
  const auto& env = GetEnvironment();
  const GeneratedWorkflow& item = PickWorkflow();
  const Workflow& workflow = item.workflow;
  const std::vector<Value>& inputs = item.seeds;

  InvocationEngine baseline_engine;
  auto baseline = EnactResilient(workflow, *env.corpus.registry, inputs,
                                 baseline_engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(baseline->invocations.size(), 2u);
  const std::string crash_key = baseline->invocations[1].module_id;

  const std::string dir = FreshDir("enact-torn");
  {
    InvocationEngine engine;
    auto journal = RunJournal::Create(dir, {}, &engine.metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    DurableEnactOptions options;
    options.crash.point = CrashPoint::kTornWrite;
    options.crash.key = crash_key;
    auto crashed = EnactResilientDurable(workflow, *env.corpus.registry,
                                         inputs, engine, *journal, options);
    ASSERT_FALSE(crashed.ok());
    EXPECT_TRUE(crashed.status().IsCancelled()) << crashed.status();
  }

  InvocationEngine engine;
  auto recovery = RecoverJournal(dir, &engine.metrics());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_TRUE(recovery->tail_discarded());
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine.metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  DurableEnactOptions options;
  options.resume = &*recovery;
  auto resumed = EnactResilientDurable(workflow, *env.corpus.registry,
                                       inputs, engine, *journal, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_EQ(resumed->outputs.size(), baseline->outputs.size());
  for (size_t i = 0; i < baseline->outputs.size(); ++i) {
    EXPECT_TRUE(resumed->outputs[i].Equals(baseline->outputs[i]));
  }
}

}  // namespace
}  // namespace dexa
