#include <algorithm>

#include <gtest/gtest.h>

#include "formats/alphabet.h"
#include "formats/entity_records.h"
#include "formats/kegg_flat.h"
#include "formats/reports.h"
#include "formats/sequence_record.h"
#include "formats/sniffer.h"

namespace dexa {
namespace {

SequenceData ProteinExample() {
  SequenceData data;
  data.accession = "P12345";
  data.name = "CYC_HUMAN";
  data.organism = "Homo sapiens";
  data.description = "Cytochrome c example";
  data.sequence = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVK";
  data.alphabet = SeqAlphabet::kProtein;
  return data;
}

SequenceData DnaExample() {
  SequenceData data;
  data.accession = "AB123456";
  data.name = "GENE1";
  data.organism = "Mus musculus";
  data.description = "coding sequence";
  data.sequence = "ATGGCTAAACGTGCTTAAGGTACGTACGATCGATCGGGCCCAAATTT";
  data.alphabet = SeqAlphabet::kDna;
  return data;
}

TEST(AlphabetTest, Validation) {
  EXPECT_TRUE(IsValidSequence("ACGT", SeqAlphabet::kDna));
  EXPECT_FALSE(IsValidSequence("ACGU", SeqAlphabet::kDna));
  EXPECT_TRUE(IsValidSequence("ACGU", SeqAlphabet::kRna));
  EXPECT_TRUE(IsValidSequence("MKWY", SeqAlphabet::kProtein));
  EXPECT_FALSE(IsValidSequence("MKX", SeqAlphabet::kProtein));
}

TEST(AlphabetTest, Classification) {
  EXPECT_EQ(ClassifySequence("ACGT"), SeqAlphabet::kDna);
  EXPECT_EQ(ClassifySequence("ACGU"), SeqAlphabet::kRna);
  EXPECT_EQ(ClassifySequence("MKWY"), SeqAlphabet::kProtein);
}

TEST(AlphabetTest, TranscriptionRoundTrip) {
  EXPECT_EQ(Transcribe("ACGT"), "ACGU");
  EXPECT_EQ(ReverseTranscribe("ACGU"), "ACGT");
  EXPECT_EQ(ReverseTranscribe(Transcribe("GATTACA")), "GATTACA");
}

TEST(AlphabetTest, ReverseComplement) {
  EXPECT_EQ(ReverseComplementDna("ACGT"), "ACGT");  // Palindromic.
  EXPECT_EQ(ReverseComplementDna("AAAC"), "GTTT");
  // Involution.
  EXPECT_EQ(ReverseComplementDna(ReverseComplementDna("GATTACA")), "GATTACA");
}

TEST(AlphabetTest, Translation) {
  EXPECT_EQ(Translate("ATGGCTAAA"), "MAK");
  EXPECT_EQ(Translate("AUGGCUAAA"), "MAK");  // RNA input too.
  EXPECT_EQ(Translate("ATGTAAATG"), "M");    // Stops at stop codon.
  EXPECT_EQ(Translate("AT"), "");            // Incomplete codon.
}

TEST(AlphabetTest, GcContentAndMass) {
  EXPECT_DOUBLE_EQ(GcContent("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(GcContent("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(GcContent(""), 0.0);
  EXPECT_GT(ProteinMass("MKW"), ProteinMass("MK"));
  EXPECT_NEAR(ProteinMass(""), 18.02, 1e-9);
}

TEST(SequenceRecordTest, FastaRoundTrip) {
  SequenceData data = ProteinExample();
  auto parsed = ParseFasta(RenderFasta(data));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, data);
}

TEST(SequenceRecordTest, FastaWrapsLongSequences) {
  SequenceData data = ProteinExample();
  data.sequence = std::string(150, 'M');
  std::string rendered = RenderFasta(data);
  auto parsed = ParseFasta(rendered);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sequence, data.sequence);
  EXPECT_GT(std::count(rendered.begin(), rendered.end(), '\n'), 2);
}

TEST(SequenceRecordTest, UniprotRoundTrip) {
  SequenceData data = ProteinExample();
  auto parsed = ParseUniprot(RenderUniprot(data));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, data);
}

TEST(SequenceRecordTest, EmblRoundTripDnaAndProtein) {
  for (SequenceData data : {DnaExample(), ProteinExample()}) {
    auto parsed = ParseEmbl(RenderEmbl(data));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, data);
  }
}

TEST(SequenceRecordTest, GenBankRoundTrip) {
  for (SequenceData data : {DnaExample(), ProteinExample()}) {
    auto parsed = ParseGenBank(RenderGenBank(data));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, data);
  }
}

TEST(SequenceRecordTest, PdbRoundTrip) {
  for (SequenceData data : {ProteinExample(), DnaExample()}) {
    auto parsed = ParsePdb(RenderPdb(data));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->accession, data.accession);
    EXPECT_EQ(parsed->sequence, data.sequence);
    EXPECT_EQ(parsed->organism, data.organism);
  }
}

TEST(SequenceRecordTest, ParsersRejectGarbage) {
  EXPECT_TRUE(ParseFasta("no header").status().IsParseError());
  EXPECT_TRUE(ParseUniprot("junk").status().IsParseError());
  EXPECT_TRUE(ParseEmbl("junk").status().IsParseError());
  EXPECT_TRUE(ParseGenBank("junk").status().IsParseError());
  EXPECT_TRUE(ParsePdb("junk").status().IsParseError());
}

TEST(KeggFlatTest, RoundTrip) {
  KeggFlatRecord record;
  record.Add("ENTRY", "hsa:7157  CDS");
  record.Add("NAME", "TP53");
  record.AddAll("PATHWAY", {"path:hsa04110", "path:hsa04115"});
  std::string rendered = RenderKeggFlat(record);
  auto parsed = ParseKeggFlat(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetFirst("ENTRY"), "hsa:7157  CDS");
  EXPECT_EQ(parsed->Get("PATHWAY").size(), 2u);
  EXPECT_EQ(parsed->GetFirst("MISSING"), "");
}

TEST(KeggFlatTest, RejectsUnterminated) {
  EXPECT_TRUE(ParseKeggFlat("ENTRY       x\n").status().IsParseError());
  EXPECT_TRUE(ParseKeggFlat("///\n").status().IsParseError());
  EXPECT_TRUE(
      ParseKeggFlat("            orphan\n///\n").status().IsParseError());
}

TEST(EntityRecordsTest, GeneRoundTrip) {
  GeneRecordData data;
  data.gene_id = "hsa:10042";
  data.symbol = "ABC1";
  data.organism = "Homo sapiens";
  data.definition = "transport protein";
  data.pathway_ids = {"path:hsa00100", "path:hsa00200"};
  data.go_term_ids = {"GO:0001000"};
  auto parsed = ParseGeneRecord(RenderGeneRecord(data));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->gene_id, data.gene_id);
  EXPECT_EQ(parsed->pathway_ids, data.pathway_ids);
  EXPECT_EQ(parsed->go_term_ids, data.go_term_ids);
}

TEST(EntityRecordsTest, EnzymeRoundTrip) {
  EnzymeRecordData data;
  data.ec_number = "1.2.3.4";
  data.name = "protein kinase";
  data.reaction = "C00001 <=> C00002";
  data.substrate_ids = {"C00001"};
  data.product_ids = {"C00002"};
  data.gene_ids = {"hsa:10001"};
  auto parsed = ParseEnzymeRecord(RenderEnzymeRecord(data));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ec_number, data.ec_number);
  EXPECT_EQ(parsed->substrate_ids, data.substrate_ids);
}

TEST(EntityRecordsTest, GlycanLigandCompoundRoundTrip) {
  GlycanRecordData glycan{"G00100", "glycan 100", "(Glc)2 (Gal)1", 540.5};
  auto parsed_glycan = ParseGlycanRecord(RenderGlycanRecord(glycan));
  ASSERT_TRUE(parsed_glycan.ok());
  EXPECT_EQ(parsed_glycan->glycan_id, glycan.glycan_id);
  EXPECT_NEAR(parsed_glycan->mass, glycan.mass, 0.01);

  LigandRecordData ligand{"L00100", "ligand-100", "C6H12O6", 180.2, {"P00001"}};
  auto parsed_ligand = ParseLigandRecord(RenderLigandRecord(ligand));
  ASSERT_TRUE(parsed_ligand.ok());
  EXPECT_EQ(parsed_ligand->target_accessions, ligand.target_accessions);

  CompoundRecordData compound{"C00100", "glucose-100", "C6H12O6", 180.2,
                              {"path:hsa00100"}};
  auto parsed_compound = ParseCompoundRecord(RenderCompoundRecord(compound));
  ASSERT_TRUE(parsed_compound.ok());
  EXPECT_EQ(parsed_compound->pathway_ids, compound.pathway_ids);
}

TEST(EntityRecordsTest, PathwayGoRoundTrip) {
  PathwayRecordData pathway{"path:hsa00100", "Cell cycle", "Homo sapiens",
                            {"hsa:10000"}, {"C00100"}};
  auto parsed = ParsePathwayRecord(RenderPathwayRecord(pathway));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->gene_ids, pathway.gene_ids);

  GoTermData term{"GO:0001000", "protein folding", "biological_process",
                  "The folding of proteins."};
  auto parsed_term = ParseGoTerm(RenderGoTerm(term));
  ASSERT_TRUE(parsed_term.ok());
  EXPECT_EQ(parsed_term->go_id, term.go_id);
  EXPECT_EQ(parsed_term->definition, term.definition);
}

TEST(EntityRecordsTest, InterProPfamDiseaseRoundTrip) {
  InterProRecordData interpro{"IPR001000", "kinase domain", "Domain",
                              {"P00001", "P00002"}};
  auto parsed_interpro = ParseInterProRecord(RenderInterProRecord(interpro));
  ASSERT_TRUE(parsed_interpro.ok());
  EXPECT_EQ(parsed_interpro->member_accessions, interpro.member_accessions);

  PfamRecordData pfam{"PF00100", "PF-binding", "CL0001", "A binding family."};
  auto parsed_pfam = ParsePfamRecord(RenderPfamRecord(pfam));
  ASSERT_TRUE(parsed_pfam.ok());
  EXPECT_EQ(parsed_pfam->clan, pfam.clan);

  DiseaseRecordData disease{"H00100", "hereditary anemia type 1",
                            "A disease.", {"hsa:10000"}};
  auto parsed_disease = ParseDiseaseRecord(RenderDiseaseRecord(disease));
  ASSERT_TRUE(parsed_disease.ok());
  EXPECT_EQ(parsed_disease->gene_ids, disease.gene_ids);
}

TEST(ReportsTest, AlignmentRoundTrip) {
  AlignmentReportData report;
  report.program = "blastp";
  report.database = "uniprot";
  report.query_accession = "P00001";
  report.hits.push_back({"P00002", "KIN1_MOUSE", 250.5, 1e-30, 0.92});
  report.hits.push_back({"P00003", "KIN1_YEAST", 80.0, 0.001, 0.41});
  auto parsed = ParseAlignmentReport(RenderAlignmentReport(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->hits.size(), 2u);
  EXPECT_EQ(parsed->hits[0].accession, "P00002");
  EXPECT_NEAR(parsed->hits[1].evalue, 0.001, 1e-9);
  EXPECT_EQ(parsed->hits[0].description, "KIN1_MOUSE");
}

TEST(ReportsTest, IdentificationRoundTrip) {
  IdentificationReportData report{"P00042", 0.87, 5.0, 12};
  auto parsed = ParseIdentificationReport(RenderIdentificationReport(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->matched_accession, "P00042");
  EXPECT_NEAR(parsed->score, 0.87, 1e-6);
  EXPECT_EQ(parsed->peptide_count, 12u);
}

TEST(ReportsTest, StatisticsRoundTrip) {
  StatisticsReportData report;
  report.title = "codon-usage";
  report.stats = {{"ATG", 3.0}, {"TAA", 1.0}};
  auto parsed = ParseStatisticsReport(RenderStatisticsReport(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->title, report.title);
  ASSERT_EQ(parsed->stats.size(), 2u);
  EXPECT_EQ(parsed->stats[0].first, "ATG");
}

TEST(SnifferTest, IdentifiesAllFormats) {
  EXPECT_EQ(SniffFormat(RenderFasta(ProteinExample())), "FastaRecord");
  EXPECT_EQ(SniffFormat(RenderUniprot(ProteinExample())), "UniprotRecord");
  EXPECT_EQ(SniffFormat(RenderEmbl(DnaExample())), "EMBLRecord");
  EXPECT_EQ(SniffFormat(RenderGenBank(DnaExample())), "GenBankRecord");
  EXPECT_EQ(SniffFormat(RenderPdb(ProteinExample())), "PDBRecord");

  GeneRecordData gene{"hsa:1", "A", "Homo sapiens", "d", {}, {}};
  EXPECT_EQ(SniffFormat(RenderGeneRecord(gene)), "KEGGGeneRecord");
  EnzymeRecordData enzyme{"1.1.1.1", "x", "r", {}, {}, {}};
  EXPECT_EQ(SniffFormat(RenderEnzymeRecord(enzyme)), "EnzymeRecord");
  GlycanRecordData glycan{"G00001", "g", "c", 1.0};
  EXPECT_EQ(SniffFormat(RenderGlycanRecord(glycan)), "GlycanRecord");
  LigandRecordData ligand{"L00001", "l", "f", 1.0, {}};
  EXPECT_EQ(SniffFormat(RenderLigandRecord(ligand)), "LigandRecord");
  CompoundRecordData compound{"C00001", "c", "f", 1.0, {}};
  EXPECT_EQ(SniffFormat(RenderCompoundRecord(compound)), "CompoundRecord");
  PathwayRecordData pathway{"path:hsa1", "p", "o", {}, {}};
  EXPECT_EQ(SniffFormat(RenderPathwayRecord(pathway)), "PathwayRecord");
  GoTermData term{"GO:1", "n", "ns", "d"};
  EXPECT_EQ(SniffFormat(RenderGoTerm(term)), "GORecord");
  InterProRecordData interpro{"IPR000001", "n", "Family", {}};
  EXPECT_EQ(SniffFormat(RenderInterProRecord(interpro)), "InterProRecord");
  PfamRecordData pfam{"PF00001", "n", "c", "d"};
  EXPECT_EQ(SniffFormat(RenderPfamRecord(pfam)), "PfamRecord");
  DiseaseRecordData disease{"H00001", "n", "d", {}};
  EXPECT_EQ(SniffFormat(RenderDiseaseRecord(disease)), "DiseaseRecord");

  AlignmentReportData alignment;
  alignment.program = "blastp";
  EXPECT_EQ(SniffFormat(RenderAlignmentReport(alignment)), "AlignmentReport");
  IdentificationReportData identification;
  EXPECT_EQ(SniffFormat(RenderIdentificationReport(identification)),
            "IdentificationReport");
  StatisticsReportData statistics;
  statistics.title = "t";
  EXPECT_EQ(SniffFormat(RenderStatisticsReport(statistics)),
            "StatisticsReport");
}

TEST(SnifferTest, RejectsNonRecords) {
  EXPECT_EQ(SniffFormat(""), "");
  EXPECT_EQ(SniffFormat("just some text"), "");
  EXPECT_EQ(SniffFormat("ACGTACGT"), "");
}

}  // namespace
}  // namespace dexa
