#include <set>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "corpus/corpus.h"
#include "corpus/term_values.h"
#include "kb/accessions.h"

namespace dexa {
namespace {

class CorpusTest : public ::testing::Test {
 protected:
  static const Corpus& corpus() {
    static const Corpus* instance = [] {
      auto built = BuildCorpus();
      EXPECT_TRUE(built.ok()) << built.status();
      return new Corpus(std::move(built).value());
    }();
    return *instance;
  }
};

TEST_F(CorpusTest, BuildsExpectedCounts) {
  EXPECT_EQ(corpus().available_ids.size(), 252u);
  EXPECT_EQ(corpus().retired_ids.size(), 72u);
  EXPECT_EQ(corpus().registry->size(), 324u);
}

TEST_F(CorpusTest, ModuleNamesAreUnique) {
  std::set<std::string> names;
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    EXPECT_TRUE(names.insert(module->spec().name).second)
        << "duplicate name " << module->spec().name;
  }
}

TEST_F(CorpusTest, AllParametersCarryValidAnnotations) {
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    for (const Parameter& param : module->spec().inputs) {
      EXPECT_NE(param.semantic_type, kInvalidConcept)
          << module->spec().name << "." << param.name;
    }
    for (const Parameter& param : module->spec().outputs) {
      EXPECT_NE(param.semantic_type, kInvalidConcept)
          << module->spec().name << "." << param.name;
    }
    EXPECT_FALSE(module->spec().outputs.empty()) << module->spec().name;
  }
}

TEST_F(CorpusTest, PopularityQuota) {
  size_t famous = 0, well_known = 0, known = 0;
  for (const std::string& id : corpus().available_ids) {
    double popularity = (*corpus().registry->Find(id))->spec().popularity;
    if (popularity >= 0.9) {
      ++famous;
    } else if (popularity >= 0.7) {
      ++well_known;
    } else if (popularity >= 0.5) {
      ++known;
    }
  }
  EXPECT_EQ(famous, 44u);
  EXPECT_EQ(well_known, 3u);
  EXPECT_EQ(known, 4u);
}

TEST_F(CorpusTest, RetrievalModulesServeRecords) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("EBI_GetUniprotRecord");
  ASSERT_TRUE(module.ok());
  auto out = (*module)->Invoke({Value::Str(kb.proteins()[0].accession)});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE((*out)[0].AsString().find(kb.proteins()[0].accession),
            std::string::npos);
  // Foreign accession -> abnormal termination.
  EXPECT_TRUE((*module)->Invoke({Value::Str("P99999")}).status().IsNotFound());
}

TEST_F(CorpusTest, GetBiologicalSequenceDispatchesOnNamespace) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("EBI_GetBiologicalSequence");
  ASSERT_TRUE(module.ok());
  auto protein_path =
      (*module)->Invoke({Value::Str(kb.proteins()[0].accession)});
  ASSERT_TRUE(protein_path.ok());
  EXPECT_EQ((*protein_path)[0].AsString(), kb.proteins()[0].sequence);
  auto dna_path =
      (*module)->Invoke({Value::Str(kb.proteins()[0].embl_accession)});
  ASSERT_TRUE(dna_path.ok());
  EXPECT_EQ((*dna_path)[0].AsString(), kb.genes()[0].dna_sequence);
}

TEST_F(CorpusTest, FormatConvertersValidateInputFormat) {
  auto converter = corpus().registry->FindByName("EBI_UniprotToFasta");
  ASSERT_TRUE(converter.ok());
  // A FASTA input into a Uniprot-expecting converter terminates abnormally.
  EXPECT_TRUE((*converter)
                  ->Invoke({Value::Str(">P00000 X desc\nMKT\n")})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CorpusTest, CompareSequencesRejectsMixedAlphabets) {
  auto module = corpus().registry->FindByName("CompareSequences");
  ASSERT_TRUE(module.ok());
  auto mixed = (*module)->Invoke({Value::Str("ACGT"), Value::Str("ACGU")});
  EXPECT_TRUE(mixed.status().IsInvalidArgument());
  auto same = (*module)->Invoke({Value::Str("ACGT"), Value::Str("ACGA")});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ((*same)[0].AsDouble(), 0.75);
}

TEST_F(CorpusTest, IdentifyHonorsOptionalTolerance) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("Identify");
  ASSERT_TRUE(module.ok());
  std::vector<Value> masses;
  for (double m : kb.proteins()[2].peptide_masses) {
    masses.push_back(Value::Real(m));
  }
  auto explicit_tolerance =
      (*module)->Invoke({Value::ListOf(masses), Value::Real(5.0)});
  ASSERT_TRUE(explicit_tolerance.ok()) << explicit_tolerance.status();
  EXPECT_NE((*explicit_tolerance)[0].AsString().find(
                kb.proteins()[2].accession),
            std::string::npos);
  auto default_tolerance =
      (*module)->Invoke({Value::ListOf(masses), Value::Null()});
  ASSERT_TRUE(default_tolerance.ok()) << default_tolerance.status();
  auto out_of_range =
      (*module)->Invoke({Value::ListOf(masses), Value::Real(99.0)});
  EXPECT_TRUE(out_of_range.status().IsInvalidArgument());
}

TEST_F(CorpusTest, RetiredTwinsBehaveLikeTargets) {
  const KnowledgeBase& kb = *corpus().kb;
  auto twin = corpus().registry->FindByName("soap_get_genes_by_pathway");
  auto target = corpus().registry->FindByName("get_genes_by_pathway");
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE(target.ok());
  Value input = Value::Str(kb.pathways()[0].pathway_id);
  auto twin_out = (*twin)->Invoke({input});
  auto target_out = (*target)->Invoke({input});
  ASSERT_TRUE(twin_out.ok());
  ASSERT_TRUE(target_out.ok());
  EXPECT_EQ((*twin_out)[0], (*target_out)[0]);
}

TEST_F(CorpusTest, DriftingTwinDisagreesOnOddEntities) {
  const KnowledgeBase& kb = *corpus().kb;
  auto twin = corpus().registry->FindByName("v1_GetUniprotRecord");
  auto target = corpus().registry->FindByName("EBI_GetUniprotRecord");
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE(target.ok());
  Value even = Value::Str(kb.proteins()[0].accession);
  Value odd = Value::Str(kb.proteins()[1].accession);
  EXPECT_EQ((*(*twin)->Invoke({even}))[0], (*(*target)->Invoke({even}))[0]);
  EXPECT_NE((*(*twin)->Invoke({odd}))[0], (*(*target)->Invoke({odd}))[0]);
}

TEST_F(CorpusTest, RetireDecayedModulesFlipsAvailability) {
  // Work on a private corpus so the shared fixture stays pristine.
  auto built = BuildCorpus();
  ASSERT_TRUE(built.ok());
  Corpus fresh = std::move(built).value();
  EXPECT_EQ(fresh.registry->RetiredModules().size(), 0u);
  ASSERT_TRUE(RetireDecayedModules(fresh).ok());
  EXPECT_EQ(fresh.registry->RetiredModules().size(), 72u);
  EXPECT_EQ(fresh.registry->AvailableModules().size(), 252u);
  auto retired = fresh.registry->FindByName("soap_binfo");
  ASSERT_TRUE(retired.ok());
  EXPECT_TRUE(
      (*retired)->Invoke({Value::Str("uniprot")}).status().IsDecayed());
}


TEST_F(CorpusTest, SoapTwinsShareTheirTargetsInterface) {
  // The 16 equivalent-retired modules must be interface-identical to their
  // current counterparts (that is what makes exact parameter mapping, and
  // hence equivalence, possible).
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    const std::string& name = module->spec().name;
    if (name.rfind("soap_", 0) != 0) continue;
    auto target = corpus().registry->FindByName(name.substr(5));
    if (!target.ok()) {
      // Record twins target a specific provider instead.
      target = corpus().registry->FindByName("KEGG_" + name.substr(5));
    }
    ASSERT_TRUE(target.ok()) << name;
    const ModuleSpec& twin_spec = module->spec();
    const ModuleSpec& target_spec = (*target)->spec();
    ASSERT_EQ(twin_spec.inputs.size(), target_spec.inputs.size()) << name;
    ASSERT_EQ(twin_spec.outputs.size(), target_spec.outputs.size()) << name;
    for (size_t i = 0; i < twin_spec.inputs.size(); ++i) {
      EXPECT_EQ(twin_spec.inputs[i].semantic_type,
                target_spec.inputs[i].semantic_type)
          << name;
      EXPECT_EQ(twin_spec.inputs[i].structural_type,
                target_spec.inputs[i].structural_type)
          << name;
    }
    for (size_t o = 0; o < twin_spec.outputs.size(); ++o) {
      EXPECT_EQ(twin_spec.outputs[o].semantic_type,
                target_spec.outputs[o].semantic_type)
          << name;
    }
  }
}

TEST_F(CorpusTest, ModuleIdsAreDenseAndStable) {
  // Ids are "mNNN" in registration order; the corpus relies on this for
  // reproducible annotation dumps.
  auto modules = corpus().registry->AllModules();
  for (size_t i = 0; i < modules.size(); ++i) {
    EXPECT_EQ(modules[i]->spec().id, "m" + ZeroPad(i, 3));
  }
}

TEST(TermValuesTest, RoundTripParts) {
  std::string term = MakeTermInstance("GO", "0001234", "protein folding");
  EXPECT_EQ(term, "GO:0001234 ! protein folding");
  EXPECT_TRUE(IsTermOfSource(term, "GO"));
  EXPECT_FALSE(IsTermOfSource(term, "PW"));
  EXPECT_EQ(TermId(term), "GO:0001234");
  EXPECT_EQ(TermSource(term), "GO");
  EXPECT_EQ(TermLabel(term), "protein folding");
  EXPECT_EQ(TermId("malformed"), "");
}

}  // namespace
}  // namespace dexa
