#include <set>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/engine_config.h"
#include "corpus/corpus.h"
#include "corpus/scale.h"
#include "corpus/term_values.h"
#include "kb/accessions.h"
#include "repair/repair.h"

namespace dexa {
namespace {

class CorpusTest : public ::testing::Test {
 protected:
  static const Corpus& corpus() {
    static const Corpus* instance = [] {
      auto built = BuildCorpus();
      EXPECT_TRUE(built.ok()) << built.status();
      return new Corpus(std::move(built).value());
    }();
    return *instance;
  }
};

TEST_F(CorpusTest, BuildsExpectedCounts) {
  EXPECT_EQ(corpus().available_ids.size(), 252u);
  EXPECT_EQ(corpus().retired_ids.size(), 72u);
  EXPECT_EQ(corpus().registry->size(), 324u);
}

TEST_F(CorpusTest, ModuleNamesAreUnique) {
  std::set<std::string> names;
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    EXPECT_TRUE(names.insert(module->spec().name).second)
        << "duplicate name " << module->spec().name;
  }
}

TEST_F(CorpusTest, AllParametersCarryValidAnnotations) {
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    for (const Parameter& param : module->spec().inputs) {
      EXPECT_NE(param.semantic_type, kInvalidConcept)
          << module->spec().name << "." << param.name;
    }
    for (const Parameter& param : module->spec().outputs) {
      EXPECT_NE(param.semantic_type, kInvalidConcept)
          << module->spec().name << "." << param.name;
    }
    EXPECT_FALSE(module->spec().outputs.empty()) << module->spec().name;
  }
}

TEST_F(CorpusTest, PopularityQuota) {
  size_t famous = 0, well_known = 0, known = 0;
  for (const std::string& id : corpus().available_ids) {
    double popularity = (*corpus().registry->Find(id))->spec().popularity;
    if (popularity >= 0.9) {
      ++famous;
    } else if (popularity >= 0.7) {
      ++well_known;
    } else if (popularity >= 0.5) {
      ++known;
    }
  }
  EXPECT_EQ(famous, 44u);
  EXPECT_EQ(well_known, 3u);
  EXPECT_EQ(known, 4u);
}

TEST_F(CorpusTest, RetrievalModulesServeRecords) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("EBI_GetUniprotRecord");
  ASSERT_TRUE(module.ok());
  auto out = (*module)->Invoke({Value::Str(kb.proteins()[0].accession)});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE((*out)[0].AsString().find(kb.proteins()[0].accession),
            std::string::npos);
  // Foreign accession -> abnormal termination.
  EXPECT_TRUE((*module)->Invoke({Value::Str("P99999")}).status().IsNotFound());
}

TEST_F(CorpusTest, GetBiologicalSequenceDispatchesOnNamespace) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("EBI_GetBiologicalSequence");
  ASSERT_TRUE(module.ok());
  auto protein_path =
      (*module)->Invoke({Value::Str(kb.proteins()[0].accession)});
  ASSERT_TRUE(protein_path.ok());
  EXPECT_EQ((*protein_path)[0].AsString(), kb.proteins()[0].sequence);
  auto dna_path =
      (*module)->Invoke({Value::Str(kb.proteins()[0].embl_accession)});
  ASSERT_TRUE(dna_path.ok());
  EXPECT_EQ((*dna_path)[0].AsString(), kb.genes()[0].dna_sequence);
}

TEST_F(CorpusTest, FormatConvertersValidateInputFormat) {
  auto converter = corpus().registry->FindByName("EBI_UniprotToFasta");
  ASSERT_TRUE(converter.ok());
  // A FASTA input into a Uniprot-expecting converter terminates abnormally.
  EXPECT_TRUE((*converter)
                  ->Invoke({Value::Str(">P00000 X desc\nMKT\n")})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CorpusTest, CompareSequencesRejectsMixedAlphabets) {
  auto module = corpus().registry->FindByName("CompareSequences");
  ASSERT_TRUE(module.ok());
  auto mixed = (*module)->Invoke({Value::Str("ACGT"), Value::Str("ACGU")});
  EXPECT_TRUE(mixed.status().IsInvalidArgument());
  auto same = (*module)->Invoke({Value::Str("ACGT"), Value::Str("ACGA")});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ((*same)[0].AsDouble(), 0.75);
}

TEST_F(CorpusTest, IdentifyHonorsOptionalTolerance) {
  const KnowledgeBase& kb = *corpus().kb;
  auto module = corpus().registry->FindByName("Identify");
  ASSERT_TRUE(module.ok());
  std::vector<Value> masses;
  for (double m : kb.proteins()[2].peptide_masses) {
    masses.push_back(Value::Real(m));
  }
  auto explicit_tolerance =
      (*module)->Invoke({Value::ListOf(masses), Value::Real(5.0)});
  ASSERT_TRUE(explicit_tolerance.ok()) << explicit_tolerance.status();
  EXPECT_NE((*explicit_tolerance)[0].AsString().find(
                kb.proteins()[2].accession),
            std::string::npos);
  auto default_tolerance =
      (*module)->Invoke({Value::ListOf(masses), Value::Null()});
  ASSERT_TRUE(default_tolerance.ok()) << default_tolerance.status();
  auto out_of_range =
      (*module)->Invoke({Value::ListOf(masses), Value::Real(99.0)});
  EXPECT_TRUE(out_of_range.status().IsInvalidArgument());
}

TEST_F(CorpusTest, RetiredTwinsBehaveLikeTargets) {
  const KnowledgeBase& kb = *corpus().kb;
  auto twin = corpus().registry->FindByName("soap_get_genes_by_pathway");
  auto target = corpus().registry->FindByName("get_genes_by_pathway");
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE(target.ok());
  Value input = Value::Str(kb.pathways()[0].pathway_id);
  auto twin_out = (*twin)->Invoke({input});
  auto target_out = (*target)->Invoke({input});
  ASSERT_TRUE(twin_out.ok());
  ASSERT_TRUE(target_out.ok());
  EXPECT_EQ((*twin_out)[0], (*target_out)[0]);
}

TEST_F(CorpusTest, DriftingTwinDisagreesOnOddEntities) {
  const KnowledgeBase& kb = *corpus().kb;
  auto twin = corpus().registry->FindByName("v1_GetUniprotRecord");
  auto target = corpus().registry->FindByName("EBI_GetUniprotRecord");
  ASSERT_TRUE(twin.ok());
  ASSERT_TRUE(target.ok());
  Value even = Value::Str(kb.proteins()[0].accession);
  Value odd = Value::Str(kb.proteins()[1].accession);
  EXPECT_EQ((*(*twin)->Invoke({even}))[0], (*(*target)->Invoke({even}))[0]);
  EXPECT_NE((*(*twin)->Invoke({odd}))[0], (*(*target)->Invoke({odd}))[0]);
}

TEST_F(CorpusTest, RetireDecayedModulesFlipsAvailability) {
  // Work on a private corpus so the shared fixture stays pristine.
  auto built = BuildCorpus();
  ASSERT_TRUE(built.ok());
  Corpus fresh = std::move(built).value();
  EXPECT_EQ(fresh.registry->RetiredModules().size(), 0u);
  ASSERT_TRUE(RetireDecayedModules(fresh).ok());
  EXPECT_EQ(fresh.registry->RetiredModules().size(), 72u);
  EXPECT_EQ(fresh.registry->AvailableModules().size(), 252u);
  auto retired = fresh.registry->FindByName("soap_binfo");
  ASSERT_TRUE(retired.ok());
  EXPECT_TRUE(
      (*retired)->Invoke({Value::Str("uniprot")}).status().IsDecayed());
}


TEST_F(CorpusTest, SoapTwinsShareTheirTargetsInterface) {
  // The 16 equivalent-retired modules must be interface-identical to their
  // current counterparts (that is what makes exact parameter mapping, and
  // hence equivalence, possible).
  for (const ModulePtr& module : corpus().registry->AllModules()) {
    const std::string& name = module->spec().name;
    if (name.rfind("soap_", 0) != 0) continue;
    auto target = corpus().registry->FindByName(name.substr(5));
    if (!target.ok()) {
      // Record twins target a specific provider instead.
      target = corpus().registry->FindByName("KEGG_" + name.substr(5));
    }
    ASSERT_TRUE(target.ok()) << name;
    const ModuleSpec& twin_spec = module->spec();
    const ModuleSpec& target_spec = (*target)->spec();
    ASSERT_EQ(twin_spec.inputs.size(), target_spec.inputs.size()) << name;
    ASSERT_EQ(twin_spec.outputs.size(), target_spec.outputs.size()) << name;
    for (size_t i = 0; i < twin_spec.inputs.size(); ++i) {
      EXPECT_EQ(twin_spec.inputs[i].semantic_type,
                target_spec.inputs[i].semantic_type)
          << name;
      EXPECT_EQ(twin_spec.inputs[i].structural_type,
                target_spec.inputs[i].structural_type)
          << name;
    }
    for (size_t o = 0; o < twin_spec.outputs.size(); ++o) {
      EXPECT_EQ(twin_spec.outputs[o].semantic_type,
                target_spec.outputs[o].semantic_type)
          << name;
    }
  }
}

TEST_F(CorpusTest, ModuleIdsAreDenseAndStable) {
  // Ids are "mNNN" in registration order; the corpus relies on this for
  // reproducible annotation dumps.
  auto modules = corpus().registry->AllModules();
  for (size_t i = 0; i < modules.size(); ++i) {
    EXPECT_EQ(modules[i]->spec().id, "m" + ZeroPad(i, 3));
  }
}

// ---------------------------------------------------------------------
// The synthetic scale corpus: 10k-capable, pure function of (seed, index),
// with four service-shaped kinds beyond the paper's five.

class ScaleCorpusTest : public ::testing::Test {
 protected:
  static const ScaleCorpus& scale() {
    static const ScaleCorpus* instance = [] {
      auto built = BuildScaleCorpus({/*seed=*/11, /*modules=*/27});
      EXPECT_TRUE(built.ok()) << built.status();
      return new ScaleCorpus(std::move(built).value());
    }();
    return *instance;
  }

  /// The first registered module of `kind`.
  static ModulePtr ModuleOfKind(ModuleKind kind) {
    for (size_t i = 0; i < scale().module_ids.size(); ++i) {
      if (ScaleKindOf(i) == kind) {
        return *scale().registry->Find(scale().module_ids[i]);
      }
    }
    ADD_FAILURE() << "no module of kind " << ModuleKindName(kind);
    return nullptr;
  }

  /// A pooled input value a module of `kind` accepts.
  static Value NaturalInput(ModuleKind kind) {
    switch (kind) {
      case ModuleKind::kStatefulService:
        return Value::Str("s:0:init");
      case ModuleKind::kPaginatedRetrieval:
        return Value::Str("cursor:0");
      default:
        return Value::Str("alpha");
    }
  }
};

TEST_F(ScaleCorpusTest, BuildIsAPureFunctionOfSeedAndIndex) {
  auto again = BuildScaleCorpus({/*seed=*/11, /*modules=*/27});
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_EQ(again->module_ids, scale().module_ids);
  // Behaviors are reproduced too, not just the directory of names: every
  // module computes the same outputs in the rebuilt corpus.
  for (const std::string& id : scale().module_ids) {
    ModulePtr ours = *scale().registry->Find(id);
    ModulePtr theirs = *again->registry->Find(id);
    EXPECT_EQ(ours->spec().name, theirs->spec().name);
    EXPECT_EQ(ours->spec().kind, theirs->spec().kind);
    const std::vector<Value> inputs = {NaturalInput(ours->spec().kind)};
    auto a = ours->Invoke(inputs);
    auto b = theirs->Invoke(inputs);
    ASSERT_EQ(a.ok(), b.ok()) << id;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << id;
    }
  }
  // A different seed reshapes behavior (same directory, different draws).
  auto other = BuildScaleCorpus({/*seed=*/12, /*modules=*/27});
  ASSERT_TRUE(other.ok()) << other.status();
  ModulePtr fmt = ModuleOfKind(ModuleKind::kFormatTransformation);
  ModulePtr fmt_other = *other->registry->Find(fmt->spec().id);
  EXPECT_NE(*fmt->Invoke({Value::Str("alpha")}),
            *fmt_other->Invoke({Value::Str("alpha")}));
}

TEST_F(ScaleCorpusTest, EveryKindRoundTripsThroughAnnotation) {
  // All nine kinds present in a 27-module corpus, three modules each.
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(scale().registry->AllModules()[i]->spec().kind, ScaleKindOf(i));
  }
  auto registry = std::make_unique<ModuleRegistry>();
  for (const ModulePtr& module : scale().registry->AllModules()) {
    ASSERT_TRUE(registry->Register(module).ok());
  }
  EngineConfig config = EngineConfig().Threads(1).Seed(0xA11).MaxAttempts(4);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      scale().ontology.get(), scale().pool.get(), engine.get());
  auto report = AnnotateRegistry(generator, *registry);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->complete()) << report->run_status;
  // Nothing decays at schema epoch 0, and every module — including the
  // stateful, paginated, rate-limited and drifting ones — yields examples.
  EXPECT_EQ(report->annotated, scale().module_ids.size());
  EXPECT_EQ(report->decayed, 0u);
  for (const std::string& id : scale().module_ids) {
    EXPECT_FALSE(registry->DataExamplesOf(id).empty()) << id;
  }
}

TEST_F(ScaleCorpusTest, StatefulServiceCarriesStateAcrossInvocations) {
  ModulePtr session = ModuleOfKind(ModuleKind::kStatefulService);
  auto first = session->Invoke({Value::Str("s:0:init")});
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string state1 = (*first)[0].AsString();
  EXPECT_EQ(state1.rfind("s:1:", 0), 0u) << state1;

  // The output is itself a valid input: state carries over by chaining.
  auto second = session->Invoke({(*first)[0]});
  ASSERT_TRUE(second.ok()) << second.status();
  const std::string state2 = (*second)[0].AsString();
  EXPECT_EQ(state2.rfind("s:2:", 0), 0u) << state2;
  EXPECT_NE(state1, state2);

  // The transition is a function of the state, not of invocation history.
  auto replay = session->Invoke({Value::Str(state1)});
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ((*replay)[0].AsString(), state2);

  // Non-state inputs are rejected, not misinterpreted.
  EXPECT_TRUE(session->Invoke({Value::Str("alpha")})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ScaleCorpusTest, PaginatedRetrievalWalksCursorsToExhaustion) {
  ModulePtr pager = ModuleOfKind(ModuleKind::kPaginatedRetrieval);
  std::vector<std::string> pages;
  Value cursor = Value::Str("cursor:0");
  for (int hops = 0; hops < 10; ++hops) {
    auto out = pager->Invoke({cursor});
    ASSERT_TRUE(out.ok()) << out.status();
    ASSERT_EQ(out->size(), 2u);
    pages.push_back((*out)[0].AsString());
    if ((*out)[1].AsString() == "cursor:end") break;
    cursor = (*out)[1];
  }
  // The walk terminates after three pages, each a distinct v1 record.
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_NE(pages[0], pages[1]);
  EXPECT_NE(pages[1], pages[2]);
  for (const std::string& page : pages) {
    EXPECT_EQ(page.rfind("v1|page=", 0), 0u) << page;
  }
  // The end cursor and garbage cursors both fail typed.
  EXPECT_TRUE(pager->Invoke({Value::Str("cursor:end")})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      pager->Invoke({Value::Str("alpha")}).status().IsInvalidArgument());
}

TEST_F(ScaleCorpusTest, RateLimitedEndpointThrottlesDeterministically) {
  ModulePtr limited = ModuleOfKind(ModuleKind::kRateLimited);
  size_t throttled = 0, immediate = 0;
  for (int i = 0; i < 32; ++i) {
    const std::vector<Value> inputs = {Value::Str("req" + std::to_string(i))};
    InvocationContext first;
    auto attempt0 = limited->Invoke(inputs, first);
    // Deterministic: the same (input, attempt) draw repeats exactly.
    InvocationContext again;
    auto attempt0_again = limited->Invoke(inputs, again);
    ASSERT_EQ(attempt0.ok(), attempt0_again.ok()) << i;
    if (attempt0.ok()) {
      ++immediate;
      EXPECT_EQ(*attempt0, *attempt0_again);
    } else {
      ++throttled;
      EXPECT_TRUE(attempt0.status().IsTransient()) << attempt0.status();
      EXPECT_GT(first.charged_ns, 0u);  // throttling charges latency
    }
    // From the second attempt on the endpoint always answers.
    InvocationContext retry;
    retry.attempt = 1;
    auto attempt1 = limited->Invoke(inputs, retry);
    ASSERT_TRUE(attempt1.ok()) << attempt1.status();
    if (attempt0.ok()) {
      EXPECT_EQ(*attempt0, *attempt1);
    }
  }
  // The 429s hit a deterministic half of the key space, not all or none.
  EXPECT_GT(throttled, 0u);
  EXPECT_GT(immediate, 0u);
}

TEST_F(ScaleCorpusTest, SchemaDriftIsDetectedByTheDecayScan) {
  // Own corpus instance: the test mutates the drift world and retires
  // modules, which must not leak into the shared fixture.
  auto corpus = BuildScaleCorpus({/*seed=*/11, /*modules=*/18});
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  // One single-processor probe workflow per schema-drifting module.
  const ConceptId alpha = corpus->ontology->Find("AlphaToken");
  ASSERT_NE(alpha, kInvalidConcept);
  WorkflowCorpus probes;
  std::vector<std::string> drifting;
  for (size_t i = 0; i < corpus->module_ids.size(); ++i) {
    if (ScaleKindOf(i) != ModuleKind::kSchemaDrifting) continue;
    drifting.push_back(corpus->module_ids[i]);
    GeneratedWorkflow item;
    item.workflow.id = "probe-" + corpus->module_ids[i];
    item.workflow.name = item.workflow.id;
    Parameter key;
    key.name = "key";
    key.semantic_type = alpha;
    item.workflow.inputs = {key};
    Processor step;
    step.name = "fetch";
    step.module_id = corpus->module_ids[i];
    step.input_sources = {PortSource{}};  // workflow input 0
    item.workflow.processors = {step};
    item.workflow.outputs = {{"record", PortSource{0, 0}}};
    item.seeds = {Value::Str("alpha")};
    probes.items.push_back(std::move(item));
  }
  ASSERT_EQ(drifting.size(), 2u);

  // Epoch 0: the drifting modules still honor the v1 contract.
  auto clean = ScanForDecay(*corpus->registry, probes,
                            InvocationEngine::Serial(),
                            corpus->registry.get());
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->workflows_enacted, probes.items.size());
  EXPECT_TRUE(clean->decayed_ids.empty());
  EXPECT_EQ(clean->newly_retired, 0u);

  // The provider rolls out an incompatible schema: every drifting module
  // now fails permanent-class, and the scan retires exactly those.
  corpus->world->AdvanceEpoch();
  auto decayed = ScanForDecay(*corpus->registry, probes,
                              InvocationEngine::Serial(),
                              corpus->registry.get());
  ASSERT_TRUE(decayed.ok()) << decayed.status();
  EXPECT_EQ(decayed->workflows_degraded, probes.items.size());
  EXPECT_EQ(decayed->decayed_ids, drifting);
  EXPECT_EQ(decayed->newly_retired, drifting.size());
  for (const std::string& id : drifting) {
    EXPECT_FALSE((*corpus->registry->Find(id))->available()) << id;
  }
}

TEST(TermValuesTest, RoundTripParts) {
  std::string term = MakeTermInstance("GO", "0001234", "protein folding");
  EXPECT_EQ(term, "GO:0001234 ! protein folding");
  EXPECT_TRUE(IsTermOfSource(term, "GO"));
  EXPECT_FALSE(IsTermOfSource(term, "PW"));
  EXPECT_EQ(TermId(term), "GO:0001234");
  EXPECT_EQ(TermSource(term), "GO");
  EXPECT_EQ(TermLabel(term), "protein folding");
  EXPECT_EQ(TermId("malformed"), "");
}

}  // namespace
}  // namespace dexa
