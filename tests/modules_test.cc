#include <gtest/gtest.h>

#include "corpus/synthetic_module.h"
#include "modules/data_example.h"
#include "modules/module.h"
#include "modules/registry.h"
#include "ontology/mygrid.h"

namespace dexa {
namespace {

ModulePtr MakeEchoModule(const Ontology& onto, const std::string& id = "m1",
                         const std::string& name = "Echo") {
  ModuleSpec spec;
  spec.id = id;
  spec.name = name;
  spec.kind = ModuleKind::kFormatTransformation;
  Parameter in;
  in.name = "in";
  in.structural_type = StructuralType::String();
  in.semantic_type = onto.Find("TextDocument");
  Parameter out = in;
  out.name = "out";
  spec.inputs = {in};
  spec.outputs = {out};
  return std::make_shared<SyntheticModule>(
      spec, [](const std::vector<Value>& inputs) -> Result<std::vector<Value>> {
        return std::vector<Value>{inputs[0]};
      });
}

TEST(ModuleTest, InvokeChecksArity) {
  Ontology onto = BuildMyGridOntology();
  ModulePtr echo = MakeEchoModule(onto);
  EXPECT_TRUE(echo->Invoke({}).status().IsInvalidArgument());
  EXPECT_TRUE(echo->Invoke({Value::Str("a"), Value::Str("b")})
                  .status()
                  .IsInvalidArgument());
}

TEST(ModuleTest, InvokeChecksStructuralTypes) {
  Ontology onto = BuildMyGridOntology();
  ModulePtr echo = MakeEchoModule(onto);
  EXPECT_TRUE(echo->Invoke({Value::Int(1)}).status().IsInvalidArgument());
  auto ok = echo->Invoke({Value::Str("hello")});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].AsString(), "hello");
}

TEST(ModuleTest, NullRejectedForRequiredInputs) {
  Ontology onto = BuildMyGridOntology();
  ModulePtr echo = MakeEchoModule(onto);
  EXPECT_TRUE(echo->Invoke({Value::Null()}).status().IsInvalidArgument());
}

TEST(ModuleTest, RetiredModuleIsDecayed) {
  Ontology onto = BuildMyGridOntology();
  ModulePtr echo = MakeEchoModule(onto);
  EXPECT_TRUE(echo->available());
  echo->Retire();
  EXPECT_FALSE(echo->available());
  EXPECT_TRUE(echo->Invoke({Value::Str("x")}).status().IsDecayed());
}

TEST(ModuleTest, GroundTruthExposed) {
  Ontology onto = BuildMyGridOntology();
  ModuleSpec spec = MakeEchoModule(onto)->spec();
  spec.id = "m2";
  spec.name = "Classified";
  auto module = std::make_shared<SyntheticModule>(
      spec,
      [](const std::vector<Value>& inputs) -> Result<std::vector<Value>> {
        return std::vector<Value>{inputs[0]};
      },
      2, [](const std::vector<Value>& inputs) {
        return inputs[0].AsString().size() % 2 == 0 ? 0 : 1;
      });
  ASSERT_NE(module->ground_truth(), nullptr);
  EXPECT_EQ(module->ground_truth()->num_classes(), 2);
  EXPECT_EQ(module->ground_truth()->ClassOf({Value::Str("ab")}), 0);
  EXPECT_EQ(module->ground_truth()->ClassOf({Value::Str("abc")}), 1);
}

TEST(ModuleKindTest, Names) {
  EXPECT_STREQ(ModuleKindName(ModuleKind::kFormatTransformation),
               "Format transformation");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kDataRetrieval), "Data retrieval");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kMappingIdentifiers),
               "Mapping identifiers");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kFiltering), "Filtering");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kDataAnalysis), "Data analysis");
}

TEST(DataExampleTest, EqualityAndRendering) {
  DataExample a;
  a.inputs = {Value::Str("P00001")};
  a.outputs = {Value::Str("record")};
  DataExample b = a;
  EXPECT_TRUE(a == b);
  b.outputs[0] = Value::Str("other");
  EXPECT_FALSE(a == b);
  EXPECT_EQ(RenderDataExample(a), "Input: \"P00001\" -> Output: \"record\"");
}

TEST(RegistryTest, RegisterAndLookup) {
  Ontology onto = BuildMyGridOntology();
  ModuleRegistry registry;
  ASSERT_TRUE(registry.Register(MakeEchoModule(onto)).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Find("m1").ok());
  EXPECT_TRUE(registry.FindByName("Echo").ok());
  EXPECT_TRUE(registry.Find("nope").status().IsNotFound());
  EXPECT_TRUE(registry.FindByName("nope").status().IsNotFound());
  EXPECT_TRUE(registry.Register(nullptr).IsInvalidArgument());
}

TEST(RegistryTest, RejectsDuplicates) {
  Ontology onto = BuildMyGridOntology();
  ModuleRegistry registry;
  ASSERT_TRUE(registry.Register(MakeEchoModule(onto)).ok());
  EXPECT_TRUE(registry.Register(MakeEchoModule(onto))
                  .IsAlreadyExists());
  // Same name, different id is also rejected.
  EXPECT_TRUE(registry.Register(MakeEchoModule(onto, "m9", "Echo"))
                  .IsAlreadyExists());
}

TEST(RegistryTest, AvailabilityPartition) {
  Ontology onto = BuildMyGridOntology();
  ModuleRegistry registry;
  ModulePtr a = MakeEchoModule(onto, "a", "A");
  ModulePtr b = MakeEchoModule(onto, "b", "B");
  ASSERT_TRUE(registry.Register(a).ok());
  ASSERT_TRUE(registry.Register(b).ok());
  b->Retire();
  EXPECT_EQ(registry.AllModules().size(), 2u);
  EXPECT_EQ(registry.AvailableModules().size(), 1u);
  EXPECT_EQ(registry.RetiredModules().size(), 1u);
  EXPECT_EQ(registry.RetiredModules()[0]->spec().id, "b");
}

TEST(RegistryTest, DataExampleStorage) {
  Ontology onto = BuildMyGridOntology();
  ModuleRegistry registry;
  ASSERT_TRUE(registry.Register(MakeEchoModule(onto)).ok());
  EXPECT_FALSE(registry.HasDataExamples("m1"));
  EXPECT_TRUE(registry.DataExamplesOf("m1").empty());

  DataExample example;
  example.inputs = {Value::Str("x")};
  example.outputs = {Value::Str("x")};
  ASSERT_TRUE(registry.SetDataExamples("m1", {example}).ok());
  EXPECT_TRUE(registry.HasDataExamples("m1"));
  EXPECT_EQ(registry.DataExamplesOf("m1").size(), 1u);
  EXPECT_TRUE(registry.SetDataExamples("nope", {}).IsNotFound());
}

}  // namespace
}  // namespace dexa
