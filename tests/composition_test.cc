// Tests of example-guided composition (Section 8 future work) and
// behavior-based module discovery.

#include <gtest/gtest.h>

#include "core/composition.h"
#include "core/discovery.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class CompositionTest : public ::testing::Test {
 protected:
  CompositionTest()
      : env_(GetEnvironment()),
        composer_(env_.corpus.ontology.get(), env_.corpus.registry.get(),
                  env_.pool.get()) {}

  ConceptId C(const char* name) { return env_.corpus.ontology->Find(name); }

  std::string NameOf(const std::string& module_id) {
    return (*env_.corpus.registry->Find(module_id))->spec().name;
  }

  const testing_env::Environment& env_;
  ExampleGuidedComposer composer_;
};

TEST_F(CompositionTest, FindsSingleStepChains) {
  CompositionRequest request;
  request.source_concept = C("UniprotAccession");
  request.target_concept = C("UniprotRecord");
  request.max_depth = 1;
  auto candidates = composer_.Compose(request);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  ASSERT_FALSE(candidates->empty());
  // Every candidate is a single retrieval returning a Uniprot record.
  for (const CompositionCandidate& candidate : *candidates) {
    EXPECT_EQ(candidate.module_ids.size(), 1u);
    EXPECT_NE(NameOf(candidate.module_ids[0]).find("GetUniprotRecord"),
              std::string::npos);
    EXPECT_TRUE(candidate.witness_output.is_string());
  }
}

TEST_F(CompositionTest, FindsMultiStepChains) {
  // UniprotAccession -> ... -> AlignmentReport requires going through a
  // record (GetUniprotRecord then SearchSimple, the paper's Figure 1).
  CompositionRequest request;
  request.source_concept = C("UniprotAccession");
  request.target_concept = C("AlignmentReport");
  request.max_depth = 2;
  auto candidates = composer_.Compose(request);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  ASSERT_FALSE(candidates->empty());
  const CompositionCandidate& best = (*candidates)[0];
  ASSERT_EQ(best.module_ids.size(), 2u);
  EXPECT_NE(NameOf(best.module_ids[0]).find("GetUniprotRecord"),
            std::string::npos);
  EXPECT_NE(NameOf(best.module_ids[1]).find("SearchSimple"),
            std::string::npos);
  // The witness output is a real alignment report.
  EXPECT_NE(best.witness_output.AsString().find("PROGRAM"),
            std::string::npos);
}

TEST_F(CompositionTest, ValidationPrunesTypeOnlyChains) {
  // DNASequence -> ProteinSequence: translation works; chains through
  // RNA-only modules that would reject DNA never validate.
  CompositionRequest request;
  request.source_concept = C("DNASequence");
  request.target_concept = C("ProteinSequence");
  request.max_depth = 1;
  auto candidates = composer_.Compose(request);
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  for (const CompositionCandidate& candidate : *candidates) {
    EXPECT_NE(NameOf(candidate.module_ids[0]).find("TranslateDNA"),
              std::string::npos)
        << NameOf(candidate.module_ids[0]);
  }
}

TEST_F(CompositionTest, RespectsDepthLimit) {
  CompositionRequest request;
  request.source_concept = C("UniprotAccession");
  request.target_concept = C("AlignmentReport");
  request.max_depth = 1;  // Too short: no direct accession->report module
                          // except homology search via... none at depth 1
                          // with exact output (GetHomologous yields a list).
  auto candidates = composer_.Compose(request);
  ASSERT_TRUE(candidates.ok());
  for (const CompositionCandidate& candidate : *candidates) {
    EXPECT_LE(candidate.module_ids.size(), 1u);
  }
}

TEST_F(CompositionTest, RejectsInvalidEndpoints) {
  CompositionRequest request;  // Unset concepts.
  EXPECT_TRUE(composer_.Compose(request).status().IsInvalidArgument());
}

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest()
      : env_(GetEnvironment()),
        discovery_(env_.corpus.ontology.get(), env_.corpus.registry.get()) {}

  ConceptId C(const char* name) { return env_.corpus.ontology->Find(name); }

  const testing_env::Environment& env_;
  BehaviorDiscovery discovery_;
};

TEST_F(DiscoveryTest, RanksExactSignaturesFirst) {
  DiscoveryQuery query;
  query.input_concept = C("UniprotAccession");
  query.output_concept = C("ProteinSequence");
  auto hits = discovery_.Search(query, 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].module_name.find("GetProteinSequence"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
  // The contextual GetBiologicalSequence providers follow.
  bool saw_contextual = false;
  for (const DiscoveryHit& hit : hits) {
    if (hit.module_name.find("GetBiologicalSequence") != std::string::npos) {
      saw_contextual = true;
      EXPECT_LT(hit.score, 1.0);
    }
  }
  EXPECT_TRUE(saw_contextual);
}

TEST_F(DiscoveryTest, ExampleBonusSeparatesBehaviors) {
  // Query: NucleotideSequence -> Fraction, with a GC-content example. The
  // sequence is GC/AT-asymmetric so only the GC statistic reproduces it.
  const std::string dna = "GGGCCCAT";  // GC = 0.75, AT = 0.25.
  DiscoveryQuery query;
  query.input_concept = C("NucleotideSequence");
  query.input_type = StructuralType::String();
  query.output_concept = C("Fraction");
  query.output_type = StructuralType::Double();
  DataExample example;
  example.inputs = {Value::Str(dna)};
  example.outputs = {Value::Real(0.75)};
  query.example = example;

  auto hits = discovery_.Search(query, 5);
  ASSERT_FALSE(hits.empty());
  // The GC-content providers reproduce the example and outrank the other
  // Fraction-valued statistics.
  EXPECT_NE(hits[0].module_name.find("ComputeGcContent"), std::string::npos);
  EXPECT_GT(hits[0].score, 1.5);
  EXPECT_NE(hits[0].why.find("reproduces the example"), std::string::npos);
  bool saw_other = false;
  for (const DiscoveryHit& hit : hits) {
    if (hit.module_name.find("ComputeGcContent") == std::string::npos) {
      saw_other = true;
      EXPECT_LT(hit.score, hits[0].score);
    }
  }
  EXPECT_TRUE(saw_other);
}

TEST_F(DiscoveryTest, RespectsTopK) {
  DiscoveryQuery query;
  query.input_concept = C("UniprotAccession");
  query.output_concept = C("UniprotRecord");
  auto hits = discovery_.Search(query, 2);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(DiscoveryTest, EmptyWhenNothingMatches) {
  DiscoveryQuery query;
  query.input_concept = C("GlycanId");
  query.output_concept = C("PeptideMassList");
  query.output_type = StructuralType::List(StructuralType::Double());
  auto hits = discovery_.Search(query);
  EXPECT_TRUE(hits.empty());
}

}  // namespace
}  // namespace dexa
