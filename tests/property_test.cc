// Property-based suites (parameterized gtest): invariants swept over the
// whole corpus, the identifier grammars, the flat-file formats, the
// ontology, and randomized values.

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/coverage.h"
#include "core/engine_config.h"
#include "core/metrics.h"
#include "corpus/behaviors.h"
#include "corpus/fault_injector.h"
#include "durability/durable_annotate.h"
#include "durability/journal.h"
#include "core/run_api.h"
#include "corpus/scale.h"
#include "engine/concept_cache.h"
#include "engine/invocation_engine.h"
#include "formats/sniffer.h"
#include "kb/accessions.h"
#include "kb/render.h"
#include "shard/sharded_annotate.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

// ---------------------------------------------------------------------
// Per-module invariants over all 252 annotated modules.

class ModuleAnnotationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModuleAnnotationProperty, AnnotationInvariantsHold) {
  const auto& env = GetEnvironment();
  const std::string& id =
      env.corpus.available_ids[static_cast<size_t>(GetParam())];
  ModulePtr module = *env.corpus.registry->Find(id);
  const ModuleSpec& spec = module->spec();
  const DataExampleSet& examples = env.corpus.registry->DataExamplesOf(id);
  ASSERT_FALSE(examples.empty()) << spec.name;

  for (const DataExample& example : examples) {
    // Arity and structural conformance.
    ASSERT_EQ(example.inputs.size(), spec.inputs.size()) << spec.name;
    ASSERT_EQ(example.outputs.size(), spec.outputs.size()) << spec.name;
    ASSERT_EQ(example.input_partitions.size(), spec.inputs.size())
        << spec.name;
    for (size_t i = 0; i < spec.inputs.size(); ++i) {
      EXPECT_TRUE(example.inputs[i].MatchesType(spec.inputs[i].structural_type))
          << spec.name << "." << spec.inputs[i].name;
      // Recorded partitions are subsumed by the declared concepts.
      if (example.input_partitions[i] != kInvalidConcept) {
        EXPECT_TRUE(env.corpus.ontology->IsSubsumedBy(
            example.input_partitions[i], spec.inputs[i].semantic_type))
            << spec.name;
      }
    }
    for (size_t o = 0; o < spec.outputs.size(); ++o) {
      EXPECT_TRUE(
          example.outputs[o].MatchesType(spec.outputs[o].structural_type))
          << spec.name << "." << spec.outputs[o].name;
    }
    // Replayability: the stored outputs are what the module still produces.
    auto outputs = InvocationEngine::Serial().Invoke(*module, example.inputs);
    ASSERT_TRUE(outputs.ok()) << spec.name << ": " << outputs.status();
    for (size_t o = 0; o < outputs->size(); ++o) {
      EXPECT_EQ((*outputs)[o], example.outputs[o]) << spec.name;
    }
  }

  // Metric bounds.
  auto metrics = EvaluateBehaviorMetrics(*module, examples);
  ASSERT_TRUE(metrics.ok()) << spec.name;
  EXPECT_GE(metrics->completeness(), 0.0);
  EXPECT_LE(metrics->completeness(), 1.0);
  EXPECT_GE(metrics->conciseness(), 0.0);
  EXPECT_LE(metrics->conciseness(), 1.0);
  EXPECT_LE(metrics->classes_covered, metrics->num_classes);
  EXPECT_LT(metrics->redundant_examples, metrics->num_examples);

  // Coverage bounds; inputs always fully covered on this corpus.
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  CoverageReport report = analyzer.Analyze(spec, examples);
  EXPECT_TRUE(report.inputs_fully_covered()) << spec.name;
  EXPECT_LE(report.coverage(), 1.0);
  EXPECT_GE(report.coverage(), 0.0);
  EXPECT_EQ(report.covered_partitions() +
                report.uncovered_outputs.size() +
                (report.input_partitions - report.covered_input_partitions),
            report.total_partitions())
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllModules, ModuleAnnotationProperty,
                         ::testing::Range(0, 252));

// ---------------------------------------------------------------------
// Identifier grammars: generation, validation and mutual exclusion.

class AccessionGrammarProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccessionGrammarProperty, GrammarsAreDisjointAndTotal) {
  uint64_t i = GetParam();
  struct Entry {
    std::string value;
    const char* expected;
  };
  std::vector<Entry> entries = {
      {MakeUniprotAccession(i), "UniprotAccession"},
      {MakePdbAccession(i), "PDBAccession"},
      {MakeEmblAccession(i), "EMBLAccession"},
      {MakeKeggGeneId(i, "hsa"), "KEGGGeneId"},
      {MakeKeggGeneId(i, "eco"), "KEGGGeneId"},
      {MakeEnzymeId(i), "EnzymeId"},
      {MakeGlycanId(i), "GlycanId"},
      {MakeLigandId(i), "LigandId"},
      {MakeCompoundId(i), "CompoundId"},
      {MakePathwayId(i, "mmu"), "PathwayId"},
      {MakeGoTermId(i), "GOTermId"},
      {MakeInterProId(i), "InterProId"},
      {MakePfamId(i), "PfamId"},
      {MakeDiseaseId(i), "DiseaseId"},
  };
  for (const Entry& entry : entries) {
    EXPECT_EQ(ClassifyAccession(entry.value), entry.expected) << entry.value;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccessionGrammarProperty,
                         ::testing::Values(0, 1, 7, 42, 99, 123, 999, 4096,
                                           99998, 12345678));

// ---------------------------------------------------------------------
// Sequence formats: render/parse round trip over real KB entities.

class SequenceFormatProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SequenceFormatProperty, RoundTripsKbEntities) {
  const auto& env = GetEnvironment();
  const KnowledgeBase& kb = *env.corpus.kb;
  auto [entity_index, format_index] = GetParam();
  SeqFormat format = static_cast<SeqFormat>(format_index);

  // Alternate protein- and gene-backed sequence data.
  SequenceData data =
      entity_index % 2 == 0
          ? SequenceDataFromProtein(
                kb.proteins()[static_cast<size_t>(entity_index) %
                              kb.proteins().size()])
          : SequenceDataFromGene(
                kb.genes()[static_cast<size_t>(entity_index) %
                           kb.genes().size()]);

  std::string rendered = RenderSequenceData(data, format);
  EXPECT_EQ(SniffFormat(rendered), SeqFormatConcept(format));
  SeqFormat detected;
  auto parsed = ParseSequenceRecordAny(rendered, &detected);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(detected, format);
  EXPECT_EQ(parsed->accession, data.accession);
  EXPECT_EQ(parsed->sequence, data.sequence);
  EXPECT_EQ(parsed->organism, data.organism);
  if (format != SeqFormat::kPdb) {  // PDB headers carry no alphabet token.
    EXPECT_EQ(parsed->alphabet, data.alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequenceFormatProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 10, 55, 117, 238),
                       ::testing::Range(0, 5)));

// ---------------------------------------------------------------------
// Ontology: subsumption is a partial order; partitions behave.

class OntologyProperty : public ::testing::TestWithParam<int> {};

TEST_P(OntologyProperty, SubsumptionIsAPartialOrder) {
  const auto& env = GetEnvironment();
  const Ontology& onto = *env.corpus.ontology;
  ConceptId c = static_cast<ConceptId>(GetParam());
  if (static_cast<size_t>(c) >= onto.size()) GTEST_SKIP();

  // Reflexivity.
  EXPECT_TRUE(onto.IsSubsumedBy(c, c));

  // Antisymmetry: the only concept both above and below c is c itself.
  for (ConceptId d : onto.Descendants(c)) {
    if (d != c) {
      EXPECT_FALSE(onto.IsSubsumedBy(c, d)) << onto.NameOf(d);
    }
  }

  // Transitivity via ancestors: every ancestor subsumes c.
  for (ConceptId a : onto.Ancestors(c)) {
    EXPECT_TRUE(onto.IsSubsumedBy(c, a));
    EXPECT_GE(onto.Depth(c), onto.Depth(a));
  }

  // Partitions: subsumed by c, never covered, and include every leaf.
  std::vector<ConceptId> partitions = onto.Partitions(c);
  for (ConceptId p : partitions) {
    EXPECT_TRUE(onto.IsSubsumedBy(p, c));
    EXPECT_FALSE(onto.Get(p).covered);
  }
  for (ConceptId leaf : onto.LeavesUnder(c)) {
    EXPECT_NE(std::find(partitions.begin(), partitions.end(), leaf),
              partitions.end())
        << onto.NameOf(leaf);
  }

  // LCS of c with itself is c.
  EXPECT_EQ(onto.LeastCommonSubsumer(c, c), c);
}

INSTANTIATE_TEST_SUITE_P(AllConcepts, OntologyProperty,
                         ::testing::Range(0, 70));

// ---------------------------------------------------------------------
// Values: randomized round-trip of rendering and hashing.

class ValueRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

Value RandomValue(Rng& rng, int depth) {
  int kind = static_cast<int>(rng.NextBelow(depth > 0 ? 7 : 5));
  switch (kind) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng.NextBool());
    case 2:
      return Value::Int(rng.NextInt(-1000000, 1000000));
    case 3: {
      // Mix integral and fractional doubles.
      double v = static_cast<double>(rng.NextInt(-5000, 5000));
      if (rng.NextBool()) v += rng.NextDouble();
      return Value::Real(v);
    }
    case 4: {
      size_t len = rng.NextIndex(20);
      std::string s = rng.NextString(
          len, "abcXYZ0189 \t\n\"\\{}[]:,!GO:imino-acid");
      return Value::Str(std::move(s));
    }
    case 5: {
      std::vector<Value> items;
      size_t n = rng.NextIndex(4);
      for (size_t i = 0; i < n; ++i) items.push_back(RandomValue(rng, depth - 1));
      return Value::ListOf(std::move(items));
    }
    default: {
      std::vector<std::pair<std::string, Value>> fields;
      size_t n = rng.NextIndex(3);
      for (size_t i = 0; i < n; ++i) {
        fields.emplace_back("f" + std::to_string(i), RandomValue(rng, depth - 1));
      }
      return Value::RecordOf(std::move(fields));
    }
  }
}

TEST_P(ValueRoundTripProperty, ParseInvertsToString) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Value value = RandomValue(rng, 3);
    std::string rendered = value.ToString();
    auto parsed = Value::Parse(rendered);
    ASSERT_TRUE(parsed.ok()) << rendered << ": " << parsed.status();
    EXPECT_EQ(*parsed, value) << rendered;
    EXPECT_EQ(parsed->Hash(), value.Hash()) << rendered;
    // Rendering is canonical: a second round trip is a fixed point.
    EXPECT_EQ(parsed->ToString(), rendered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------
// Nucleotide statistics: uniform across the DNA/RNA information-preserving
// transcription (the property that makes their examples redundant).

class TranscriptionInvarianceProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(TranscriptionInvarianceProperty, StatsAgreeAcrossTranscription) {
  const auto& env = GetEnvironment();
  const GeneEntity& gene =
      env.corpus.kb->genes()[static_cast<size_t>(GetParam())];
  const std::string& dna = gene.dna_sequence;
  std::string rna = Transcribe(dna);
  for (NucStat stat :
       {NucStat::kGcContent, NucStat::kAtContent, NucStat::kCountA,
        NucStat::kCountC, NucStat::kCountG, NucStat::kCountCgDinucleotide,
        NucStat::kPurineCount, NucStat::kPyrimidineCount,
        NucStat::kShannonEntropy, NucStat::kLinguisticComplexity,
        NucStat::kMaxHomopolymerRun, NucStat::kGcSkew,
        NucStat::kBasicMeltingTemp}) {
    EXPECT_DOUBLE_EQ(NucleotideStatistic(stat, dna),
                     NucleotideStatistic(stat, rna))
        << static_cast<int>(stat);
  }
}

INSTANTIATE_TEST_SUITE_P(Genes, TranscriptionInvarianceProperty,
                         ::testing::Range(0, 24));

// ---------------------------------------------------------------------
// Metrics conservation: the engine counters obey accounting identities —
// no lookup, attempt or commit can go missing or be double-counted.

class MetricsConservationProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricsConservationProperty, FaultedAnnotateRunObeysConservationLaws) {
  const auto& env = GetEnvironment();
  FaultProfile profile;
  profile.seed = 0xFA17;
  profile.transient_rate = 0.2;

  EngineConfig config =
      EngineConfig().Threads(GetParam()).Seed(0x5eed).MaxAttempts(4);
  auto engine = config.BuildEngine();
  auto wrapped = WrapRegistryWithFaults(*env.corpus.registry, profile,
                                        &engine->metrics());
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();
  auto cache = std::make_shared<ConceptCache>(env.corpus.ontology.get(),
                                              &engine->metrics());
  ExampleGenerator generator =
      config.MakeGenerator(cache, env.pool.get(), engine.get());
  auto report = AnnotateRegistry(generator, **wrapped);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->complete()) << report->run_status;
  const EngineMetricsSnapshot m = report->metrics;

  // Every cache lookup resolves as exactly one hit or one miss, and the
  // engine mirror agrees with the cache's own counters.
  EXPECT_GT(m.cache_queries, 0u);
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.cache_queries);
  EXPECT_EQ(cache->hits() + cache->misses(), cache->queries());
  EXPECT_EQ(m.cache_queries, cache->queries());

  // Errors are a subset of attempts; every retry follows a counted failed
  // attempt; every injected fault and deadline exhaustion is a counted
  // attempt too (a breaker short-circuit is the one denial that is not).
  EXPECT_LE(m.invocation_errors, m.invocations);
  EXPECT_LE(m.retries, m.invocation_errors);
  EXPECT_LE(m.injected_faults, m.invocations);
  EXPECT_LE(m.deadline_exhaustions, m.invocation_errors);
  EXPECT_GT(m.injected_faults, 0u);

  // No durable machinery ran: nothing committed, journaled or replayed.
  EXPECT_EQ(m.commits, 0u);
  EXPECT_EQ(m.journal_records, 0u);
  EXPECT_EQ(m.modules_replayed, 0u);
  EXPECT_EQ(m.modules_reinvoked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MetricsConservationProperty,
                         ::testing::Values<size_t>(1, 8));

TEST(JournalAccountingProperty, CommitsJournalRecordsAndReplayBalance) {
  const auto& env = GetEnvironment();
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "dexa_property_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineConfig config = EngineConfig().Threads(1).Seed(0xD0D0);
  auto engine = config.BuildEngine();
  auto wrapped = WrapRegistryWithFaults(*env.corpus.registry, FaultProfile{},
                                        &engine->metrics());
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto journal = RunJournal::Create(dir.string(), {}, &engine->metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  auto report = AnnotateRegistryDurable(generator, **wrapped,
                                        *env.corpus.ontology, *journal);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->complete()) << report->run_status;
  const EngineMetricsSnapshot m = report->metrics;

  // The commit hook and the journal are 1:1 — every commit becomes exactly
  // one journal record (segment seals are not records), and a fresh run
  // commits the header plus one unit per processed module.
  EXPECT_EQ(m.commits, m.journal_records);
  EXPECT_EQ(m.commits, 1 + report->annotated + report->decayed);

  // Fresh run: everything was live work, nothing replayed.
  EXPECT_EQ(m.modules_replayed, 0u);
  EXPECT_EQ(m.modules_reinvoked, report->annotated + report->decayed);
  EXPECT_EQ(report->replayed, 0u);
}

// ---------------------------------------------------------------------
// Shard conservation: partitioning a run can move work between shards but
// never create or destroy it. Summed per-shard counters must equal the
// one-shot totals, and the merged journal must hold exactly the shard
// records minus the duplicate per-shard headers — swept over randomized
// corpus/engine seeds so the identities hold for arbitrary workloads,
// not one golden corpus.

class ShardConservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardConservationProperty, ShardSumsMatchOneShotTotals) {
  const uint64_t seed = GetParam();
  auto corpus = BuildScaleCorpus({/*seed=*/seed, /*modules=*/48});
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  const auto fresh_registry = [&] {
    auto registry = std::make_unique<ModuleRegistry>();
    for (const ModulePtr& module : corpus->registry->AllModules()) {
      EXPECT_TRUE(registry->Register(module).ok());
    }
    return registry;
  };
  EngineConfig config = EngineConfig().Threads(1).Seed(seed).MaxAttempts(4);
  std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "dexa_property_shard" /
      std::to_string(seed);
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  // One-shot reference totals.
  auto one_registry = fresh_registry();
  AnnotateReport one;
  {
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        corpus->ontology.get(), corpus->pool.get(), engine.get());
    auto journal =
        RunJournal::Create((root / "oneshot").string(), {}, &engine->metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto run = SubmitRun(MakeDurableAnnotateRun(generator, *one_registry,
                                                *corpus->ontology, *journal));
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(run->complete()) << run->run_status;
    one = std::move(run->annotate);
  }

  ShardOptions options;
  options.shards = 3;
  options.root = (root / "sharded").string();
  auto target = fresh_registry();
  auto sharded = RunShardedAnnotate(*target, *corpus->ontology, *corpus->pool,
                                    config, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(sharded->merged.run_status.ok()) << sharded->merged.run_status;
  ASSERT_EQ(sharded->shards.size(), options.shards);

  // Counter conservation: no module, example, decay or retry exhaustion is
  // created or lost by partitioning.
  size_t annotated = 0, decayed = 0, examples = 0, exhausted = 0;
  size_t shard_records = 0;
  for (const ShardRunReport& shard : sharded->shards) {
    annotated += shard.report.annotated;
    decayed += shard.report.decayed;
    examples += shard.report.examples;
    exhausted += shard.report.transient_exhausted;
    auto recovery = RecoverJournal(shard.journal_dir);
    ASSERT_TRUE(recovery.ok()) << recovery.status();
    EXPECT_FALSE(recovery->tail_discarded());
    shard_records += recovery->records.size();
  }
  EXPECT_EQ(annotated, one.annotated);
  EXPECT_EQ(decayed, one.decayed);
  EXPECT_EQ(examples, one.examples);
  EXPECT_EQ(exhausted, one.transient_exhausted);
  EXPECT_EQ(annotated + decayed, corpus->module_ids.size());
  // The merged report agrees with the shard sums, not just the reference.
  EXPECT_EQ(sharded->merged.annotated, annotated);
  EXPECT_EQ(sharded->merged.decayed, decayed);
  EXPECT_EQ(sharded->merged.examples, examples);

  // Journal record conservation: each shard journals one header plus its
  // commits; the merge keeps every commit and collapses the headers into
  // one.
  EXPECT_EQ(shard_records, corpus->module_ids.size() + options.shards);
  EXPECT_EQ(sharded->merged_records, shard_records - options.shards + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardConservationProperty,
                         ::testing::Values(1, 7, 42, 1234, 0xC0FFEE));

}  // namespace
}  // namespace dexa
