// Unit tests of the corpus behavior helpers (src/corpus/behaviors.*): the
// shared implementations behind the 324 synthetic modules.

#include <cmath>

#include <gtest/gtest.h>

#include "corpus/behaviors.h"
#include "formats/alphabet.h"
#include "formats/sniffer.h"
#include "kb/knowledge_base.h"

namespace dexa {
namespace {

class BehaviorsTest : public ::testing::Test {
 protected:
  static const KnowledgeBase& kb() {
    static const KnowledgeBase* instance = new KnowledgeBase(42);
    return *instance;
  }
};

TEST_F(BehaviorsTest, RetrieveRecordServesEveryKind) {
  struct Row {
    RecordKind kind;
    std::string accession;
  };
  const ProteinEntity& protein = kb().proteins()[0];
  std::vector<Row> rows = {
      {RecordKind::kUniprot, protein.accession},
      {RecordKind::kFasta, protein.accession},
      {RecordKind::kEmbl, protein.embl_accession},
      {RecordKind::kGenBank, protein.embl_accession},
      {RecordKind::kPdb, protein.pdb_accession},
      {RecordKind::kKeggGene, kb().genes()[0].gene_id},
      {RecordKind::kEnzyme, kb().enzymes()[0].ec_number},
      {RecordKind::kGlycan, kb().glycans()[0].glycan_id},
      {RecordKind::kLigand, kb().ligands()[0].ligand_id},
      {RecordKind::kCompound, kb().compounds()[0].compound_id},
      {RecordKind::kPathway, kb().pathways()[0].pathway_id},
      {RecordKind::kGo, kb().go_terms()[0].go_id},
      {RecordKind::kInterPro, protein.accession},
      {RecordKind::kPfam, protein.accession},
      {RecordKind::kDisease, kb().genes()[0].gene_id},
  };
  for (const Row& row : rows) {
    auto record = RetrieveRecord(kb(), row.kind, row.accession);
    ASSERT_TRUE(record.ok())
        << RecordKindConcept(row.kind) << ": " << record.status();
    EXPECT_EQ(SniffFormat(*record), RecordKindConcept(row.kind));
  }
}

TEST_F(BehaviorsTest, RetrieveRecordRejectsForeignIds) {
  EXPECT_TRUE(
      RetrieveRecord(kb(), RecordKind::kUniprot, "P99999").status().IsNotFound());
  EXPECT_TRUE(
      RetrieveRecord(kb(), RecordKind::kKeggGene, "xyz:1").status().IsNotFound());
  EXPECT_TRUE(
      RetrieveRecord(kb(), RecordKind::kDisease, "hsa:99999").status().IsNotFound());
}

TEST_F(BehaviorsTest, ExtractPrimaryIdAcrossFormats) {
  // Sequence formats carry their accession.
  for (RecordKind kind : {RecordKind::kUniprot, RecordKind::kFasta}) {
    auto record = RetrieveRecord(kb(), kind, kb().proteins()[1].accession);
    ASSERT_TRUE(record.ok());
    auto id = ExtractPrimaryId(*record);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, kb().proteins()[1].accession);
  }
  // KEGG-family records carry their ENTRY id.
  auto gene_record =
      RetrieveRecord(kb(), RecordKind::kKeggGene, kb().genes()[2].gene_id);
  ASSERT_TRUE(gene_record.ok());
  EXPECT_EQ(*ExtractPrimaryId(*gene_record), kb().genes()[2].gene_id);
  auto enzyme_record =
      RetrieveRecord(kb(), RecordKind::kEnzyme, kb().enzymes()[1].ec_number);
  ASSERT_TRUE(enzyme_record.ok());
  EXPECT_EQ(*ExtractPrimaryId(*enzyme_record), kb().enzymes()[1].ec_number);
  // Stanza formats carry their stanza id.
  auto go_record =
      RetrieveRecord(kb(), RecordKind::kGo, kb().go_terms()[3].go_id);
  ASSERT_TRUE(go_record.ok());
  EXPECT_EQ(*ExtractPrimaryId(*go_record), kb().go_terms()[3].go_id);
  // Garbage is rejected.
  EXPECT_TRUE(ExtractPrimaryId("garbage").status().IsInvalidArgument());
}

TEST_F(BehaviorsTest, ExtractEntryNameAndSummary) {
  auto record =
      RetrieveRecord(kb(), RecordKind::kUniprot, kb().proteins()[0].accession);
  ASSERT_TRUE(record.ok());
  auto name = ExtractEntryName(*record);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, kb().proteins()[0].name);
  auto summary = SummarizeRecordLine(*record);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(*summary,
            kb().proteins()[0].accession + " " + kb().proteins()[0].name);
}

TEST_F(BehaviorsTest, ExtractSequenceText) {
  auto record =
      RetrieveRecord(kb(), RecordKind::kFasta, kb().proteins()[0].accession);
  ASSERT_TRUE(record.ok());
  auto sequence = ExtractSequenceText(*record);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(*sequence, kb().proteins()[0].sequence);
  // Non-sequence records carry no sequence.
  auto go_record =
      RetrieveRecord(kb(), RecordKind::kGo, kb().go_terms()[0].go_id);
  ASSERT_TRUE(go_record.ok());
  EXPECT_FALSE(ExtractSequenceText(*go_record).ok());
}

TEST_F(BehaviorsTest, LookupSequenceDispatchesOnNamespace) {
  const ProteinEntity& protein = kb().proteins()[4];
  const GeneEntity& gene = kb().genes()[4];
  EXPECT_EQ(*LookupSequenceForAccession(kb(), protein.accession),
            protein.sequence);
  EXPECT_EQ(*LookupSequenceForAccession(kb(), protein.pdb_accession),
            protein.sequence);
  EXPECT_EQ(*LookupSequenceForAccession(kb(), protein.embl_accession),
            gene.dna_sequence);
  EXPECT_EQ(*LookupSequenceForAccession(kb(), gene.gene_id),
            gene.dna_sequence);
  EXPECT_TRUE(
      LookupSequenceForAccession(kb(), "G00100").status().IsNotFound());
}

TEST_F(BehaviorsTest, NucleotideStatisticsHandValues) {
  const std::string seq = "GGCCAATTCG";  // 10 bases: G3 C3 A2 T2.
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kGcContent, seq), 0.6);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kAtContent, seq), 0.4);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kCountA, seq), 2.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kCountC, seq), 3.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kCountG, seq), 3.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kCountCgDinucleotide, seq),
                   1.0);  // One "CG" pair, at positions 8-9.
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kPurineCount, seq), 5.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kPyrimidineCount, seq), 5.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kMaxHomopolymerRun, seq), 2.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kGcSkew, seq), 0.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kBasicMeltingTemp, seq),
                   2.0 * 4 + 4.0 * 6);
  // Empty-input conventions.
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kGcContent, ""), 0.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kShannonEntropy, ""), 0.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kMaxHomopolymerRun, ""), 0.0);
}

TEST_F(BehaviorsTest, CgDinucleotideCountIsExact) {
  EXPECT_DOUBLE_EQ(
      NucleotideStatistic(NucStat::kCountCgDinucleotide, "CGCG"), 2.0);
  EXPECT_DOUBLE_EQ(NucleotideStatistic(NucStat::kCountCgDinucleotide, "GC"),
                   0.0);
}

TEST_F(BehaviorsTest, EntropyAndComplexityBounds) {
  // Uniform 4-letter content maximizes entropy at 2 bits.
  EXPECT_NEAR(NucleotideStatistic(NucStat::kShannonEntropy, "ACGTACGTACGT"),
              2.0, 1e-9);
  EXPECT_NEAR(NucleotideStatistic(NucStat::kShannonEntropy, "AAAA"), 0.0,
              1e-9);
  double complexity =
      NucleotideStatistic(NucStat::kLinguisticComplexity, "AAAAAAAA");
  EXPECT_NEAR(complexity, 1.0 / 6.0, 1e-9);  // One distinct trimer of six.
}

TEST_F(BehaviorsTest, SequencePropertyDispatchesOnAlphabet) {
  const std::string protein = "MKWWY";
  const std::string dna = "ACGT";
  const std::string rna = "ACGU";
  EXPECT_NEAR(SequenceProperty(SeqProperty::kMolecularWeight, protein),
              ProteinMass(protein), 1e-9);
  EXPECT_DOUBLE_EQ(SequenceProperty(SeqProperty::kMolecularWeight, dna),
                   327.0 * 4);
  EXPECT_DOUBLE_EQ(SequenceProperty(SeqProperty::kMolecularWeight, rna),
                   343.0 * 4);
  // Aromaticity of MKWWY: W, W, Y aromatic -> 3/5.
  EXPECT_NEAR(SequenceProperty(SeqProperty::kAromaticity, protein), 0.6,
              1e-9);
  // Charge at pH 7: K=+1, everything else ~0 here.
  EXPECT_NEAR(SequenceProperty(SeqProperty::kChargeAtPh7, protein), 1.0,
              1e-9);
}

TEST_F(BehaviorsTest, LongSequencesUseTheSampledEstimator) {
  // 'W' keeps the string unambiguously protein (an all-'A' string would
  // classify as DNA).
  std::string short_protein(kLongSequenceThreshold, 'W');
  std::string long_protein(kLongSequenceThreshold + 1, 'W');
  // At the threshold the exact path runs; past it the sampled path runs
  // and (for the mass property) visibly diverges from the exact value.
  EXPECT_NEAR(SequenceProperty(SeqProperty::kMolecularWeight, short_protein),
              ProteinMass(short_protein), 1e-9);
  EXPECT_GT(std::abs(
                SequenceProperty(SeqProperty::kMolecularWeight, long_protein) -
                ProteinMass(long_protein)),
            1.0);
}

TEST_F(BehaviorsTest, TextMiningFindsKnownMentions) {
  const DocumentEntity& document = kb().documents()[0];
  auto genes = MineGeneIds(kb(), document.text);
  EXPECT_FALSE(genes.empty());
  for (const std::string& gene_id : genes) {
    EXPECT_TRUE(kb().FindGene(gene_id).ok()) << gene_id;
  }
  // A document that mentions nothing yields nothing.
  EXPECT_TRUE(MineGeneIds(kb(), "no biology here at all").empty());
  EXPECT_TRUE(MinePathwayConcepts(kb(), "still no biology").empty());
}

TEST_F(BehaviorsTest, HomologySearchReportShape) {
  const ProteinEntity& protein = kb().proteins()[0];
  auto report = HomologySearch(kb(), protein.accession, "blastp", "uniprot");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->query_accession, protein.accession);
  EXPECT_EQ(report->program, "blastp");
  ASSERT_FALSE(report->hits.empty());
  // Hits are homologs sorted by decreasing identity, with consistent
  // e-values (higher identity -> smaller e-value).
  double previous_identity = 1.1;
  for (const AlignmentHit& hit : report->hits) {
    EXPECT_NE(hit.accession, protein.accession);
    EXPECT_LE(hit.identity, previous_identity);
    EXPECT_NEAR(hit.evalue, std::pow(10.0, -10.0 * hit.identity), 1e-12);
    previous_identity = hit.identity;
  }
  EXPECT_TRUE(
      HomologySearch(kb(), "P99999", "blastp", "uniprot").status().IsNotFound());
}

TEST_F(BehaviorsTest, HomologySearchHonorsMaxHits) {
  const ProteinEntity& protein = kb().proteins()[0];
  auto report =
      HomologySearch(kb(), protein.accession, "blastp", "uniprot", 2);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->hits.size(), 2u);
}

}  // namespace
}  // namespace dexa
