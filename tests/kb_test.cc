#include <set>

#include <gtest/gtest.h>

#include "formats/alphabet.h"
#include "kb/accessions.h"
#include "kb/knowledge_base.h"
#include "kb/render.h"

namespace dexa {
namespace {

TEST(AccessionsTest, GrammarsAreMutuallyExclusive) {
  struct Case {
    std::string value;
    std::string expected;
  };
  std::vector<Case> cases = {
      {MakeUniprotAccession(7), "UniprotAccession"},
      {MakePdbAccession(7), "PDBAccession"},
      {MakeEmblAccession(7), "EMBLAccession"},
      {MakeKeggGeneId(7, "hsa"), "KEGGGeneId"},
      {MakeEnzymeId(7), "EnzymeId"},
      {MakeGlycanId(7), "GlycanId"},
      {MakeLigandId(7), "LigandId"},
      {MakeCompoundId(7), "CompoundId"},
      {MakePathwayId(7, "hsa"), "PathwayId"},
      {MakeGoTermId(7), "GOTermId"},
      {MakeInterProId(7), "InterProId"},
      {MakePfamId(7), "PfamId"},
      {MakeDiseaseId(7), "DiseaseId"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ClassifyAccession(c.value), c.expected) << c.value;
  }
  EXPECT_EQ(ClassifyAccession("not an accession"), "");
  EXPECT_EQ(ClassifyAccession(""), "");
}

TEST(AccessionsTest, MakersProduceValidIds) {
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(IsUniprotAccession(MakeUniprotAccession(i)));
    EXPECT_TRUE(IsPdbAccession(MakePdbAccession(i)));
    EXPECT_TRUE(IsEmblAccession(MakeEmblAccession(i)));
    EXPECT_TRUE(IsKeggGeneId(MakeKeggGeneId(i, "eco")));
    EXPECT_TRUE(IsEnzymeId(MakeEnzymeId(i)));
    EXPECT_TRUE(IsPathwayId(MakePathwayId(i, "mmu")));
    EXPECT_TRUE(IsGoTermId(MakeGoTermId(i)));
  }
}

class KnowledgeBaseTest : public ::testing::Test {
 protected:
  static const KnowledgeBase& kb() {
    static const KnowledgeBase* instance = new KnowledgeBase(42);
    return *instance;
  }
};

TEST_F(KnowledgeBaseTest, BuildsRequestedCounts) {
  KnowledgeBaseOptions options;
  EXPECT_EQ(kb().proteins().size(), options.num_proteins);
  EXPECT_EQ(kb().genes().size(), options.num_proteins);
  EXPECT_EQ(kb().pathways().size(), options.num_pathways);
  EXPECT_EQ(kb().go_terms().size(), options.num_go_terms);
  EXPECT_EQ(kb().documents().size(), options.num_documents);
}

TEST_F(KnowledgeBaseTest, DeterministicForSameSeed) {
  KnowledgeBase a(7), b(7);
  ASSERT_EQ(a.proteins().size(), b.proteins().size());
  for (size_t i = 0; i < a.proteins().size(); i += 17) {
    EXPECT_EQ(a.proteins()[i].sequence, b.proteins()[i].sequence);
    EXPECT_EQ(a.proteins()[i].accession, b.proteins()[i].accession);
  }
}

TEST_F(KnowledgeBaseTest, CrossReferencesResolve) {
  for (const ProteinEntity& protein : kb().proteins()) {
    EXPECT_TRUE(kb().FindGene(protein.gene_id).ok()) << protein.accession;
    EXPECT_TRUE(kb().FindProteinByEmbl(protein.embl_accession).ok());
    EXPECT_TRUE(kb().FindProteinByPdb(protein.pdb_accession).ok());
    for (const std::string& go_id : protein.go_term_ids) {
      EXPECT_TRUE(kb().FindGoTerm(go_id).ok()) << go_id;
    }
  }
  for (const GeneEntity& gene : kb().genes()) {
    EXPECT_TRUE(kb().FindProtein(gene.protein_accession).ok());
    for (const std::string& pathway_id : gene.pathway_ids) {
      EXPECT_TRUE(kb().FindPathway(pathway_id).ok()) << pathway_id;
    }
  }
  for (const EnzymeEntity& enzyme : kb().enzymes()) {
    for (const std::string& id : enzyme.substrate_ids) {
      EXPECT_TRUE(kb().FindCompound(id).ok());
    }
    for (const std::string& id : enzyme.gene_ids) {
      EXPECT_TRUE(kb().FindGene(id).ok());
    }
  }
  for (const LigandEntity& ligand : kb().ligands()) {
    for (const std::string& accession : ligand.target_accessions) {
      EXPECT_TRUE(kb().FindProtein(accession).ok());
    }
  }
  for (const DiseaseEntity& disease : kb().diseases()) {
    for (const std::string& id : disease.gene_ids) {
      EXPECT_TRUE(kb().FindGene(id).ok());
    }
  }
}

TEST_F(KnowledgeBaseTest, LowIndexEntitiesAreAlwaysLinked) {
  // Canonical pool instances rely on entity 0 being referenced everywhere.
  const GeneEntity& gene0 = kb().genes()[0];
  bool gene0_in_enzyme = false;
  for (const EnzymeEntity& enzyme : kb().enzymes()) {
    for (const std::string& id : enzyme.gene_ids) {
      if (id == gene0.gene_id) gene0_in_enzyme = true;
    }
  }
  EXPECT_TRUE(gene0_in_enzyme);

  bool gene0_in_disease = false;
  for (const DiseaseEntity& disease : kb().diseases()) {
    for (const std::string& id : disease.gene_ids) {
      if (id == gene0.gene_id) gene0_in_disease = true;
    }
  }
  EXPECT_TRUE(gene0_in_disease);

  bool compound0_in_enzyme = false;
  for (const EnzymeEntity& enzyme : kb().enzymes()) {
    for (const std::string& id : enzyme.substrate_ids) {
      if (id == kb().compounds()[0].compound_id) compound0_in_enzyme = true;
    }
  }
  EXPECT_TRUE(compound0_in_enzyme);
}

TEST_F(KnowledgeBaseTest, GeneDnaTranslatesToProtein) {
  for (size_t i = 0; i < 8; ++i) {
    const GeneEntity& gene = kb().genes()[i];
    const ProteinEntity& protein =
        **kb().FindProtein(gene.protein_accession);
    EXPECT_EQ(Translate(gene.dna_sequence), protein.sequence) << gene.gene_id;
    EXPECT_TRUE(IsValidSequence(gene.dna_sequence, SeqAlphabet::kDna));
  }
}

TEST_F(KnowledgeBaseTest, FamiliesSpanOrganisms) {
  const ProteinEntity& protein0 = kb().proteins()[0];
  auto homologs = kb().Homologs(protein0.accession);
  ASSERT_TRUE(homologs.ok());
  ASSERT_FALSE(homologs->empty());
  std::set<std::string> organisms;
  for (const ProteinEntity* homolog : *homologs) {
    organisms.insert(homolog->organism);
  }
  EXPECT_GT(organisms.size(), 1u);
}

TEST_F(KnowledgeBaseTest, SimilarityBehaves) {
  const ProteinEntity& protein0 = kb().proteins()[0];
  EXPECT_DOUBLE_EQ(kb().Similarity(protein0, protein0), 1.0);
  auto homologs = kb().Homologs(protein0.accession);
  ASSERT_TRUE(homologs.ok());
  // Sorted by decreasing similarity.
  double prev = 1.0;
  for (const ProteinEntity* homolog : *homologs) {
    double similarity = kb().Similarity(protein0, *homolog);
    EXPECT_GT(similarity, 0.0);
    EXPECT_LE(similarity, prev + 1e-12);
    prev = similarity;
  }
  // Cross-family similarity is zero.
  const ProteinEntity& other_family = kb().proteins()[1];
  EXPECT_DOUBLE_EQ(kb().Similarity(protein0, other_family), 0.0);
}

TEST_F(KnowledgeBaseTest, PeptideIdentificationFindsOwner) {
  const ProteinEntity& protein = kb().proteins()[3];
  auto match = kb().IdentifyByPeptideMasses(protein.peptide_masses, 5.0);
  ASSERT_TRUE(match.ok()) << match.status();
  EXPECT_EQ(match->protein->accession, protein.accession);
  EXPECT_DOUBLE_EQ(match->score, 1.0);
  EXPECT_TRUE(
      kb().IdentifyByPeptideMasses({}, 5.0).status().IsInvalidArgument());
}


TEST_F(KnowledgeBaseTest, PeptideIdentificationToleranceBehavior) {
  const ProteinEntity& protein = kb().proteins()[3];
  // Perturb every mass by just under the tolerance: still a full match.
  std::vector<double> nudged;
  for (double mass : protein.peptide_masses) {
    nudged.push_back(mass * 1.04);  // +4% with 5% tolerance.
  }
  auto match = kb().IdentifyByPeptideMasses(nudged, 5.0);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->protein->accession, protein.accession);
  EXPECT_DOUBLE_EQ(match->score, 1.0);
  // With a tolerance tighter than the perturbation the score drops.
  auto strict = kb().IdentifyByPeptideMasses(nudged, 1.0);
  if (strict.ok()) {
    EXPECT_LT(strict->score, 1.0);
  }
  // Masses that match nothing at all are rejected.
  EXPECT_TRUE(
      kb().IdentifyByPeptideMasses({1.0, 2.0, 3.0}, 0.001).status().IsNotFound());
}

TEST_F(KnowledgeBaseTest, LookupsFailCleanly) {
  EXPECT_TRUE(kb().FindProtein("P99999").status().IsNotFound());
  EXPECT_TRUE(kb().FindGene("xyz:1").status().IsNotFound());
  EXPECT_TRUE(kb().FindPathway("path:xxx00000").status().IsNotFound());
  EXPECT_TRUE(kb().Homologs("P99999").status().IsNotFound());
}

TEST_F(KnowledgeBaseTest, RenderBridgesProduceConsistentData) {
  const ProteinEntity& protein = kb().proteins()[0];
  SequenceData data = SequenceDataFromProtein(protein);
  EXPECT_EQ(data.accession, protein.accession);
  EXPECT_EQ(data.alphabet, SeqAlphabet::kProtein);
  const GeneEntity& gene = kb().genes()[0];
  SequenceData gene_data = SequenceDataFromGene(gene);
  EXPECT_EQ(gene_data.alphabet, SeqAlphabet::kDna);
  EXPECT_EQ(gene_data.sequence, gene.dna_sequence);
}

TEST_F(KnowledgeBaseTest, DocumentsMentionResolvableEntities) {
  for (const DocumentEntity& document : kb().documents()) {
    EXPECT_FALSE(document.text.empty());
    for (const std::string& symbol : document.mentioned_gene_symbols) {
      EXPECT_NE(document.text.find(symbol), std::string::npos);
    }
  }
}

TEST_F(KnowledgeBaseTest, ProteinLengthsSpreadAroundFilterThresholds) {
  // Filter calibration relies on proteins 0..3 straddling length 120.
  size_t below = 0, above = 0;
  for (size_t i = 0; i < 4; ++i) {
    if (kb().proteins()[i].sequence.size() < 120) {
      ++below;
    } else {
      ++above;
    }
  }
  EXPECT_EQ(below, 2u);
  EXPECT_EQ(above, 2u);
}

}  // namespace
}  // namespace dexa
