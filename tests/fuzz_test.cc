// Robustness sweeps: every parser in the library must handle arbitrarily
// mutated input gracefully — returning OK or a ParseError/InvalidArgument,
// never crashing or looping. Seeds parameterize deterministic mutation
// streams over genuine rendered artifacts.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "corpus/behaviors.h"
#include "durability/journal.h"
#include "durability/trace_io.h"
#include "formats/entity_records.h"
#include "formats/kegg_flat.h"
#include "formats/reports.h"
#include "formats/sequence_record.h"
#include "formats/sniffer.h"
#include "kb/knowledge_base.h"
#include "kb/render.h"
#include "kbimage/builder.h"
#include "kbimage/compiled_kb.h"
#include "modules/registry_io.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "ontology/ontology_parser.h"
#include "pool/pool_io.h"
#include "serve/wire.h"
#include "shard/manifest.h"
#include "tests/test_util.h"
#include "tools/lint/lint.h"
#include "workflow/workflow_io.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

/// Applies `rounds` random edits (byte flip, deletion, duplication, line
/// swap) to `text`.
std::string Mutate(std::string text, Rng& rng, int rounds) {
  for (int r = 0; r < rounds && !text.empty(); ++r) {
    switch (rng.NextBelow(4)) {
      case 0: {  // Flip a byte to a printable character.
        size_t pos = rng.NextIndex(text.size());
        text[pos] = static_cast<char>(' ' + rng.NextBelow(95));
        break;
      }
      case 1: {  // Delete a span.
        size_t pos = rng.NextIndex(text.size());
        size_t len = 1 + rng.NextIndex(8);
        text.erase(pos, len);
        break;
      }
      case 2: {  // Duplicate a span.
        size_t pos = rng.NextIndex(text.size());
        size_t len = 1 + rng.NextIndex(8);
        text.insert(pos, text.substr(pos, len));
        break;
      }
      default: {  // Truncate the tail.
        text.resize(rng.NextIndex(text.size()) + 1);
        break;
      }
    }
  }
  return text;
}

/// A parse attempt is acceptable if it succeeds or fails with a
/// well-formed error status.
template <typename T>
void ExpectGraceful(const Result<T>& result) {
  if (!result.ok()) {
    EXPECT_FALSE(result.status().ToString().empty());
  }
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, SequenceFormatParsersNeverCrash) {
  const auto& env = GetEnvironment();
  Rng rng(GetParam());
  const KnowledgeBase& kb = *env.corpus.kb;
  for (int i = 0; i < 40; ++i) {
    const ProteinEntity& protein =
        kb.proteins()[rng.NextIndex(kb.proteins().size())];
    SequenceData data = SequenceDataFromProtein(protein);
    std::string rendered =
        RenderSequenceData(data, static_cast<SeqFormat>(rng.NextBelow(5)));
    std::string mutated = Mutate(rendered, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    ExpectGraceful(ParseFasta(mutated));
    ExpectGraceful(ParseUniprot(mutated));
    ExpectGraceful(ParseEmbl(mutated));
    ExpectGraceful(ParseGenBank(mutated));
    ExpectGraceful(ParsePdb(mutated));
    ExpectGraceful(ParseSequenceRecordAny(mutated));
    SniffFormat(mutated);  // Must not crash.
  }
}

TEST_P(ParserFuzzTest, EntityRecordParsersNeverCrash) {
  const auto& env = GetEnvironment();
  Rng rng(GetParam());
  const KnowledgeBase& kb = *env.corpus.kb;
  for (int i = 0; i < 40; ++i) {
    auto record = RetrieveRecord(
        kb, static_cast<RecordKind>(rng.NextBelow(15)),
        kb.proteins()[0].accession);
    std::string base = record.ok() ? *record : "ENTRY       x\n///\n";
    std::string mutated = Mutate(base, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    ExpectGraceful(ParseKeggFlat(mutated));
    ExpectGraceful(ParseGeneRecord(mutated));
    ExpectGraceful(ParseEnzymeRecord(mutated));
    ExpectGraceful(ParseGlycanRecord(mutated));
    ExpectGraceful(ParseCompoundRecord(mutated));
    ExpectGraceful(ParsePathwayRecord(mutated));
    ExpectGraceful(ParseGoTerm(mutated));
    ExpectGraceful(ParseInterProRecord(mutated));
    ExpectGraceful(ParsePfamRecord(mutated));
    ExpectGraceful(ParseDiseaseRecord(mutated));
    ExpectGraceful(ParseAlignmentReport(mutated));
    ExpectGraceful(ParseIdentificationReport(mutated));
    ExpectGraceful(ParseStatisticsReport(mutated));
  }
}

TEST_P(ParserFuzzTest, ValueParserNeverCrashes) {
  Rng rng(GetParam());
  Value sample = Value::RecordOf(
      {{"id", Value::Str("P00001")},
       {"xs", Value::ListOf({Value::Int(1), Value::Real(2.5),
                             Value::Str("a\"b\\c")})}});
  for (int i = 0; i < 200; ++i) {
    std::string mutated =
        Mutate(sample.ToString(), rng, 1 + static_cast<int>(rng.NextBelow(6)));
    ExpectGraceful(Value::Parse(mutated));
  }
}

TEST_P(ParserFuzzTest, DslParsersNeverCrash) {
  const auto& env = GetEnvironment();
  Rng rng(GetParam());
  std::string ontology_dsl = env.corpus.ontology->ToDsl();
  std::string workflow_dsl = RenderWorkflowDsl(
      env.workflows.items[rng.NextIndex(env.workflows.items.size())].workflow,
      *env.corpus.ontology);
  std::string pool_dump = SavePool(*env.pool);
  for (int i = 0; i < 15; ++i) {
    int rounds = 1 + static_cast<int>(rng.NextBelow(12));
    ExpectGraceful(ParseOntologyDsl(Mutate(ontology_dsl, rng, rounds)));
    ExpectGraceful(
        ParseWorkflowDsl(Mutate(workflow_dsl, rng, rounds), *env.corpus.ontology));
    ExpectGraceful(LoadPool(Mutate(pool_dump, rng, rounds), *env.corpus.ontology));
    ExpectGraceful(ParseStructuralType(
        Mutate("Record{id:String, xs:List<Double>}", rng, rounds)));
  }
}

TEST_P(ParserFuzzTest, AnnotationLoaderNeverCrashes) {
  const auto& env = GetEnvironment();
  Rng rng(GetParam());
  // A small slice of the real annotation dump keeps the mutation space
  // interesting without re-parsing megabytes per round.
  std::string full =
      SaveAnnotations(*env.corpus.registry, *env.corpus.ontology);
  std::string slice = full.substr(0, 4000);
  auto fresh = BuildCorpus();
  ASSERT_TRUE(fresh.ok());
  for (int i = 0; i < 15; ++i) {
    std::string mutated =
        Mutate(slice, rng, 1 + static_cast<int>(rng.NextBelow(12)));
    ExpectGraceful(
        LoadAnnotations(mutated, *fresh->ontology, *fresh->registry));
  }
}

TEST_P(ParserFuzzTest, TraceLoaderNeverCrashes) {
  const auto& env = GetEnvironment();
  Rng rng(GetParam());
  std::string slice = SaveTraces(env.provenance).substr(0, 4000);
  for (int i = 0; i < 15; ++i) {
    ExpectGraceful(
        LoadTraces(Mutate(slice, rng, 1 + static_cast<int>(rng.NextBelow(12)))));
  }
}

TEST_P(ParserFuzzTest, JournalRecoveryNeverCrashes) {
  namespace fs = std::filesystem;
  Rng rng(GetParam());

  // One genuine multi-record journal segment as the mutation substrate.
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("dexa_fuzz_journal_" + std::to_string(GetParam()));
  fs::remove_all(dir);
  auto journal = RunJournal::Create(dir.string());
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::vector<std::string> payloads;
  for (int i = 0; i < 12; ++i) {
    payloads.push_back("record-" + std::to_string(i) +
                       std::string(1 + rng.NextIndex(120), 'j'));
    ASSERT_TRUE(journal->Append(payloads.back()).ok());
  }
  ASSERT_TRUE(journal->Seal().ok());
  const fs::path segment = dir / "wal-00000.seg";
  std::string pristine;
  {
    std::ifstream in(segment, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pristine = std::move(buffer).str();
  }

  for (int i = 0; i < 40; ++i) {
    std::string mutated =
        Mutate(pristine, rng, 1 + static_cast<int>(rng.NextBelow(10)));

    // The scanner never crashes: it returns OK or kCorrupted, and whatever
    // it salvages is a prefix of the original records (the CRC32 framing
    // rejects every damaged record).
    SegmentScan scan = ScanSegment(mutated);
    EXPECT_TRUE(scan.status.ok() || scan.status.IsCorrupted())
        << scan.status;
    ASSERT_LE(scan.records.size(), payloads.size());
    for (size_t k = 0; k < scan.records.size(); ++k) {
      EXPECT_EQ(scan.records[k], payloads[k]);
    }

    // Full on-disk recovery over the damaged segment agrees with the scan
    // and flags the discarded tail.
    {
      std::ofstream out(segment, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    auto recovery = RecoverJournal(dir.string());
    ASSERT_TRUE(recovery.ok()) << recovery.status();
    EXPECT_TRUE(recovery->tail_status.ok() ||
                recovery->tail_status.IsCorrupted())
        << recovery->tail_status;
    EXPECT_EQ(recovery->records.size(), scan.records.size());
    EXPECT_EQ(recovery->tail_discarded(), !scan.status.ok());
  }
}

TEST_P(ParserFuzzTest, LintLexerNeverCrashes) {
  Rng rng(GetParam());

  // Genuine C++ as the mutation substrate: this very file, which holds
  // comments, raw strings, preprocessor lines and string literals.
  std::ifstream self(std::string(DEXA_SOURCE_DIR) + "/tests/fuzz_test.cc",
                     std::ios::binary);
  std::ostringstream buffer;
  buffer << self.rdbuf();
  const std::string pristine = std::move(buffer).str();
  ASSERT_FALSE(pristine.empty());

  for (int i = 0; i < 60; ++i) {
    std::string mutated =
        Mutate(pristine, rng, 1 + static_cast<int>(rng.NextBelow(40)));
    // Splice in hostile fragments the text mutator rarely produces:
    // truncated UTF-8, unterminated literals, NUL bytes, half directives,
    // and declarator soup aimed at the symbol indexer (dangling scope
    // qualifiers, unclosed class heads, template debris, orphan braces).
    static const std::vector<std::string> kHostile = {
        "\xC3",     "\xE2\x82", "R\"(",        "R\"verylongdelimiter",
        "\"unterm", "'x",       "#include \"", "/*",
        "//\\\n",   std::string("\x00\x01\x7f", 3),
        "#define A(", "::::",
        "A::B::",   "class {",  "struct X : ", "template <typename",
        "namespace {", "operator()(", ") { { {", "} } )",
        "for (auto& x :", "Out::Of::Line::F() {"};
    size_t pos = rng.NextIndex(mutated.size() + 1);
    mutated.insert(pos, kHostile[rng.NextBelow(kHostile.size())]);

    // The contract: arbitrary byte soup lexes to *something* — no crash,
    // no hang, token lines stay positive and monotonically plausible.
    lint::LexedSource lex = lint::LexSource(mutated);
    for (const lint::Token& t : lex.tokens) {
      EXPECT_GE(t.line, 1);
      EXPECT_FALSE(t.text.empty());
    }
    // And the full pipeline over garbage — per-file rules, symbol index,
    // call graph, taint propagation — must be equally unkillable.
    lint::AnalyzedFile summary =
        lint::AnalyzeSource("src/core/fuzzed.cc", mutated);
    lint::LintReport report = lint::FinishAnalysis({summary});
    EXPECT_EQ(report.files_scanned, 1u);

    // So must the warm-cache record codec: a damaged record either fails
    // to parse or parses into a summary the whole-program passes digest.
    std::string record = lint::SerializeAnalyzedFile(summary);
    std::string damaged =
        Mutate(record, rng, 1 + static_cast<int>(rng.NextBelow(12)));
    lint::AnalyzedFile reparsed;
    if (lint::ParseAnalyzedFile(damaged, reparsed)) {
      lint::FinishAnalysis({reparsed});
    }
  }
}

/// One genuine span tree (counters, a replayed span, characters the JSON
/// writer must escape) as the mutation substrate for the export fuzzers.
std::string SampleTraceExport() {
  obs::Tracer tracer;
  obs::ScopedSpan run(&tracer, obs::SpanKind::kRun, "fuzz \"run\"\t\\");
  for (int i = 0; i < 6; ++i) {
    obs::ScopedSpan batch(&tracer, obs::SpanKind::kBatch,
                          "m" + std::to_string(i), run.id());
    if (i % 2 == 0) batch.MarkReplayed();
    batch.Counter("examples", static_cast<uint64_t>(i));
  }
  run.Counter("commits", 6);
  run.End();
  return obs::WriteChromeTrace(tracer);
}

TEST_P(ParserFuzzTest, TraceExportReaderNeverCrashes) {
  Rng rng(GetParam());
  const std::string pristine = SampleTraceExport();

  // The pristine export round-trips.
  auto clean = obs::ReadChromeTrace(pristine);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_EQ(clean->spans.size(), 7u);
  EXPECT_EQ(clean->spans[0].name, "fuzz \"run\"\t\\");

  // Arbitrary damage: the reader returns OK or typed kCorrupted — no
  // crash, no hang, no other error class (the export is machine-written,
  // so malformed means damaged). Mirrors JournalRecoveryNeverCrashes.
  for (int i = 0; i < 60; ++i) {
    std::string mutated =
        Mutate(pristine, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    auto parsed = obs::ReadChromeTrace(mutated);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsCorrupted()) << parsed.status();
    }
  }

  // A single interior bit flip always breaks the checksum seal.
  for (int i = 0; i < 40; ++i) {
    std::string flipped = pristine;
    flipped[rng.NextIndex(flipped.size() - 1)] ^=
        static_cast<char>(1 + rng.NextBelow(127));
    EXPECT_TRUE(obs::ReadChromeTrace(flipped).status().IsCorrupted());
  }

  // Every strict prefix is rejected as corrupted, never half-parsed.
  for (size_t cut :
       {size_t{0}, size_t{1}, pristine.size() / 2, pristine.size() - 1}) {
    EXPECT_TRUE(
        obs::ReadChromeTrace(pristine.substr(0, cut)).status().IsCorrupted())
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST_P(ParserFuzzTest, MetricsExportReaderNeverCrashes) {
  Rng rng(GetParam());
  obs::MetricsRegistry registry;
  registry.SetCounter("engine.commits", 42);
  registry.SetCounter("engine.cache_hits", 7, obs::MetricStability::kVolatile);
  registry.SetGauge("engine.invocation_error_rate_ppm", 1234);
  registry.DefineHistogram("trace.examples_per_module", {0, 1, 2, 4});
  registry.Observe("trace.examples_per_module", 3);
  registry.Observe("trace.examples_per_module", 99);
  const std::string pristine = obs::WriteMetricsJson(registry);

  auto clean = obs::ReadMetricsJson(pristine);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->stable_counters.at("engine.commits"), 42u);

  for (int i = 0; i < 60; ++i) {
    std::string mutated =
        Mutate(pristine, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    auto parsed = obs::ReadMetricsJson(mutated);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsCorrupted()) << parsed.status();
    }
  }

  for (int i = 0; i < 40; ++i) {
    std::string flipped = pristine;
    flipped[rng.NextIndex(flipped.size() - 1)] ^=
        static_cast<char>(1 + rng.NextBelow(127));
    EXPECT_TRUE(obs::ReadMetricsJson(flipped).status().IsCorrupted());
  }
  for (size_t cut :
       {size_t{0}, size_t{1}, pristine.size() / 2, pristine.size() - 1}) {
    EXPECT_TRUE(
        obs::ReadMetricsJson(pristine.substr(0, cut)).status().IsCorrupted())
        << "prefix of " << cut << " bytes accepted";
  }

  // The readers are not interchangeable: each rejects the other's schema.
  EXPECT_TRUE(obs::ReadMetricsJson(SampleTraceExport()).status().IsCorrupted());
  EXPECT_TRUE(obs::ReadChromeTrace(pristine).status().IsCorrupted());
}

TEST_P(ParserFuzzTest, WireCodecNeverCrashes) {
  Rng rng(GetParam());

  // Genuine protocol lines as the mutation substrate — every op the daemon
  // dispatches, including the fault-injection and deadline fields.
  const std::vector<std::string> pristine = {
      "{\"op\":\"submit\",\"kind\":\"annotate\",\"offset\":\"0\","
      "\"count\":\"8\",\"tenant\":\"alice\",\"traced\":\"1\"}",
      "{\"op\":\"submit\",\"kind\":\"enact_durable\",\"workflow\":\"3\","
      "\"io_enospc_after\":\"4096\",\"io_seed\":\"99\","
      "\"deadline_ns\":\"5000000\"}",
      "{\"op\":\"status\",\"id\":\"17\"}",
      "{\"op\":\"health\"}",
  };

  // The pristine lines round-trip byte-stably through the codec.
  for (const std::string& line : pristine) {
    auto parsed = serve::ParseWire(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto again = serve::ParseWire(serve::EncodeWire(*parsed));
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(*again, *parsed);
  }

  // Truncated/mutated valid request lines: parse success (and the result
  // re-encodes stably) or a typed ParseError — never a crash or a hang.
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(pristine[rng.NextIndex(pristine.size())],
                                 rng, 1 + static_cast<int>(rng.NextBelow(8)));
    auto parsed = serve::ParseWire(mutated);
    if (parsed.ok()) {
      auto again = serve::ParseWire(serve::EncodeWire(*parsed));
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(*again, *parsed);
    } else {
      EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
    }
  }

  // Raw random bytes — NULs, high bits, broken escapes included.
  for (int i = 0; i < 200; ++i) {
    std::string garbage(rng.NextIndex(160), '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.NextBelow(256));
    }
    auto parsed = serve::ParseWire(garbage);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
    }
  }
}

TEST_P(ParserFuzzTest, KbImageLoaderNeverCrashes) {
  namespace fs = std::filesystem;
  Rng rng(GetParam());

  // One genuine compiled image as the mutation substrate: a small random
  // ontology plus a scaled-down knowledge base.
  Ontology ontology{"fuzz"};
  ASSERT_TRUE(ontology.AddRoot("Thing").ok());
  ASSERT_TRUE(ontology.AddConcept("A", {"Thing"}, true).ok());
  ASSERT_TRUE(ontology.AddConcept("B", {"Thing"}).ok());
  ASSERT_TRUE(ontology.AddConcept("AB", {"A", "B"}).ok());
  KnowledgeBaseOptions kb_options;
  kb_options.num_proteins = 12;
  kb_options.num_go_terms = 6;
  kb_options.num_documents = 4;
  KnowledgeBase kb(GetParam(), kb_options);
  auto pristine = kbimage::CompileKbImage(ontology, kb);
  ASSERT_TRUE(pristine.ok()) << pristine.status();

  const fs::path path =
      fs::path(::testing::TempDir()) /
      ("dexa_fuzz_kbimage_" + std::to_string(GetParam()) + ".img");
  auto write = [&path](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Arbitrary mutations (byte flips, deletions, duplications, swaps):
  // Load either succeeds on an untouched image or fails with a typed
  // kCorrupted — never a crash, never undefined behavior.
  for (int i = 0; i < 40; ++i) {
    std::string mutated =
        Mutate(*pristine, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    write(mutated);
    auto image = kbimage::CompiledKb::Load(path.string());
    if (mutated == *pristine) {
      EXPECT_TRUE(image.ok()) << image.status();
    } else {
      ASSERT_FALSE(image.ok());
      EXPECT_TRUE(image.status().IsCorrupted()) << image.status();
    }
  }

  // Single-bit flips and truncations (the ISSUE's damage ladder) are
  // always detected by the seal, the CRCs, or the structural bounds.
  for (int i = 0; i < 40; ++i) {
    std::string flipped = *pristine;
    flipped[rng.NextIndex(flipped.size())] ^=
        static_cast<char>(1 << rng.NextBelow(8));
    if (flipped == *pristine) continue;
    write(flipped);
    EXPECT_TRUE(
        kbimage::CompiledKb::Load(path.string()).status().IsCorrupted());
  }
  for (int i = 0; i < 12; ++i) {
    write(pristine->substr(0, rng.NextIndex(pristine->size())));
    EXPECT_TRUE(
        kbimage::CompiledKb::Load(path.string()).status().IsCorrupted());
  }
  fs::remove(path);
}

TEST_P(ParserFuzzTest, ShardManifestCodecNeverCrashes) {
  Rng rng(GetParam());

  // A genuine manifest as the mutation substrate.
  ShardManifest manifest;
  manifest.shards = 4;
  manifest.modules_total = 96;
  manifest.fingerprint = 0x9E3779B97F4A7C15ull;
  manifest.kb_checksum = 0xB5297A4D;
  manifest.partition_salt = 0x5A17;
  manifest.segment_bytes = 64 * 1024;
  manifest.entries = {{25, 11}, {22, 12}, {30, 13}, {19, 14}};
  const std::string pristine = EncodeShardManifest(manifest);
  {
    auto decoded = DecodeShardManifest(pristine);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(EncodeShardManifest(*decoded), pristine);
  }

  // Arbitrary mutations: decode either succeeds — in which case the
  // canonical re-encode is a byte fixed point — or fails with a typed
  // kCorrupted. Never UB, never a crash, never an accepted manifest whose
  // re-encode drifts.
  for (int i = 0; i < 200; ++i) {
    std::string mutated =
        Mutate(pristine, rng, 1 + static_cast<int>(rng.NextBelow(10)));
    auto decoded = DecodeShardManifest(mutated);
    if (decoded.ok()) {
      const std::string encoded = EncodeShardManifest(*decoded);
      auto again = DecodeShardManifest(encoded);
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(EncodeShardManifest(*again), encoded);
    } else {
      EXPECT_TRUE(decoded.status().IsCorrupted()) << decoded.status();
    }
  }

  // Every proper-prefix truncation is rejected (the format ends with an
  // explicit terminator line, so a cut manifest can never look complete).
  for (int i = 0; i < 40; ++i) {
    auto truncated = DecodeShardManifest(
        std::string_view(pristine).substr(0, rng.NextIndex(pristine.size())));
    ASSERT_FALSE(truncated.ok());
    EXPECT_TRUE(truncated.status().IsCorrupted()) << truncated.status();
  }

  // Raw random bytes.
  for (int i = 0; i < 100; ++i) {
    std::string garbage(rng.NextIndex(200), '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.NextBelow(256));
    }
    auto decoded = DecodeShardManifest(garbage);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsCorrupted()) << decoded.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace dexa
