#ifndef DEXA_TESTS_TEST_UTIL_H_
#define DEXA_TESTS_TEST_UTIL_H_

// Shared fixtures for the dexa test suites. The full evaluation pipeline
// (corpus -> workflow corpus -> provenance -> pool -> annotations) is
// expensive to rebuild per test, so suites share one lazily-built
// environment.

#include <memory>

#include <gtest/gtest.h>

#include "core/example_generator.h"
#include "corpus/corpus.h"
#include "provenance/workflow_corpus.h"

namespace dexa {
namespace testing_env {

/// The fully-built evaluation environment (built once per process).
struct Environment {
  Corpus corpus;
  WorkflowCorpus workflows;
  ProvenanceCorpus provenance;
  std::unique_ptr<AnnotatedInstancePool> pool;
  // Registry annotated with generated data examples; modules retired.
};

/// Builds (once) and returns the shared environment: corpus built, workflow
/// corpus generated and enacted, pool harvested, data examples generated
/// into the registry, decayed modules retired.
inline const Environment& GetEnvironment() {
  static Environment* env = [] {
    auto* out = new Environment();
    auto corpus = BuildCorpus();
    if (!corpus.ok()) {
      ADD_FAILURE() << "BuildCorpus: " << corpus.status();
      std::abort();
    }
    out->corpus = std::move(corpus).value();

    auto workflows = GenerateWorkflowCorpus(out->corpus);
    if (!workflows.ok()) {
      ADD_FAILURE() << "GenerateWorkflowCorpus: " << workflows.status();
      std::abort();
    }
    out->workflows = std::move(workflows).value();

    auto provenance = BuildProvenanceCorpus(out->corpus, out->workflows);
    if (!provenance.ok()) {
      ADD_FAILURE() << "BuildProvenanceCorpus: " << provenance.status();
      std::abort();
    }
    out->provenance = std::move(provenance).value();

    out->pool = std::make_unique<AnnotatedInstancePool>(
        HarvestPool(out->provenance, *out->corpus.registry,
                    *out->corpus.ontology));

    ExampleGenerator generator(out->corpus.ontology.get(), out->pool.get());
    auto annotated = AnnotateRegistry(generator, *out->corpus.registry);
    if (!annotated.ok()) {
      ADD_FAILURE() << "AnnotateRegistry: " << annotated.status();
      std::abort();
    }
    if (!annotated->complete()) {
      ADD_FAILURE() << "AnnotateRegistry aborted: " << annotated->run_status;
      std::abort();
    }

    Status retired = RetireDecayedModules(out->corpus);
    if (!retired.ok()) {
      ADD_FAILURE() << "RetireDecayedModules: " << retired;
      std::abort();
    }
    return out;
  }();
  return *env;
}

}  // namespace testing_env
}  // namespace dexa

#endif  // DEXA_TESTS_TEST_UTIL_H_
