#include <gtest/gtest.h>

#include "core/matcher.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest()
      : env_(GetEnvironment()),
        generator_(env_.corpus.ontology.get(), env_.pool.get()),
        matcher_(env_.corpus.ontology.get(), &generator_) {}

  ModulePtr Find(const std::string& name) {
    auto module = env_.corpus.registry->FindByName(name);
    EXPECT_TRUE(module.ok()) << name;
    return *module;
  }

  const testing_env::Environment& env_;
  ExampleGenerator generator_;
  ModuleMatcher matcher_;
};

TEST_F(MatcherTest, MapParametersExactMatch) {
  ModulePtr a = Find("EBI_GetUniprotRecord");
  ModulePtr b = Find("DDBJ_GetUniprotRecord");
  auto mapping = matcher_.MapParameters(a->spec(), b->spec());
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_FALSE(mapping->contextual);
  EXPECT_EQ(mapping->input_mapping, (std::vector<int>{0}));
  EXPECT_EQ(mapping->output_mapping, (std::vector<int>{0}));
}

TEST_F(MatcherTest, MapParametersRejectsIncompatibleSignatures) {
  ModulePtr a = Find("EBI_GetUniprotRecord");   // UniprotAccession -> record.
  ModulePtr b = Find("KEGG_GetKEGGGeneRecord");  // KEGGGeneId -> record.
  EXPECT_TRUE(matcher_.MapParameters(a->spec(), b->spec())
                  .status()
                  .IsNotFound());
  ModulePtr c = Find("Identify");  // Different arity.
  EXPECT_TRUE(matcher_.MapParameters(a->spec(), c->spec())
                  .status()
                  .IsNotFound());
}

TEST_F(MatcherTest, ContextualMappingGeneralizesConcepts) {
  // Figure 7: GetGeneSequence (EMBLAccession->DNASequence) fits
  // GetBiologicalSequence (SequenceAccession->BiologicalSequence).
  ModulePtr retired = Find("GetGeneSequence");
  ModulePtr candidate = Find("EBI_GetBiologicalSequence");
  auto mapping = matcher_.MapParameters(retired->spec(), candidate->spec());
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_TRUE(mapping->contextual);
  // Without contextual generalization the mapping must fail.
  EXPECT_TRUE(matcher_
                  .MapParameters(retired->spec(), candidate->spec(),
                                 /*allow_contextual=*/false)
                  .status()
                  .IsNotFound());
}

TEST_F(MatcherTest, ProviderTwinsAreEquivalent) {
  auto result =
      matcher_.Compare(*Find("EBI_GetUniprotRecord"),
                       *Find("NCBI_GetUniprotRecord"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relation, BehaviorRelation::kEquivalent);
  EXPECT_EQ(result->examples_compared, result->examples_agreeing);
  EXPECT_GT(result->examples_compared, 0u);
}

TEST_F(MatcherTest, DifferentFunctionsAreDisjoint) {
  auto result = matcher_.Compare(*Find("EBI_GetProteinSequence"),
                                 *Find("ExPASy_GetProteinSequence"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation, BehaviorRelation::kEquivalent);

  // Same signature (UniprotAccession -> UniprotAccession is not available;
  // use two analyses with equal signatures but different behavior).
  auto disjoint = matcher_.Compare(*Find("EBI_ComputeGcContent"),
                                   *Find("EBI_ComputeAtContent"));
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(disjoint->relation, BehaviorRelation::kDisjoint);
}

TEST_F(MatcherTest, DriftingTwinOverlaps) {
  // v1 was traced before retirement; its provenance examples carry both
  // agreement parities, so replaying them against the current service
  // yields partial agreement.
  ModulePtr v1 = Find("v1_GetUniprotRecord");
  ModulePtr current = Find("EBI_GetUniprotRecord");
  DataExampleSet examples;
  for (const InvocationRecord* record :
       env_.provenance.RecordsOf(v1->spec().id)) {
    DataExample example;
    example.inputs = record->inputs;
    example.outputs = record->outputs;
    example.input_partitions = {kInvalidConcept};
    bool duplicate = false;
    for (const DataExample& existing : examples) {
      if (existing == example) duplicate = true;
    }
    if (!duplicate) examples.push_back(std::move(example));
  }
  ASSERT_GE(examples.size(), 4u);
  auto mapping = matcher_.MapParameters(v1->spec(), current->spec());
  ASSERT_TRUE(mapping.ok());
  auto result = matcher_.CompareAgainstExamples(examples, *current, *mapping);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation, BehaviorRelation::kOverlapping);
  EXPECT_GT(result->examples_agreeing, 0u);
  EXPECT_LT(result->examples_agreeing, result->examples_compared);
}

TEST_F(MatcherTest, CandidateRejectionCountsAsDisagreement) {
  // Feed examples whose inputs the candidate rejects.
  ModulePtr candidate = Find("EBI_Transcribe");
  DataExample example;
  example.inputs = {Value::Str("ACGU")};  // RNA: Transcribe rejects.
  example.outputs = {Value::Str("x")};
  example.input_partitions = {kInvalidConcept};
  ParameterMapping mapping;
  mapping.input_mapping = {0};
  mapping.output_mapping = {0};
  auto result =
      matcher_.CompareAgainstExamples({example}, *candidate, mapping);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation, BehaviorRelation::kDisjoint);
}

TEST_F(MatcherTest, EmptyExamplesAreIncomparable) {
  ModulePtr candidate = Find("EBI_Transcribe");
  ParameterMapping mapping;
  mapping.input_mapping = {0};
  mapping.output_mapping = {0};
  auto result = matcher_.CompareAgainstExamples({}, *candidate, mapping);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation, BehaviorRelation::kIncomparable);
}

TEST_F(MatcherTest, RelationNames) {
  EXPECT_STREQ(BehaviorRelationName(BehaviorRelation::kEquivalent),
               "equivalent");
  EXPECT_STREQ(BehaviorRelationName(BehaviorRelation::kOverlapping),
               "overlapping");
  EXPECT_STREQ(BehaviorRelationName(BehaviorRelation::kDisjoint), "disjoint");
  EXPECT_STREQ(BehaviorRelationName(BehaviorRelation::kIncomparable),
               "incomparable");
}

}  // namespace
}  // namespace dexa
