// Reproduces the Section 5 experiment (Figure 5): simulated participants
// identifying module behavior with and without data examples.

#include <gtest/gtest.h>

#include "study/detectors.h"
#include "study/study.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

const StudyResult& Study() {
  static const StudyResult* result = [] {
    const auto& env = GetEnvironment();
    auto run = RunUnderstandingStudy(env.corpus, DefaultStudyUsers());
    EXPECT_TRUE(run.ok()) << run.status();
    return new StudyResult(std::move(run).value());
  }();
  return *result;
}

TEST(StudyTest, Figure5Phase1Counts) {
  const StudyResult& result = Study();
  ASSERT_EQ(result.users.size(), 3u);
  EXPECT_EQ(result.users[0].identified_without_examples, 47u);
  EXPECT_EQ(result.users[1].identified_without_examples, 44u);
  EXPECT_EQ(result.users[2].identified_without_examples, 51u);
}

TEST(StudyTest, Figure5Phase2Counts) {
  const StudyResult& result = Study();
  EXPECT_EQ(result.users[0].identified_with_examples, 169u);
  EXPECT_EQ(result.users[1].identified_with_examples, 188u);
  EXPECT_EQ(result.users[2].identified_with_examples, 195u);
  // "In average the three users were able to correctly identify ... 73%".
  EXPECT_NEAR(result.AverageIdentificationRate(), 0.73, 0.005);
}

TEST(StudyTest, PerKindBreakdownMatchesSection5) {
  const StudyResult& result = Study();
  const auto& user1 = result.users[0].per_kind_with_examples;
  // "The three users were able to identify the behavior of all format
  // transformation modules" and "all modules mapping identifiers".
  for (const StudyUserResult& user : result.users) {
    EXPECT_EQ(user.per_kind_with_examples.at(ModuleKind::kFormatTransformation),
              53u)
        << user.user;
    EXPECT_EQ(user.per_kind_with_examples.at(ModuleKind::kMappingIdentifiers),
              62u)
        << user.user;
  }
  // "Of the 51 data retrieval modules ... user1 was able to identify 43".
  EXPECT_EQ(user1.at(ModuleKind::kDataRetrieval), 43u);
  // "user1 was able to identify the behavior of 5 of the 27 filtering".
  EXPECT_EQ(user1.at(ModuleKind::kFiltering), 5u);
  // "user1 identified 6 of the 59 data analysis modules".
  EXPECT_EQ(user1.at(ModuleKind::kDataAnalysis), 6u);

  const auto& user2 = result.users[1].per_kind_with_examples;
  EXPECT_EQ(user2.at(ModuleKind::kDataRetrieval), 46u);
  EXPECT_EQ(user2.at(ModuleKind::kFiltering), 9u);
  EXPECT_EQ(user2.at(ModuleKind::kDataAnalysis), 18u);

  const auto& user3 = result.users[2].per_kind_with_examples;
  EXPECT_EQ(user3.at(ModuleKind::kDataRetrieval), 48u);
  EXPECT_EQ(user3.at(ModuleKind::kFiltering), 12u);
  EXPECT_EQ(user3.at(ModuleKind::kDataAnalysis), 20u);
}

TEST(StudyTest, PhaseOneNeverLostInPhaseTwo) {
  // The paper: "none of the modules correctly identified without data
  // examples was then incorrectly identified using data examples".
  const StudyResult& result = Study();
  for (const StudyUserResult& user : result.users) {
    EXPECT_GE(user.identified_with_examples,
              user.identified_without_examples);
  }
}

TEST(DetectorsTest, RetrievalRespectsFormatKnowledge) {
  const auto& env = GetEnvironment();
  std::vector<UserProfile> users = DefaultStudyUsers();
  ModulePtr glycan = *env.corpus.registry->FindByName("KEGG_GetGlycanRecord");
  const DataExampleSet& examples =
      env.corpus.registry->DataExamplesOf(glycan->spec().id);
  ASSERT_FALSE(examples.empty());
  EXPECT_FALSE(DetectRetrieval(examples, users[0]));  // Unknown format.
  EXPECT_TRUE(DetectRetrieval(examples, users[1]));   // Knows glycans.
  EXPECT_FALSE(DetectRetrieval(examples, users[2]));
}

TEST(DetectorsTest, MappingIsUniversal) {
  const auto& env = GetEnvironment();
  for (const char* name :
       {"EBI_Uniprot2KeggGene", "EBI_ExtractPrimaryId", "GetTermLabel",
        "get_orthologs", "EBI_GoId2Term", "link"}) {
    ModulePtr module = *env.corpus.registry->FindByName(name);
    const DataExampleSet& examples =
        env.corpus.registry->DataExamplesOf(module->spec().id);
    ASSERT_FALSE(examples.empty()) << name;
    EXPECT_TRUE(DetectMapping(examples)) << name;
  }
  // Homology search is NOT readable as an identifier mapping.
  ModulePtr homologous = *env.corpus.registry->FindByName("GetHomologous");
  EXPECT_FALSE(DetectMapping(
      env.corpus.registry->DataExamplesOf(homologous->spec().id)));
}

TEST(DetectorsTest, FormatTransformationSignatures) {
  const auto& env = GetEnvironment();
  for (const char* name : {"EBI_UniprotToFasta", "EBI_AnyToFasta",
                           "NormalizeAccession", "EBI_Transcribe",
                           "EBI_ReverseComplement", "EBI_ExtractSequence"}) {
    ModulePtr module = *env.corpus.registry->FindByName(name);
    const DataExampleSet& examples =
        env.corpus.registry->DataExamplesOf(module->spec().id);
    ASSERT_FALSE(examples.empty()) << name;
    EXPECT_TRUE(DetectFormatTransformation(examples)) << name;
  }
  // Translation is NOT a universally-recognized transformation.
  ModulePtr translate = *env.corpus.registry->FindByName("EBI_TranslateDNA");
  EXPECT_FALSE(DetectFormatTransformation(
      env.corpus.registry->DataExamplesOf(translate->spec().id)));
}

TEST(DetectorsTest, FilterPredicateFitting) {
  const auto& env = GetEnvironment();
  std::vector<UserProfile> users = DefaultStudyUsers();
  auto examples_of = [&](const char* name) -> const DataExampleSet& {
    ModulePtr module = *env.corpus.registry->FindByName(name);
    return env.corpus.registry->DataExamplesOf(module->spec().id);
  };
  // Organism filters: everyone.
  EXPECT_TRUE(DetectFiltering(examples_of("EBI_FilterHumanProteins"), users[0]));
  // Length filters: user2+.
  EXPECT_FALSE(DetectFiltering(examples_of("EBI_FilterLongProteins"), users[0]));
  EXPECT_TRUE(DetectFiltering(examples_of("EBI_FilterLongProteins"), users[1]));
  // Numeric-threshold filters: user3 only.
  EXPECT_FALSE(DetectFiltering(examples_of("KEGG_FilterHeavyCompounds"), users[1]));
  EXPECT_TRUE(DetectFiltering(examples_of("KEGG_FilterHeavyCompounds"), users[2]));
  EXPECT_TRUE(DetectFiltering(examples_of("EBI_FilterSignificantHits"), users[2]));
  // Opaque filters: nobody.
  EXPECT_FALSE(DetectFiltering(examples_of("EBI_FilterEvenAccessions"), users[2]));
}

TEST(DetectorsTest, AnalysisDerivationsPerUser) {
  const auto& env = GetEnvironment();
  std::vector<UserProfile> users = DefaultStudyUsers();
  auto examples_of = [&](const char* name) -> const DataExampleSet& {
    ModulePtr module = *env.corpus.registry->FindByName(name);
    return env.corpus.registry->DataExamplesOf(module->spec().id);
  };
  EXPECT_TRUE(DetectAnalysisDerivation(examples_of("GetSequenceLength"), users[0]));
  EXPECT_TRUE(DetectAnalysisDerivation(examples_of("EBI_TranslateDNA"), users[0]));
  EXPECT_FALSE(DetectAnalysisDerivation(examples_of("EBI_ComputeGcContent"), users[0]));
  EXPECT_TRUE(DetectAnalysisDerivation(examples_of("EBI_ComputeGcContent"), users[1]));
  EXPECT_FALSE(DetectAnalysisDerivation(examples_of("EBI_CountPurines"), users[1]));
  EXPECT_TRUE(DetectAnalysisDerivation(examples_of("EBI_CountPurines"), users[2]));
  EXPECT_FALSE(DetectAnalysisDerivation(examples_of("EBI_ComputeEntropy"), users[2]));
}


TEST(StudyTest, DetectorsNeverMisidentifyKind) {
  // Stronger than the paper's "nothing identified without examples was
  // then mis-identified with them": across every module and every
  // participant, the detectors either name the module's true kind or stay
  // silent — they never claim a wrong kind.
  const auto& env = GetEnvironment();
  for (const UserProfile& profile : DefaultStudyUsers()) {
    for (const std::string& id : env.corpus.available_ids) {
      ModulePtr module = *env.corpus.registry->Find(id);
      auto detected = DetectKindFromExamples(
          module->spec(), env.corpus.registry->DataExamplesOf(id), profile);
      if (detected.has_value()) {
        EXPECT_EQ(*detected, module->spec().kind)
            << module->spec().name << " misread by " << profile.name;
      }
    }
  }
}

TEST(StudyTest, Table3Census) {
  const StudyResult& result = Study();
  EXPECT_EQ(result.total_modules, 252u);
  EXPECT_EQ(result.modules_per_kind.at(ModuleKind::kFormatTransformation), 53u);
  EXPECT_EQ(result.modules_per_kind.at(ModuleKind::kDataRetrieval), 51u);
  EXPECT_EQ(result.modules_per_kind.at(ModuleKind::kMappingIdentifiers), 62u);
  EXPECT_EQ(result.modules_per_kind.at(ModuleKind::kFiltering), 27u);
  EXPECT_EQ(result.modules_per_kind.at(ModuleKind::kDataAnalysis), 59u);
}

}  // namespace
}  // namespace dexa
