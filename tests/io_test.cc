// Persistence round-trips: structural types, registry annotations, the
// annotated instance pool and the workflow DSL.

#include <gtest/gtest.h>

#include "modules/registry_io.h"
#include "pool/pool_io.h"
#include "tests/test_util.h"
#include "workflow/workflow_io.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

TEST(TypeParseTest, RoundTripsAllShapes) {
  std::vector<StructuralType> cases = {
      StructuralType::String(),
      StructuralType::Integer(),
      StructuralType::Double(),
      StructuralType::Boolean(),
      StructuralType::List(StructuralType::String()),
      StructuralType::List(StructuralType::List(StructuralType::Double())),
      StructuralType::Record({{"id", StructuralType::String()},
                              {"masses",
                               StructuralType::List(StructuralType::Double())}}),
      StructuralType::Record({}),
  };
  for (const StructuralType& type : cases) {
    auto parsed = ParseStructuralType(type.ToString());
    ASSERT_TRUE(parsed.ok()) << type.ToString() << ": " << parsed.status();
    EXPECT_EQ(*parsed, type) << type.ToString();
  }
}

TEST(TypeParseTest, RejectsMalformedTypes) {
  EXPECT_TRUE(ParseStructuralType("").status().IsParseError());
  EXPECT_TRUE(ParseStructuralType("List<String").status().IsParseError());
  EXPECT_TRUE(ParseStructuralType("Floaty").status().IsParseError());
  EXPECT_TRUE(ParseStructuralType("String garbage").status().IsParseError());
  EXPECT_TRUE(ParseStructuralType("Record{id String}").status().IsParseError());
}

TEST(RegistryIoTest, RoundTripsAnnotations) {
  const auto& env = GetEnvironment();
  std::string saved =
      SaveAnnotations(*env.corpus.registry, *env.corpus.ontology);
  EXPECT_GT(saved.size(), 1000u);

  // Load into a freshly built corpus (same module ids).
  auto fresh = BuildCorpus();
  ASSERT_TRUE(fresh.ok());
  auto restored =
      LoadAnnotations(saved, *fresh->ontology, *fresh->registry);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, env.corpus.registry->size());

  for (size_t i = 0; i < env.corpus.available_ids.size(); i += 13) {
    const std::string& id = env.corpus.available_ids[i];
    const DataExampleSet& original = env.corpus.registry->DataExamplesOf(id);
    const DataExampleSet& loaded = fresh->registry->DataExamplesOf(id);
    ASSERT_EQ(original.size(), loaded.size()) << id;
    for (size_t e = 0; e < original.size(); ++e) {
      EXPECT_TRUE(original[e] == loaded[e]) << id;
      EXPECT_EQ(original[e].input_partitions, loaded[e].input_partitions)
          << id;
    }
  }
}

TEST(RegistryIoTest, RejectsCorruptInput) {
  const auto& env = GetEnvironment();
  auto fresh = BuildCorpus();
  ASSERT_TRUE(fresh.ok());
  auto& registry = *fresh->registry;
  const Ontology& onto = *fresh->ontology;
  EXPECT_TRUE(LoadAnnotations("", onto, registry).status().IsParseError());
  EXPECT_TRUE(LoadAnnotations("# dexa annotations v1\njunk\n", onto, registry)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadAnnotations(
                  "# dexa annotations v1\nmodule nope Nope\n", onto, registry)
                  .status()
                  .IsParseError());
  // An unterminated example is damage (a truncated file), not a grammar
  // error: the typed kCorrupted status is what recovery dispatches on.
  EXPECT_TRUE(LoadAnnotations("# dexa annotations v1\nmodule m000 X\n"
                              "example\nin - \"v\"\n",
                              onto, registry)
                  .status()
                  .IsCorrupted());
  (void)env;
}

TEST(RegistryIoTest, FailedLoadLeavesNoPartialState) {
  const auto& env = GetEnvironment();
  std::string saved =
      SaveAnnotations(*env.corpus.registry, *env.corpus.ontology);

  // Damage the document near the end: truncate just before the last "end"
  // line, so hundreds of modules parse cleanly before the damage.
  size_t cut = saved.rfind("\nend\n");
  ASSERT_NE(cut, std::string::npos);
  std::string truncated = saved.substr(0, cut + 1);

  auto fresh = BuildCorpus();
  ASSERT_TRUE(fresh.ok());
  auto result = LoadAnnotations(truncated, *fresh->ontology, *fresh->registry);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorrupted()) << result.status();

  // Stage-then-commit: even though the damage sits at the tail, not one
  // module's annotations leaked into the registry.
  for (const ModulePtr& module : fresh->registry->AllModules()) {
    EXPECT_TRUE(fresh->registry->DataExamplesOf(module->spec().id).empty())
        << module->spec().id;
  }

  // The intact document still loads into the same registry afterwards.
  auto reloaded = LoadAnnotations(saved, *fresh->ontology, *fresh->registry);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_GT(*reloaded, 0u);
}

TEST(PoolIoTest, RoundTripsPool) {
  const auto& env = GetEnvironment();
  std::string saved = SavePool(*env.pool);
  auto loaded = LoadPool(saved, *env.corpus.ontology);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), env.pool->size());
  // Realization order survives (the first instance per concept).
  for (ConceptId concept_id : env.pool->PopulatedConcepts()) {
    auto original = env.pool->GetInstance(concept_id);
    auto restored = loaded->GetInstance(concept_id);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*original, *restored)
        << env.corpus.ontology->NameOf(concept_id);
  }
}

TEST(PoolIoTest, RejectsCorruptPool) {
  const auto& env = GetEnvironment();
  const Ontology& onto = *env.corpus.ontology;
  EXPECT_TRUE(LoadPool("", onto).status().IsParseError());
  EXPECT_TRUE(LoadPool("# dexa pool v1\nnonsense\n", onto)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadPool("# dexa pool v1\ninstance Bogus \"x\"\n", onto)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadPool("# dexa pool v1\ninstance DNASequence not-json\n", onto)
                  .status()
                  .IsParseError());
}

TEST(WorkflowIoTest, RoundTripsGeneratedWorkflows) {
  const auto& env = GetEnvironment();
  for (size_t i = 0; i < env.workflows.items.size(); i += 211) {
    const Workflow& original = env.workflows.items[i].workflow;
    std::string rendered = RenderWorkflowDsl(original, *env.corpus.ontology);
    auto parsed = ParseWorkflowDsl(rendered, *env.corpus.ontology);
    ASSERT_TRUE(parsed.ok()) << original.id << ": " << parsed.status();
    EXPECT_EQ(parsed->id, original.id);
    EXPECT_EQ(parsed->inputs.size(), original.inputs.size());
    ASSERT_EQ(parsed->processors.size(), original.processors.size());
    for (size_t p = 0; p < original.processors.size(); ++p) {
      EXPECT_EQ(parsed->processors[p].module_id,
                original.processors[p].module_id);
      EXPECT_EQ(parsed->processors[p].input_sources.size(),
                original.processors[p].input_sources.size());
    }
    EXPECT_EQ(RenderWorkflowDsl(*parsed, *env.corpus.ontology), rendered);
    // The parsed workflow still validates and enacts identically.
    ASSERT_TRUE(ValidateWorkflow(*parsed, *env.corpus.registry,
                                 *env.corpus.ontology)
                    .ok())
        << original.id;
  }
}

TEST(WorkflowIoTest, ParsedWorkflowEnacts) {
  const auto& env = GetEnvironment();
  const GeneratedWorkflow& item = env.workflows.items[0];
  std::string rendered =
      RenderWorkflowDsl(item.workflow, *env.corpus.ontology);
  auto parsed = ParseWorkflowDsl(rendered, *env.corpus.ontology);
  ASSERT_TRUE(parsed.ok());
  auto original = Enact(item.workflow, *env.corpus.registry, item.seeds);
  auto reloaded = Enact(*parsed, *env.corpus.registry, item.seeds);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(original->outputs.size(), reloaded->outputs.size());
  for (size_t o = 0; o < original->outputs.size(); ++o) {
    EXPECT_EQ(original->outputs[o], reloaded->outputs[o]);
  }
}

TEST(WorkflowIoTest, RejectsCorruptDsl) {
  const auto& env = GetEnvironment();
  const Ontology& onto = *env.corpus.ontology;
  EXPECT_TRUE(ParseWorkflowDsl("", onto).status().IsParseError());
  EXPECT_TRUE(ParseWorkflowDsl("# dexa workflow v1\nnonsense\n", onto)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseWorkflowDsl("# dexa workflow v1\nname x\n", onto)
                  .status()
                  .IsParseError());  // No id.
  EXPECT_TRUE(
      ParseWorkflowDsl("# dexa workflow v1\nworkflow w\n"
                       "input a | Bogus | DNASequence\n",
                       onto)
          .status()
          .IsParseError());
  EXPECT_TRUE(
      ParseWorkflowDsl("# dexa workflow v1\nworkflow w\n"
                       "wire 0 0 = input 0\n",
                       onto)
          .status()
          .IsParseError());  // Wire before processor.
}

}  // namespace
}  // namespace dexa
