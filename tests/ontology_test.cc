#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ontology/mygrid.h"
#include "ontology/ontology.h"
#include "ontology/ontology_parser.h"

namespace dexa {
namespace {

Ontology SmallOntology() {
  Ontology onto("test");
  EXPECT_TRUE(onto.AddRoot("Thing", /*covered=*/true).ok());
  EXPECT_TRUE(onto.AddConcept("Sequence", {"Thing"}, /*covered=*/true).ok());
  EXPECT_TRUE(onto.AddConcept("Nucleotide", {"Sequence"}, true).ok());
  EXPECT_TRUE(onto.AddConcept("DNA", {"Nucleotide"}).ok());
  EXPECT_TRUE(onto.AddConcept("RNA", {"Nucleotide"}).ok());
  EXPECT_TRUE(onto.AddConcept("Protein", {"Sequence"}).ok());
  EXPECT_TRUE(onto.AddConcept("Record", {"Thing"}).ok());
  return onto;
}

TEST(OntologyTest, AddAndFind) {
  Ontology onto = SmallOntology();
  EXPECT_EQ(onto.size(), 7u);
  EXPECT_NE(onto.Find("DNA"), kInvalidConcept);
  EXPECT_EQ(onto.Find("Nope"), kInvalidConcept);
  EXPECT_TRUE(onto.Require("DNA").ok());
  EXPECT_TRUE(onto.Require("Nope").status().IsNotFound());
}

TEST(OntologyTest, RejectsDuplicatesAndMissingParents) {
  Ontology onto = SmallOntology();
  EXPECT_TRUE(onto.AddConcept("DNA", {"Thing"}).status().IsAlreadyExists());
  EXPECT_TRUE(onto.AddConcept("X", {"Missing"}).status().IsNotFound());
  EXPECT_TRUE(onto.AddConcept("", {}).status().IsInvalidArgument());
}

TEST(OntologyTest, SubsumptionIsReflexiveAndTransitive) {
  Ontology onto = SmallOntology();
  ConceptId dna = onto.Find("DNA");
  ConceptId nucleotide = onto.Find("Nucleotide");
  ConceptId sequence = onto.Find("Sequence");
  ConceptId record = onto.Find("Record");
  EXPECT_TRUE(onto.IsSubsumedBy(dna, dna));
  EXPECT_TRUE(onto.IsSubsumedBy(dna, nucleotide));
  EXPECT_TRUE(onto.IsSubsumedBy(dna, sequence));
  EXPECT_FALSE(onto.IsSubsumedBy(sequence, dna));
  EXPECT_FALSE(onto.IsSubsumedBy(dna, record));
  EXPECT_TRUE(onto.Comparable(dna, sequence));
  EXPECT_FALSE(onto.Comparable(dna, record));
}

TEST(OntologyTest, DescendantsAndAncestors) {
  Ontology onto = SmallOntology();
  ConceptId sequence = onto.Find("Sequence");
  auto descendants = onto.Descendants(sequence);
  EXPECT_EQ(descendants.size(), 5u);  // Sequence, Nucleotide, DNA, RNA, Protein.
  auto strict = onto.StrictDescendants(sequence);
  EXPECT_EQ(strict.size(), 4u);
  auto ancestors = onto.Ancestors(onto.Find("DNA"));
  EXPECT_EQ(ancestors.size(), 4u);  // DNA, Nucleotide, Sequence, Thing.
}

TEST(OntologyTest, PartitionsSkipCoveredConcepts) {
  Ontology onto = SmallOntology();
  // Sequence is covered, Nucleotide is covered: partitions are the
  // realizable concepts only.
  auto partitions = onto.Partitions(onto.Find("Sequence"));
  std::vector<std::string> names;
  for (ConceptId c : partitions) names.push_back(onto.NameOf(c));
  EXPECT_EQ(names, (std::vector<std::string>{"DNA", "RNA", "Protein"}));
  // A realizable leaf is its own single partition.
  EXPECT_EQ(onto.Partitions(onto.Find("DNA")).size(), 1u);
  // A realizable interior concept partitions into itself + children.
  ASSERT_TRUE(onto.SetCovered(onto.Find("Nucleotide"), false).ok());
  auto nucleotide = onto.Partitions(onto.Find("Nucleotide"));
  EXPECT_EQ(nucleotide.size(), 3u);
}

TEST(OntologyTest, DepthAndLcs) {
  Ontology onto = SmallOntology();
  EXPECT_EQ(onto.Depth(onto.Find("Thing")), 0);
  EXPECT_EQ(onto.Depth(onto.Find("DNA")), 3);
  ConceptId lcs = onto.LeastCommonSubsumer(onto.Find("DNA"), onto.Find("RNA"));
  EXPECT_EQ(onto.NameOf(lcs), "Nucleotide");
  lcs = onto.LeastCommonSubsumer(onto.Find("DNA"), onto.Find("Protein"));
  EXPECT_EQ(onto.NameOf(lcs), "Sequence");
  lcs = onto.LeastCommonSubsumer(onto.Find("DNA"), onto.Find("Record"));
  EXPECT_EQ(onto.NameOf(lcs), "Thing");
}

TEST(OntologyTest, RootsAndAll) {
  Ontology onto = SmallOntology();
  EXPECT_EQ(onto.Roots().size(), 1u);
  EXPECT_EQ(onto.AllConcepts().size(), 7u);
}

TEST(OntologyParserTest, RoundTripsDsl) {
  Ontology onto = SmallOntology();
  std::string dsl = onto.ToDsl();
  auto parsed = ParseOntologyDsl(dsl);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), onto.size());
  EXPECT_EQ(parsed->ToDsl(), dsl);
  // Covered flags survive.
  EXPECT_TRUE(parsed->Get(parsed->Find("Nucleotide")).covered);
  EXPECT_FALSE(parsed->Get(parsed->Find("DNA")).covered);
}

TEST(OntologyParserTest, ParsesMultipleParents) {
  auto parsed = ParseOntologyDsl(
      "ontology multi\n"
      "concept A\n"
      "concept B\n"
      "concept C < A, B\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ConceptId c = parsed->Find("C");
  EXPECT_TRUE(parsed->IsSubsumedBy(c, parsed->Find("A")));
  EXPECT_TRUE(parsed->IsSubsumedBy(c, parsed->Find("B")));
}

TEST(OntologyParserTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseOntologyDsl("nonsense line\n").status().IsParseError());
  EXPECT_TRUE(ParseOntologyDsl("concept A < Missing\n").status().IsParseError());
  EXPECT_TRUE(ParseOntologyDsl("concept Two Words\n").status().IsParseError());
  EXPECT_TRUE(ParseOntologyDsl("ontology a\nontology b\n").status().IsParseError());
  // Comments and blanks are fine.
  EXPECT_TRUE(ParseOntologyDsl("# comment\n\nconcept A\n").ok());
}

TEST(MyGridTest, ExpectedPartitionCounts) {
  Ontology onto = BuildMyGridOntology();
  auto count = [&](const char* name) {
    return onto.Partitions(onto.Find(name)).size();
  };
  EXPECT_EQ(count("NucleotideSequence"), 2u);
  EXPECT_EQ(count("BiologicalSequence"), 3u);
  EXPECT_EQ(count("SequenceAccession"), 4u);
  EXPECT_EQ(count("SequenceRecord"), 5u);
  EXPECT_EQ(count("OntologyTerm"), 6u);
  EXPECT_EQ(count("Accession"), 10u);
  EXPECT_EQ(count("Record"), 15u);
}

TEST(MyGridTest, RoundTripsThroughDsl) {
  Ontology onto = BuildMyGridOntology();
  auto parsed = ParseOntologyDsl(onto.ToDsl());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), onto.size());
}

TEST(MyGridTest, MatchesGoldenAsset) {
  // The shipped assets/mygrid.onto is the canonical serialized ontology;
  // code and asset must not drift apart.
  std::ifstream golden(std::string(DEXA_SOURCE_DIR) + "/assets/mygrid.onto");
  ASSERT_TRUE(golden.good()) << "assets/mygrid.onto missing";
  std::stringstream buffer;
  buffer << golden.rdbuf();
  EXPECT_EQ(BuildMyGridOntology().ToDsl(), buffer.str());
}

TEST(OntologyTest, AuditFlagsEmptyCoveredConcepts) {
  Ontology onto("audit");
  ASSERT_TRUE(onto.AddRoot("EmptyCovered", /*covered=*/true).ok());
  ASSERT_TRUE(onto.AddRoot("FineLeaf").ok());
  auto warnings = onto.Audit();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("EmptyCovered"), std::string::npos);
}

TEST(MyGridTest, AuditIsClean) {
  EXPECT_TRUE(BuildMyGridOntology().Audit().empty());
}

}  // namespace
}  // namespace dexa
