// The corpus scale-out suite (`ctest -L shard`): sharded annotation runs
// must be indistinguishable — byte for byte — from an equivalent
// single-process durable run. Covered here:
//  * the stable partition function and the pinned shard manifest;
//  * shards ≡ one-shot byte equality (merged journal bytes, saved
//    annotations, report totals) at {1,2,4,8} shards × {1,8} threads;
//  * merge determinism under permuted shard completion order;
//  * crash-resume of a killed shard subset converging to the one-shot
//    bytes (crash-after-commit and torn-write);
//  * fault-injected shards (deterministic flaky-first-attempt profile)
//    converging to the fault-free digest;
//  * golden-trace equality when replaying the merged journal vs the
//    one-shot journal;
//  * configuration-mismatch and incomplete-shard rejection.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_config.h"
#include "core/run_api.h"
#include "corpus/fault_injector.h"
#include "corpus/scale.h"
#include "durability/journal.h"
#include "modules/registry_io.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "shard/manifest.h"
#include "shard/sharded_annotate.h"

namespace dexa {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under the test temp root, wiped on creation.
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_shard" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// The shared scale corpus the suite annotates: small enough to keep the
/// parameterized sweep fast, large enough that every one of the nine
/// module kinds appears in every shard count under test.
const ScaleCorpus& TestCorpus() {
  static const ScaleCorpus corpus = [] {
    auto built = BuildScaleCorpus({/*seed=*/7, /*modules=*/96});
    EXPECT_TRUE(built.ok()) << built.status();
    return std::move(built).value();
  }();
  return corpus;
}

/// A fresh unannotated registry over the same module objects, registration
/// order preserved (annotations land per-copy, so runs cannot observe each
/// other).
std::unique_ptr<ModuleRegistry> FreshRegistry(const ModuleRegistry& source) {
  auto registry = std::make_unique<ModuleRegistry>();
  for (const ModulePtr& module : source.AllModules()) {
    EXPECT_TRUE(registry->Register(module).ok());
  }
  return registry;
}

/// Engine/generator configuration shared by every run in a comparison —
/// the fingerprint covers the generator options, so both sides must agree.
EngineConfig Config(size_t threads) {
  return EngineConfig().Threads(threads).Seed(0xD5).MaxAttempts(4);
}

/// All journal segment bytes of `dir`, keyed by file name in sorted order —
/// the byte-equality witness.
std::string JournalBytes(const std::string& dir) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  std::string all;
  for (const fs::path& path : segments) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    all += path.filename().string();
    all += ':';
    all += buffer.str();
    all += '\n';
  }
  return all;
}

struct OneShot {
  AnnotateReport report;
  std::unique_ptr<ModuleRegistry> registry;
  std::string dir;
};

/// The single-process reference: one durable annotate run over the full
/// registry, exactly what the sharded run must reproduce byte for byte.
OneShot RunOneShot(const ModuleRegistry& source, size_t threads,
                   const std::string& dir) {
  const ScaleCorpus& corpus = TestCorpus();
  OneShot result;
  result.dir = dir;
  result.registry = FreshRegistry(source);
  EngineConfig config = Config(threads);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      corpus.ontology.get(), corpus.pool.get(), engine.get());
  auto journal = RunJournal::Create(dir, {}, &engine->metrics());
  EXPECT_TRUE(journal.ok()) << journal.status();
  auto run = SubmitRun(MakeDurableAnnotateRun(generator, *result.registry,
                                              *corpus.ontology, *journal));
  EXPECT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete()) << run->run_status;
  result.report = std::move(run->annotate);
  return result;
}

std::string Annotations(const ModuleRegistry& registry) {
  return SaveAnnotations(registry, *TestCorpus().ontology);
}

// --------------------------------------------------------------------------
// Partition + manifest
// --------------------------------------------------------------------------

TEST(ShardPartitionTest, CoversEveryModuleExactlyOnceAndIsStable) {
  const ScaleCorpus& corpus = TestCorpus();
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    const auto partition = PartitionRegistry(*corpus.registry, shards, 0x5A17);
    ASSERT_EQ(partition.size(), shards);
    size_t total = 0;
    for (uint32_t k = 0; k < shards; ++k) {
      total += partition[k].size();
      for (const std::string& id : partition[k]) {
        // The assignment is a pure function of (id, shards, salt).
        EXPECT_EQ(ShardOfModule(id, shards, 0x5A17), k);
      }
    }
    EXPECT_EQ(total, corpus.module_ids.size());
    // Stable: recomputing yields the identical partition.
    EXPECT_EQ(PartitionRegistry(*corpus.registry, shards, 0x5A17), partition);
  }
  // The salt reshuffles the partition (different runs stay separable).
  EXPECT_NE(PartitionRegistry(*corpus.registry, 4, 1),
            PartitionRegistry(*corpus.registry, 4, 2));
}

TEST(ShardManifestTest, EncodeDecodeIsAByteFixedPoint) {
  ShardManifest manifest;
  manifest.shards = 3;
  manifest.modules_total = 96;
  manifest.fingerprint = 0xFFFFFFFFFFFFFFFFull;  // above int64 max on purpose
  manifest.kb_checksum = 42;
  manifest.partition_salt = 0x5A17;
  manifest.segment_bytes = 64 * 1024;
  manifest.entries = {{40, 1}, {0, 2}, {56, 0xDEADBEEFCAFEF00Dull}};
  const std::string encoded = EncodeShardManifest(manifest);
  auto decoded = DecodeShardManifest(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(EncodeShardManifest(*decoded), encoded);
  EXPECT_EQ(decoded->shards, manifest.shards);
  EXPECT_EQ(decoded->modules_total, manifest.modules_total);
  EXPECT_EQ(decoded->fingerprint, manifest.fingerprint);
  EXPECT_EQ(decoded->entries.size(), manifest.entries.size());
  EXPECT_EQ(decoded->entries[2].fingerprint, 0xDEADBEEFCAFEF00Dull);

  const std::string root = FreshDir("manifest_io");
  ASSERT_TRUE(WriteShardManifest(root, manifest).ok());
  auto read = ReadShardManifest(root);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(EncodeShardManifest(*read), encoded);
  EXPECT_TRUE(ReadShardManifest(FreshDir("no_manifest")).status().IsNotFound());
}

TEST(ShardManifestTest, InitPinsAndValidates) {
  const ScaleCorpus& corpus = TestCorpus();
  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("init_pins");
  auto manifest = InitShardedRun(*corpus.registry, Config(1), options);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->shards, 4u);
  EXPECT_EQ(manifest->modules_total, corpus.module_ids.size());

  // Re-init with the same configuration: the existing pin stands.
  auto again = InitShardedRun(*corpus.registry, Config(1), options);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(EncodeShardManifest(*again), EncodeShardManifest(*manifest));

  // A different shard count against the same root is a config mismatch.
  ShardOptions wrong = options;
  wrong.shards = 2;
  EXPECT_TRUE(
      InitShardedRun(*corpus.registry, Config(1), wrong).status()
          .IsInvalidArgument());
  // So are different generator options (the fingerprint covers them).
  EXPECT_TRUE(InitShardedRun(*corpus.registry,
                             Config(1).MaxCombinations(7), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardMergeTest, RejectsMissingAndIncompleteShards) {
  const ScaleCorpus& corpus = TestCorpus();
  ShardOptions options;
  options.shards = 2;
  options.root = FreshDir("merge_rejects");
  ASSERT_TRUE(InitShardedRun(*corpus.registry, Config(1), options).ok());

  // No shard has run: merge is unavailable, not wrong.
  auto registry = FreshRegistry(*corpus.registry);
  EXPECT_TRUE(MergeShards(*registry, *corpus.ontology, Config(1), options)
                  .status()
                  .IsUnavailable());

  // One shard done, the other missing: still unavailable.
  auto one = RunShard(*corpus.registry, *corpus.ontology, *corpus.pool,
                      Config(1), options, 0);
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_TRUE(MergeShards(*registry, *corpus.ontology, Config(1), options)
                  .status()
                  .IsUnavailable());
}

// --------------------------------------------------------------------------
// Shards ≡ one-shot byte equality
// --------------------------------------------------------------------------

class ShardEqualityTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, size_t>> {};

TEST_P(ShardEqualityTest, MergedRunIsByteIdenticalToOneShot) {
  const auto [shards, threads] = GetParam();
  const ScaleCorpus& corpus = TestCorpus();
  const std::string tag =
      std::to_string(shards) + "x" + std::to_string(threads);

  OneShot reference =
      RunOneShot(*corpus.registry, threads, FreshDir("oneshot_" + tag));

  ShardOptions options;
  options.shards = shards;
  options.root = FreshDir("sharded_" + tag);
  auto target = FreshRegistry(*corpus.registry);
  auto sharded = RunShardedAnnotate(*target, *corpus.ontology, *corpus.pool,
                                    Config(threads), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(sharded->merged.run_status.ok()) << sharded->merged.run_status;
  EXPECT_EQ(sharded->shards.size(), shards);

  // Byte-identical journal, byte-identical annotations, equal totals.
  EXPECT_EQ(JournalBytes(sharded->merged_dir), JournalBytes(reference.dir));
  EXPECT_EQ(Annotations(*target), Annotations(*reference.registry));
  EXPECT_EQ(sharded->merged.annotated, reference.report.annotated);
  EXPECT_EQ(sharded->merged.decayed, reference.report.decayed);
  EXPECT_EQ(sharded->merged.examples, reference.report.examples);
  EXPECT_EQ(sharded->merged.transient_exhausted,
            reference.report.transient_exhausted);
  EXPECT_EQ(sharded->merged.decayed_ids, reference.report.decayed_ids);
  EXPECT_EQ(sharded->merged_records, corpus.module_ids.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByThreads, ShardEqualityTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(size_t{1}, size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, size_t>>& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ShardEqualitySuite, OrchestratedFanOutMatchesSequential) {
  const ScaleCorpus& corpus = TestCorpus();
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_fanout"));

  // Fan the shard runs out over a pooled engine: completion interleaving
  // changes, bytes must not.
  EngineConfig orchestration = EngineConfig().Threads(8).Seed(0x0AC5);
  auto orchestrator = orchestration.BuildEngine();
  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("sharded_fanout");
  options.orchestrator = orchestrator.get();
  auto target = FreshRegistry(*corpus.registry);
  auto sharded = RunShardedAnnotate(*target, *corpus.ontology, *corpus.pool,
                                    Config(1), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(sharded->merged.run_status.ok());
  EXPECT_EQ(JournalBytes(sharded->merged_dir), JournalBytes(reference.dir));
}

// --------------------------------------------------------------------------
// Merge determinism under permuted completion order
// --------------------------------------------------------------------------

TEST(ShardMergeTest, MergeIsInvariantUnderShardCompletionOrder) {
  const ScaleCorpus& corpus = TestCorpus();
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_order"));

  const std::vector<std::vector<uint32_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  for (size_t variant = 0; variant < orders.size(); ++variant) {
    ShardOptions options;
    options.shards = 4;
    options.root = FreshDir("order_" + std::to_string(variant));
    ASSERT_TRUE(InitShardedRun(*corpus.registry, Config(1), options).ok());
    for (uint32_t k : orders[variant]) {
      auto run = RunShard(*corpus.registry, *corpus.ontology, *corpus.pool,
                          Config(1), options, k);
      ASSERT_TRUE(run.ok()) << run.status();
      ASSERT_TRUE(run->report.run_status.ok());
    }
    auto target = FreshRegistry(*corpus.registry);
    auto merge = MergeShards(*target, *corpus.ontology, Config(1), options);
    ASSERT_TRUE(merge.ok()) << merge.status();
    EXPECT_EQ(JournalBytes(merge->merged_dir), JournalBytes(reference.dir))
        << "completion order variant " << variant;
  }
}

// --------------------------------------------------------------------------
// Crash-resume of a shard subset
// --------------------------------------------------------------------------

/// Picks a module id owned by shard `k` under the test partition.
std::string ModuleInShard(uint32_t shards, uint64_t salt, uint32_t k) {
  for (const std::string& id : TestCorpus().module_ids) {
    if (ShardOfModule(id, shards, salt) == k) return id;
  }
  ADD_FAILURE() << "no module lands in shard " << k;
  return "";
}

class ShardCrashResumeTest : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(ShardCrashResumeTest, KilledShardSubsetResumesToOneShotBytes) {
  const CrashPoint point = GetParam();
  const ScaleCorpus& corpus = TestCorpus();
  const std::string tag = std::to_string(static_cast<int>(point));
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_crash_" + tag));

  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("sharded_crash_" + tag);

  // Kill one shard mid-run: the crash plan keys on a module id, so only
  // the owning shard aborts; the other three complete.
  CrashPlan crash;
  crash.point = point;
  crash.key = ModuleInShard(options.shards, options.partition_salt, 2);
  options.crash = &crash;
  auto target = FreshRegistry(*corpus.registry);
  auto crashed = RunShardedAnnotate(*target, *corpus.ontology, *corpus.pool,
                                    Config(1), options);
  ASSERT_TRUE(crashed.ok()) << crashed.status();
  EXPECT_FALSE(crashed->merged.run_status.ok());
  EXPECT_TRUE(crashed->merged_dir.empty());  // no merge of a partial run

  // Resubmit without the crash plan: completed shards replay from their
  // journals, the killed shard resumes its valid prefix, and the merged
  // output is byte-identical to the never-crashed one-shot run.
  options.crash = nullptr;
  auto resumed = FreshRegistry(*corpus.registry);
  auto recovered = RunShardedAnnotate(*resumed, *corpus.ontology,
                                      *corpus.pool, Config(1), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->merged.run_status.ok())
      << recovered->merged.run_status;
  for (const ShardRunReport& shard : recovered->shards) {
    EXPECT_TRUE(shard.resumed) << "shard " << shard.shard;
  }
  EXPECT_EQ(JournalBytes(recovered->merged_dir), JournalBytes(reference.dir));
  EXPECT_EQ(Annotations(*resumed), Annotations(*reference.registry));
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, ShardCrashResumeTest,
                         ::testing::Values(CrashPoint::kCrashAfterCommit,
                                           CrashPoint::kTornWrite),
                         [](const ::testing::TestParamInfo<CrashPoint>& info) {
                           return info.param == CrashPoint::kCrashAfterCommit
                                      ? "after_commit"
                                      : "torn_write";
                         });

TEST(ShardCrashResumeSuite, TwoKilledShardsResumeIndependently) {
  const ScaleCorpus& corpus = TestCorpus();
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_twocrash"));

  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("sharded_twocrash");
  ASSERT_TRUE(InitShardedRun(*corpus.registry, Config(1), options).ok());

  // Crash shard 1 (after-commit) and shard 3 (torn write) in separate
  // passes; run shards 0 and 2 to completion.
  for (uint32_t k : {1u, 3u}) {
    CrashPlan crash;
    crash.point = k == 1 ? CrashPoint::kCrashAfterCommit
                         : CrashPoint::kTornWrite;
    crash.key = ModuleInShard(options.shards, options.partition_salt, k);
    ShardOptions crashing = options;
    crashing.crash = &crash;
    auto run = RunShard(*corpus.registry, *corpus.ontology, *corpus.pool,
                        Config(1), crashing, k);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_FALSE(run->report.run_status.ok());
  }
  for (uint32_t k : {0u, 2u}) {
    auto run = RunShard(*corpus.registry, *corpus.ontology, *corpus.pool,
                        Config(1), options, k);
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(run->report.run_status.ok());
  }

  // Merging with two dead shards is refused, typed.
  auto target = FreshRegistry(*corpus.registry);
  EXPECT_TRUE(MergeShards(*target, *corpus.ontology, Config(1), options)
                  .status()
                  .IsUnavailable());

  // Resume exactly the killed subset, then merge.
  for (uint32_t k : {1u, 3u}) {
    auto run = RunShard(*corpus.registry, *corpus.ontology, *corpus.pool,
                        Config(1), options, k);
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(run->report.run_status.ok());
    EXPECT_TRUE(run->resumed);
    // Shard 1 crashed *after* its first commit, so the resume replays it.
    // Shard 3's torn write may have destroyed its only commit record, in
    // which case there is legitimately nothing to replay.
    if (k == 1) {
      EXPECT_GT(run->report.replayed, 0u);
    }
  }
  auto merge = MergeShards(*target, *corpus.ontology, Config(1), options);
  ASSERT_TRUE(merge.ok()) << merge.status();
  EXPECT_EQ(JournalBytes(merge->merged_dir), JournalBytes(reference.dir));
}

// --------------------------------------------------------------------------
// Fault-injected shards converge to the fault-free digest
// --------------------------------------------------------------------------

TEST(ShardFaultTest, FlakyShardsConvergeToTheFaultFreeBytes) {
  const ScaleCorpus& corpus = TestCorpus();
  // Fault-free reference.
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_faultfree"));

  // Deterministic flakiness: every module's first attempt fails
  // kTransient; with MaxAttempts(4) the retry always lands, so outcomes
  // (and therefore bytes) match the fault-free run — per-module, not per
  // schedule, which is why sharding cannot perturb it.
  FaultProfile profile;
  profile.flaky_first_attempts = 1;
  auto flaky = WrapRegistryWithFaults(*corpus.registry, profile);
  ASSERT_TRUE(flaky.ok()) << flaky.status();

  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("sharded_flaky");
  auto sharded = RunShardedAnnotate(**flaky, *corpus.ontology, *corpus.pool,
                                    Config(1), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(sharded->merged.run_status.ok()) << sharded->merged.run_status;
  EXPECT_EQ(JournalBytes(sharded->merged_dir), JournalBytes(reference.dir));
  EXPECT_EQ(sharded->merged.transient_exhausted,
            reference.report.transient_exhausted);
}

// --------------------------------------------------------------------------
// Golden-trace replay equality
// --------------------------------------------------------------------------

/// Replays a complete journal into a fresh registry with a tracer attached
/// and returns the Chrome trace bytes.
std::string ReplayTrace(const std::string& dir) {
  const ScaleCorpus& corpus = TestCorpus();
  auto registry = FreshRegistry(*corpus.registry);
  EngineConfig config = Config(1);
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      corpus.ontology.get(), corpus.pool.get(), engine.get());
  auto recovery = RecoverJournal(dir, &engine->metrics());
  EXPECT_TRUE(recovery.ok()) << recovery.status();
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine->metrics());
  EXPECT_TRUE(journal.ok()) << journal.status();
  obs::Tracer tracer(&engine->clock());
  RunRequest request = MakeDurableAnnotateRun(generator, *registry,
                                              *corpus.ontology, *journal);
  request.resume = &*recovery;
  request.obs.tracer = &tracer;
  auto run = SubmitRun(request);
  EXPECT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete());
  EXPECT_EQ(run->annotate.replayed, TestCorpus().module_ids.size());
  return obs::WriteChromeTrace(tracer);
}

TEST(ShardTraceTest, MergedJournalReplaysToTheOneShotGoldenTrace) {
  const ScaleCorpus& corpus = TestCorpus();
  OneShot reference =
      RunOneShot(*corpus.registry, 1, FreshDir("oneshot_trace"));

  ShardOptions options;
  options.shards = 4;
  options.root = FreshDir("sharded_trace");
  auto target = FreshRegistry(*corpus.registry);
  auto sharded = RunShardedAnnotate(*target, *corpus.ontology, *corpus.pool,
                                    Config(1), options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(sharded->merged.run_status.ok());

  // Same journal bytes ⇒ same replay ⇒ same span tree, byte for byte.
  EXPECT_EQ(ReplayTrace(sharded->merged_dir), ReplayTrace(reference.dir));
}

}  // namespace
}  // namespace dexa
