#include <gtest/gtest.h>

#include "ontology/mygrid.h"
#include "pool/instance_pool.h"

namespace dexa {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  PoolTest() : onto_(BuildMyGridOntology()), pool_(&onto_) {}

  ConceptId C(const char* name) { return onto_.Find(name); }

  Ontology onto_;
  AnnotatedInstancePool pool_;
};

TEST_F(PoolTest, AddAndCount) {
  pool_.Add(C("DNASequence"), Value::Str("ACGT"));
  pool_.Add(C("DNASequence"), Value::Str("GGCC"));
  pool_.Add(C("RNASequence"), Value::Str("ACGU"));
  EXPECT_EQ(pool_.size(), 3u);
  EXPECT_EQ(pool_.CountFor(C("DNASequence")), 2u);
  EXPECT_EQ(pool_.CountFor(C("RNASequence")), 1u);
  EXPECT_EQ(pool_.CountFor(C("ProteinSequence")), 0u);
  EXPECT_EQ(pool_.PopulatedConcepts().size(), 2u);
}

TEST_F(PoolTest, DeduplicatesValues) {
  pool_.Add(C("DNASequence"), Value::Str("ACGT"));
  pool_.Add(C("DNASequence"), Value::Str("ACGT"));
  EXPECT_EQ(pool_.CountFor(C("DNASequence")), 1u);
  // Same value under a different concept is a distinct entry.
  pool_.Add(C("RNASequence"), Value::Str("ACGT"));
  EXPECT_EQ(pool_.size(), 2u);
}

TEST_F(PoolTest, GetInstanceIsRealizationOnly) {
  // Instances of a sub-concept are NOT realizations of the ancestor.
  pool_.Add(C("DNASequence"), Value::Str("ACGT"));
  EXPECT_TRUE(pool_.GetInstance(C("NucleotideSequence")).status().IsNotFound());
  EXPECT_TRUE(pool_.GetInstance(C("DNASequence")).ok());
  // First-added value is the canonical realization.
  pool_.Add(C("DNASequence"), Value::Str("GGTT"));
  EXPECT_EQ(pool_.GetInstance(C("DNASequence"))->AsString(), "ACGT");
}

TEST_F(PoolTest, GetInstanceCompatibleFiltersByStructure) {
  pool_.Add(C("ErrorTolerance"), Value::Str("not a number"));
  pool_.Add(C("ErrorTolerance"), Value::Real(5.0));
  auto v = pool_.GetInstanceCompatible(C("ErrorTolerance"),
                                       StructuralType::Double());
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(v->AsDouble(), 5.0);
  EXPECT_TRUE(pool_
                  .GetInstanceCompatible(C("ErrorTolerance"),
                                         StructuralType::Boolean())
                  .status()
                  .IsNotFound());
}

TEST_F(PoolTest, SynthesizesListsFromScalars) {
  pool_.Add(C("UniprotAccession"), Value::Str("P00001"));
  pool_.Add(C("UniprotAccession"), Value::Str("P00002"));
  pool_.Add(C("UniprotAccession"), Value::Str("P00003"));
  StructuralType list = StructuralType::List(StructuralType::String());
  auto v = pool_.GetInstanceCompatible(C("UniprotAccession"), list);
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_list());
  EXPECT_EQ(v->AsList().size(), 3u);
  EXPECT_EQ(v->AsList()[0].AsString(), "P00001");
  // Cap at max_list_elements.
  pool_.Add(C("UniprotAccession"), Value::Str("P00004"));
  pool_.Add(C("UniprotAccession"), Value::Str("P00005"));
  auto capped = pool_.GetInstanceCompatible(C("UniprotAccession"), list, 4);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->AsList().size(), 4u);
}

TEST_F(PoolTest, PrefersPooledListWhenPresent) {
  StructuralType list = StructuralType::List(StructuralType::Double());
  Value pooled = Value::ListOf({Value::Real(1.0), Value::Real(2.0)});
  pool_.Add(C("PeptideMassList"), pooled);
  auto v = pool_.GetInstanceCompatible(C("PeptideMassList"), list);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, pooled);
}

TEST_F(PoolTest, MissingConceptFails) {
  EXPECT_TRUE(pool_.GetInstance(C("GlycanId")).status().IsNotFound());
  EXPECT_TRUE(pool_
                  .GetInstanceCompatible(C("GlycanId"),
                                         StructuralType::String())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace dexa
