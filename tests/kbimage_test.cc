// Backend-equivalence and damage-ladder suite for the compiled KB image
// (src/kbimage/). The contract under test: a compiled, memory-mapped image
// answers every reasoning query (subsumption, descendants, partitions,
// LCS, depth, names, covered flags) identically to the in-memory Ontology
// it was compiled from — over the real myGrid ontology AND randomized
// ontologies — and any damaged image fails Load with a typed kCorrupted,
// never undefined behavior.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/concept_cache.h"
#include "kb/knowledge_base.h"
#include "kbimage/builder.h"
#include "kbimage/compiled_kb.h"
#include "kbimage/format.h"
#include "kbimage/kb_view.h"
#include "ontology/mygrid.h"
#include "ontology/ontology.h"

namespace dexa {
namespace {

namespace fs = std::filesystem;

/// A tiny KB keeps compile+load fast; entity content is irrelevant to the
/// reasoning-equivalence property.
KnowledgeBaseOptions SmallKbOptions() {
  KnowledgeBaseOptions options;
  options.num_proteins = 24;
  options.num_pathways = 6;
  options.num_go_terms = 12;
  options.num_enzymes = 6;
  options.num_glycans = 4;
  options.num_ligands = 4;
  options.num_compounds = 8;
  options.num_diseases = 4;
  options.num_interpro = 4;
  options.num_pfam = 4;
  options.num_documents = 8;
  return options;
}

fs::path TempPath(const std::string& name) {
  return fs::temp_directory_path() / ("dexa_kbimage_test_" + name);
}

std::string CompileToFileAndRead(const Ontology& ontology,
                                 const KnowledgeBase& kb,
                                 const fs::path& path) {
  Status written = kbimage::WriteKbImage(ontology, kb, path.string());
  EXPECT_TRUE(written.ok()) << written;
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// Asserts every KbView query agrees between `image` and the in-memory
/// view of `ontology`, across all concepts and all concept pairs.
void ExpectBackendEquivalence(const kbimage::CompiledKb& image,
                              const Ontology& ontology) {
  OntologyKbView memory(&ontology);
  ASSERT_EQ(image.ConceptCount(), memory.ConceptCount());
  const ConceptId n = static_cast<ConceptId>(ontology.size());
  for (ConceptId c = 0; c < n; ++c) {
    EXPECT_EQ(image.ConceptName(c), memory.ConceptName(c)) << "id " << c;
    EXPECT_EQ(image.FindConcept(memory.ConceptName(c)), c);
    EXPECT_EQ(image.Covered(c), memory.Covered(c)) << "id " << c;
    EXPECT_EQ(image.Depth(c), memory.Depth(c)) << "id " << c;
    EXPECT_EQ(image.Descendants(c), memory.Descendants(c)) << "id " << c;
    EXPECT_EQ(image.Partitions(c), memory.Partitions(c)) << "id " << c;
  }
  for (ConceptId a = 0; a < n; ++a) {
    for (ConceptId b = 0; b < n; ++b) {
      EXPECT_EQ(image.IsSubsumedBy(a, b), memory.IsSubsumedBy(a, b))
          << "a=" << a << " b=" << b;
      EXPECT_EQ(image.LeastCommonSubsumer(a, b),
                memory.LeastCommonSubsumer(a, b))
          << "a=" << a << " b=" << b;
    }
  }
  EXPECT_EQ(image.FindConcept("NoSuchConceptAnywhere"), kInvalidConcept);
}

/// Builds a randomized multi-parent DAG ontology: `size` concepts, each
/// non-root attached to 1-3 uniformly random earlier concepts, random
/// covered flags. Insertion order assigns ids, matching the image's
/// dense-id contract.
Ontology RandomOntology(uint64_t seed, int size) {
  Rng rng(seed);
  Ontology ontology{"random_" + std::to_string(seed)};
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(size));
  const int roots = 1 + static_cast<int>(rng.NextBelow(3));
  for (int c = 0; c < size; ++c) {
    std::string name = "C" + std::to_string(c);
    if (c < roots) {
      auto id = ontology.AddRoot(name, rng.NextBool(0.3));
      EXPECT_TRUE(id.ok()) << id.status();
    } else {
      std::vector<std::string> parents;
      const int arity = 1 + static_cast<int>(rng.NextBelow(3));
      for (int p = 0; p < arity; ++p) {
        const std::string& parent = names[rng.NextIndex(names.size())];
        bool duplicate = false;
        for (const std::string& existing : parents) {
          if (existing == parent) duplicate = true;
        }
        if (!duplicate) parents.push_back(parent);
      }
      auto id = ontology.AddConcept(name, parents, rng.NextBool(0.3));
      EXPECT_TRUE(id.ok()) << id.status();
    }
    names.push_back(std::move(name));
  }
  return ontology;
}

TEST(KbImageTest, MyGridBackendEquivalence) {
  Ontology ontology = BuildMyGridOntology();
  KnowledgeBase kb(7, SmallKbOptions());
  const fs::path path = TempPath("mygrid.img");
  std::string bytes = CompileToFileAndRead(ontology, kb, path);
  ASSERT_FALSE(bytes.empty());

  auto image = kbimage::CompiledKb::Load(path.string());
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ((*image)->backend(), KbBackend::kImage);
  EXPECT_NE((*image)->checksum(), 0u);
  EXPECT_EQ((*image)->kb_seed(), 7u);
  EXPECT_EQ((*image)->ontology_name(), ontology.name());
  ExpectBackendEquivalence(**image, ontology);
  fs::remove(path);
}

TEST(KbImageTest, RandomizedBackendEquivalence) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng sizer(seed * 977);
    const int size = 12 + static_cast<int>(sizer.NextBelow(48));
    Ontology ontology = RandomOntology(seed, size);
    KnowledgeBase kb(seed, SmallKbOptions());
    const fs::path path =
        TempPath("random_" + std::to_string(seed) + ".img");
    CompileToFileAndRead(ontology, kb, path);
    auto image = kbimage::CompiledKb::Load(path.string());
    ASSERT_TRUE(image.ok()) << "seed " << seed << ": " << image.status();
    ExpectBackendEquivalence(**image, ontology);
    fs::remove(path);
  }
}

TEST(KbImageTest, ConceptCacheAgreesAcrossBackends) {
  Ontology ontology = BuildMyGridOntology();
  KnowledgeBase kb(7, SmallKbOptions());
  const fs::path path = TempPath("cache.img");
  CompileToFileAndRead(ontology, kb, path);
  auto image = kbimage::CompiledKb::Load(path.string());
  ASSERT_TRUE(image.ok()) << image.status();

  std::shared_ptr<const kbimage::CompiledKb> shared(std::move(*image));
  ConceptCache image_cache(shared);
  ConceptCache memory_cache(&ontology);
  const ConceptId n = static_cast<ConceptId>(ontology.size());
  for (ConceptId a = 0; a < n; ++a) {
    EXPECT_EQ(image_cache.Partitions(a), memory_cache.Partitions(a));
    EXPECT_EQ(image_cache.Descendants(a), memory_cache.Descendants(a));
    for (ConceptId b = 0; b < n; ++b) {
      EXPECT_EQ(image_cache.IsSubsumedBy(a, b),
                memory_cache.IsSubsumedBy(a, b));
      EXPECT_EQ(image_cache.Comparable(a, b), memory_cache.Comparable(a, b));
      EXPECT_EQ(image_cache.LeastCommonSubsumer(a, b),
                memory_cache.LeastCommonSubsumer(a, b));
    }
  }
  fs::remove(path);
}

TEST(KbImageTest, CompilationIsDeterministic) {
  Ontology ontology = BuildMyGridOntology();
  KnowledgeBase kb(7, SmallKbOptions());
  auto first = kbimage::CompileKbImage(ontology, kb);
  auto second = kbimage::CompileKbImage(ontology, kb);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);
}

TEST(KbImageTest, MaterializedOntologyRecompilesIdentically) {
  Ontology ontology = BuildMyGridOntology();
  KnowledgeBase kb(7, SmallKbOptions());
  const fs::path path = TempPath("roundtrip.img");
  std::string original = CompileToFileAndRead(ontology, kb, path);

  auto image = kbimage::CompiledKb::Load(path.string());
  ASSERT_TRUE(image.ok()) << image.status();
  auto materialized_ontology = (*image)->MaterializeOntology();
  ASSERT_TRUE(materialized_ontology.ok()) << materialized_ontology.status();
  auto materialized_kb = (*image)->MaterializeKnowledgeBase();
  ASSERT_TRUE(materialized_kb.ok()) << materialized_kb.status();

  // Round-trip fidelity: compiling what the image materializes reproduces
  // the original image byte-for-byte — ids, names, edges, entities.
  auto recompiled =
      kbimage::CompileKbImage(*materialized_ontology, **materialized_kb);
  ASSERT_TRUE(recompiled.ok()) << recompiled.status();
  EXPECT_EQ(*recompiled, original);
  fs::remove(path);
}

// ---- Damage ladder -------------------------------------------------------

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class KbImageDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Ontology ontology = BuildMyGridOntology();
    KnowledgeBase kb(7, SmallKbOptions());
    auto bytes = kbimage::CompileKbImage(ontology, kb);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    bytes_ = std::move(bytes).value();
    path_ = TempPath("damage.img");
  }

  void TearDown() override { fs::remove(path_); }

  /// Writes `damaged` and asserts Load reports corruption (or a typed
  /// parse failure for header-level damage) without crashing.
  void ExpectRejected(const std::string& damaged) {
    WriteBytes(path_, damaged);
    auto image = kbimage::CompiledKb::Load(path_.string());
    ASSERT_FALSE(image.ok());
    EXPECT_TRUE(image.status().IsCorrupted()) << image.status();
  }

  std::string bytes_;
  fs::path path_;
};

TEST_F(KbImageDamageTest, PristineImageLoads) {
  WriteBytes(path_, bytes_);
  auto image = kbimage::CompiledKb::Load(path_.string());
  EXPECT_TRUE(image.ok()) << image.status();
}

TEST_F(KbImageDamageTest, SingleBitFlipAnywhereIsCorrupted) {
  // A deterministic sweep of single-bit flips across the whole file,
  // including header, section table, string table, bitsets, and seal.
  Rng rng(2026);
  for (int round = 0; round < 64; ++round) {
    std::string damaged = bytes_;
    const size_t pos = rng.NextIndex(damaged.size());
    damaged[pos] = static_cast<char>(damaged[pos] ^
                                     (1 << rng.NextBelow(8)));
    if (damaged == bytes_) continue;  // Flip landed on the same bit twice.
    ExpectRejected(damaged);
  }
}

TEST_F(KbImageDamageTest, TruncationIsCorrupted) {
  Rng rng(4096);
  for (int round = 0; round < 16; ++round) {
    const size_t keep = rng.NextIndex(bytes_.size());
    ExpectRejected(bytes_.substr(0, keep));
  }
  ExpectRejected("");
  ExpectRejected(bytes_.substr(0, sizeof(kbimage::ImageHeader) - 1));
}

TEST_F(KbImageDamageTest, TrailingGarbageIsCorrupted) {
  ExpectRejected(bytes_ + std::string(64, '\0'));
  ExpectRejected(bytes_ + "x");
}

TEST_F(KbImageDamageTest, WrongMagicIsCorrupted) {
  std::string damaged = bytes_;
  damaged[0] = 'X';
  ExpectRejected(damaged);
}

TEST_F(KbImageDamageTest, CrossVersionImageIsCorrupted) {
  // A future-version image must be refused even if the rest of the bytes
  // are intact: bump the version field.
  std::string damaged = bytes_;
  uint32_t version = 0;
  std::memcpy(&version, damaged.data() + 8, sizeof(version));
  version += 1;
  std::memcpy(damaged.data() + 8, &version, sizeof(version));
  ExpectRejected(damaged);
}

TEST_F(KbImageDamageTest, MissingFileIsError) {
  auto image = kbimage::CompiledKb::Load(
      (fs::temp_directory_path() / "dexa_kbimage_no_such_file.img").string());
  EXPECT_FALSE(image.ok());
}

}  // namespace
}  // namespace dexa
