// Tests of the curator-assistance annotation suggester (Figure 3, box 1).

#include <gtest/gtest.h>

#include "core/annotation_suggester.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class SuggesterTest : public ::testing::Test {
 protected:
  SuggesterTest()
      : env_(GetEnvironment()), suggester_(env_.corpus.ontology.get()) {}

  std::string TopSuggestion(const std::string& name,
                            const Value& sample = Value::Null()) {
    auto suggestions =
        suggester_.Suggest(name, StructuralType::String(), sample);
    if (suggestions.empty()) return "";
    return env_.corpus.ontology->NameOf(suggestions[0].concept_id);
  }

  const testing_env::Environment& env_;
  AnnotationSuggester suggester_;
};

TEST(TokenizeTest, SplitsIdentifiers) {
  EXPECT_EQ(TokenizeIdentifier("getProteinSequence"),
            (std::vector<std::string>{"get", "protein", "sequence"}));
  EXPECT_EQ(TokenizeIdentifier("peptide_masses"),
            (std::vector<std::string>{"peptide", "masses"}));
  EXPECT_EQ(TokenizeIdentifier("DNASequence"),
            (std::vector<std::string>{"dna", "sequence"}));
  EXPECT_EQ(TokenizeIdentifier("UniprotAccession"),
            (std::vector<std::string>{"uniprot", "accession"}));
  EXPECT_EQ(TokenizeIdentifier("GO-term id"),
            (std::vector<std::string>{"go", "term", "id"}));
  EXPECT_TRUE(TokenizeIdentifier("").empty());
}

TEST_F(SuggesterTest, LexicalMatchesParameterNames) {
  EXPECT_EQ(TopSuggestion("protein_sequence"), "ProteinSequence");
  EXPECT_EQ(TopSuggestion("dnaSequence"), "DNASequence");
  EXPECT_EQ(TopSuggestion("uniprot_accession"), "UniprotAccession");
  EXPECT_EQ(TopSuggestion("pathwayId"), "PathwayId");
}

TEST_F(SuggesterTest, SampleValueDisambiguates) {
  // "accession" alone is ambiguous across namespaces; a sample value pins
  // the namespace down.
  const KnowledgeBase& kb = *env_.corpus.kb;
  EXPECT_EQ(TopSuggestion("accession", Value::Str(kb.proteins()[0].accession)),
            "UniprotAccession");
  EXPECT_EQ(TopSuggestion("accession",
                          Value::Str(kb.proteins()[0].pdb_accession)),
            "PDBAccession");
  EXPECT_EQ(TopSuggestion("id", Value::Str(kb.genes()[0].gene_id)),
            "KEGGGeneId");
}

TEST_F(SuggesterTest, SampleContradictionDemotesLexicalHits) {
  // The name says protein sequence but the data is DNA: the instance-based
  // matcher wins.
  auto suggestions = suggester_.Suggest(
      "protein_sequence", StructuralType::String(),
      Value::Str(env_.corpus.kb->genes()[0].dna_sequence));
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(env_.corpus.ontology->NameOf(suggestions[0].concept_id),
            "DNASequence");
}

TEST_F(SuggesterTest, ListSamplesUseElementValues) {
  std::vector<Value> masses = {Value::Real(1123.5), Value::Real(980.2)};
  auto suggestions =
      suggester_.Suggest("peptide_masses",
                         StructuralType::List(StructuralType::Double()),
                         Value::ListOf(masses));
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(env_.corpus.ontology->NameOf(suggestions[0].concept_id),
            "PeptideMassList");
}

TEST_F(SuggesterTest, RespectsTopKAndOmitsCoveredConcepts) {
  auto suggestions =
      suggester_.Suggest("sequence", StructuralType::String(), Value::Null(), 3);
  EXPECT_LE(suggestions.size(), 3u);
  for (const ConceptSuggestion& suggestion : suggestions) {
    EXPECT_FALSE(env_.corpus.ontology->Get(suggestion.concept_id).covered);
  }
}

}  // namespace
}  // namespace dexa
