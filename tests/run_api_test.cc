// Facade-equivalence suite for the RunRequest/RunResult API
// (core/run_api.h): every run family submitted through SubmitRun must be
// byte-identical to the entry point it subsumes — annotations, journal
// bytes, enactment outputs — at any thread count, including crash-resume
// through the facade.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_config.h"
#include "core/run_api.h"
#include "corpus/fault_injector.h"
#include "durability/durable_annotate.h"
#include "durability/durable_enact.h"
#include "durability/journal.h"
#include "durability/snapshot.h"
#include "modules/registry_io.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

namespace fs = std::filesystem;

using testing_env::GetEnvironment;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_run_api" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A fresh, unannotated registry with the environment's module ids (every
/// module wrapped in a pass-through injector).
std::unique_ptr<ModuleRegistry> FreshRegistry() {
  const auto& env = GetEnvironment();
  auto wrapped = WrapRegistryWithFaults(*env.corpus.registry, FaultProfile{});
  EXPECT_TRUE(wrapped.ok()) << wrapped.status();
  return std::move(wrapped).value();
}

/// All journal segment bytes of `dir`, concatenated in segment order — the
/// byte-identity witness for durable runs.
std::string JournalBytes(const std::string& dir) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  std::string bytes;
  for (const fs::path& segment : segments) {
    auto content = ReadFileToString(segment.string());
    EXPECT_TRUE(content.ok()) << content.status();
    if (content.ok()) bytes += *content;
  }
  return bytes;
}

std::string Annotations(const ModuleRegistry& registry) {
  return SaveAnnotations(registry, *GetEnvironment().corpus.ontology);
}

/// A still-enactable corpus workflow with >= 3 processors.
const GeneratedWorkflow& PickWorkflow() {
  const auto& env = GetEnvironment();
  for (const GeneratedWorkflow& item : env.workflows.items) {
    if (item.workflow.processors.size() >= 3 &&
        IsEnactable(item.workflow, *env.corpus.registry)) {
      return item;
    }
  }
  ADD_FAILURE() << "no enactable workflow with >= 3 processors";
  std::abort();
}

TEST(RunApiTest, RunKindNamesAreStable) {
  EXPECT_STREQ(RunKindName(RunKind::kAnnotate), "annotate");
  EXPECT_STREQ(RunKindName(RunKind::kAnnotateDurable), "annotate_durable");
  EXPECT_STREQ(RunKindName(RunKind::kEnact), "enact");
  EXPECT_STREQ(RunKindName(RunKind::kEnactDurable), "enact_durable");
}

TEST(RunApiTest, ValidatesRequiredFieldsPerKind) {
  RunRequest empty;  // kAnnotate with no generator/registry.
  auto result = SubmitRun(empty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  auto registry = FreshRegistry();

  RunRequest durable = MakeAnnotateRun(generator, *registry);
  durable.kind = RunKind::kAnnotateDurable;  // No ontology, no journal.
  auto durable_result = SubmitRun(durable);
  ASSERT_FALSE(durable_result.ok());
  EXPECT_EQ(durable_result.status().code(), StatusCode::kInvalidArgument);

  RunRequest enact;
  enact.kind = RunKind::kEnact;  // No workflow/registry/engine.
  auto enact_result = SubmitRun(enact);
  ASSERT_FALSE(enact_result.ok());
  EXPECT_EQ(enact_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunApiTest, AnnotateFacadeMatchesDirectEntry) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());

  auto direct_registry = FreshRegistry();
  auto direct = AnnotateRegistry(generator, *direct_registry);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_TRUE(direct->complete()) << direct->run_status;

  auto facade_registry = FreshRegistry();
  auto facade = SubmitRun(MakeAnnotateRun(generator, *facade_registry));
  ASSERT_TRUE(facade.ok()) << facade.status();
  ASSERT_TRUE(facade->complete()) << facade->run_status;
  EXPECT_EQ(facade->kind, RunKind::kAnnotate);

  EXPECT_EQ(facade->annotate.annotated, direct->annotated);
  EXPECT_EQ(facade->annotate.examples, direct->examples);
  EXPECT_EQ(Annotations(*facade_registry), Annotations(*direct_registry));
}

TEST(RunApiTest, AnnotateFacadeByteIdenticalAcrossThreadCounts) {
  const auto& env = GetEnvironment();
  std::string annotations_t1, annotations_t8;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    EngineConfig config = EngineConfig().Threads(threads);
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    auto registry = FreshRegistry();
    auto result = SubmitRun(MakeAnnotateRun(generator, *registry));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->complete()) << result->run_status;
    (threads == 1 ? annotations_t1 : annotations_t8) = Annotations(*registry);
  }
  EXPECT_EQ(annotations_t1, annotations_t8);
  EXPECT_FALSE(annotations_t1.empty());
}

TEST(RunApiTest, DurableAnnotateFacadeMatchesLegacyShim) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());

  // Legacy entry point (its last legitimate call sites are this equivalence
  // suite and the shims themselves — dexa-lint bans it elsewhere).
  const std::string legacy_dir = FreshDir("legacy");
  auto legacy_registry = FreshRegistry();
  {
    auto journal = RunJournal::Create(legacy_dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto report = AnnotateRegistryDurable(generator, *legacy_registry,
                                          *env.corpus.ontology, *journal);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_TRUE(report->complete()) << report->run_status;
  }

  const std::string facade_dir = FreshDir("facade");
  auto facade_registry = FreshRegistry();
  {
    auto journal = RunJournal::Create(facade_dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto result = SubmitRun(MakeDurableAnnotateRun(
        generator, *facade_registry, *env.corpus.ontology, *journal));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->complete()) << result->run_status;
    EXPECT_EQ(result->kind, RunKind::kAnnotateDurable);
  }

  // Byte-for-byte: the annotations AND the journals the two paths wrote.
  EXPECT_EQ(Annotations(*facade_registry), Annotations(*legacy_registry));
  const std::string legacy_journal = JournalBytes(legacy_dir);
  EXPECT_EQ(JournalBytes(facade_dir), legacy_journal);
  EXPECT_FALSE(legacy_journal.empty());
}

TEST(RunApiTest, DurableAnnotateJournalByteIdenticalAcrossThreadCounts) {
  const auto& env = GetEnvironment();
  std::string journal_t1, journal_t8, annotations_t1, annotations_t8;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    EngineConfig config = EngineConfig().Threads(threads);
    auto engine = config.BuildEngine();
    ExampleGenerator generator = config.MakeGenerator(
        env.corpus.ontology.get(), env.pool.get(), engine.get());
    const std::string dir =
        FreshDir("threads" + std::to_string(threads));
    auto registry = FreshRegistry();
    auto journal = RunJournal::Create(dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto result = SubmitRun(MakeDurableAnnotateRun(
        generator, *registry, *env.corpus.ontology, *journal));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->complete()) << result->run_status;
    (threads == 1 ? journal_t1 : journal_t8) = JournalBytes(dir);
    (threads == 1 ? annotations_t1 : annotations_t8) = Annotations(*registry);
  }
  EXPECT_EQ(journal_t1, journal_t8);
  EXPECT_EQ(annotations_t1, annotations_t8);
}

TEST(RunApiTest, DurableAnnotateCrashResumesThroughFacade) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());

  // Uninterrupted facade run: the baseline annotations.
  const std::string baseline_dir = FreshDir("crash_baseline");
  auto baseline_registry = FreshRegistry();
  {
    auto journal = RunJournal::Create(baseline_dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    auto result = SubmitRun(MakeDurableAnnotateRun(
        generator, *baseline_registry, *env.corpus.ontology, *journal));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->complete()) << result->run_status;
  }

  const std::string crash_key = env.corpus.available_ids[10];
  const std::string dir = FreshDir("crash");
  auto registry = FreshRegistry();
  {
    auto journal = RunJournal::Create(dir);
    ASSERT_TRUE(journal.ok()) << journal.status();
    CrashPlan crash;
    crash.point = CrashPoint::kCrashBeforeCommit;
    crash.key = crash_key;
    RunRequest request = MakeDurableAnnotateRun(
        generator, *registry, *env.corpus.ontology, *journal);
    request.crash = &crash;
    auto crashed = SubmitRun(request);
    ASSERT_TRUE(crashed.ok()) << crashed.status();
    EXPECT_FALSE(crashed->complete());
    EXPECT_EQ(crashed->run_status.code(), StatusCode::kCancelled);
    EXPECT_LT(crashed->annotate.annotated, baseline_registry->size());
  }

  // Resume through the facade on a fresh registry.
  auto resumed_registry = FreshRegistry();
  auto recovery = RecoverJournal(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  auto journal = RunJournal::Resume(dir, *recovery);
  ASSERT_TRUE(journal.ok()) << journal.status();
  RunRequest request = MakeDurableAnnotateRun(
      generator, *resumed_registry, *env.corpus.ontology, *journal);
  request.resume = &*recovery;
  auto resumed = SubmitRun(request);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->complete()) << resumed->run_status;
  EXPECT_GT(resumed->annotate.replayed, 0u);

  EXPECT_EQ(Annotations(*resumed_registry), Annotations(*baseline_registry));
}

TEST(RunApiTest, EnactFacadeMatchesDirectEntry) {
  const auto& env = GetEnvironment();
  const GeneratedWorkflow& item = PickWorkflow();

  InvocationEngine direct_engine;
  auto direct = EnactResilient(item.workflow, *env.corpus.registry,
                               item.seeds, direct_engine);
  ASSERT_TRUE(direct.ok()) << direct.status();

  InvocationEngine facade_engine;
  auto facade = SubmitRun(MakeEnactRun(item.workflow, *env.corpus.registry,
                                       item.seeds, facade_engine));
  ASSERT_TRUE(facade.ok()) << facade.status();
  ASSERT_TRUE(facade->complete()) << facade->run_status;
  EXPECT_EQ(facade->kind, RunKind::kEnact);

  ASSERT_EQ(facade->enact.outputs.size(), direct->outputs.size());
  for (size_t i = 0; i < direct->outputs.size(); ++i) {
    EXPECT_TRUE(facade->enact.outputs[i].Equals(direct->outputs[i]))
        << "output " << i << " diverged";
  }
  EXPECT_EQ(facade->enact.invocations.size(), direct->invocations.size());
  EXPECT_EQ(facade->enact.missing_outputs, direct->missing_outputs);
}

TEST(RunApiTest, DurableEnactCrashResumesThroughFacade) {
  const auto& env = GetEnvironment();
  const GeneratedWorkflow& item = PickWorkflow();

  InvocationEngine baseline_engine;
  auto baseline = EnactResilient(item.workflow, *env.corpus.registry,
                                 item.seeds, baseline_engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(baseline->invocations.size(), 2u);
  const std::string crash_key = baseline->invocations[1].module_id;

  const std::string dir = FreshDir("enact_crash");
  {
    InvocationEngine engine;
    auto journal = RunJournal::Create(dir, {}, &engine.metrics());
    ASSERT_TRUE(journal.ok()) << journal.status();
    CrashPlan crash;
    crash.point = CrashPoint::kCrashAfterCommit;
    crash.key = crash_key;
    RunRequest request = MakeDurableEnactRun(
        item.workflow, *env.corpus.registry, item.seeds, engine, *journal);
    request.crash = &crash;
    auto crashed = SubmitRun(request);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kCancelled)
        << crashed.status();
  }

  InvocationEngine engine;
  auto recovery = RecoverJournal(dir, &engine.metrics());
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  auto journal = RunJournal::Resume(dir, *recovery, {}, &engine.metrics());
  ASSERT_TRUE(journal.ok()) << journal.status();
  RunRequest request = MakeDurableEnactRun(
      item.workflow, *env.corpus.registry, item.seeds, engine, *journal);
  request.resume = &*recovery;
  auto resumed = SubmitRun(request);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->complete()) << resumed->run_status;

  ASSERT_EQ(resumed->enact.outputs.size(), baseline->outputs.size());
  for (size_t i = 0; i < baseline->outputs.size(); ++i) {
    EXPECT_TRUE(resumed->enact.outputs[i].Equals(baseline->outputs[i]))
        << "output " << i << " diverged after resume";
  }
  EXPECT_EQ(resumed->enact.invocations.size(), baseline->invocations.size());
}

TEST(RunApiTest, ExportsObservabilityIntoTheRequestRegistries) {
  const auto& env = GetEnvironment();
  EngineConfig config;
  auto engine = config.BuildEngine();
  ExampleGenerator generator = config.MakeGenerator(
      env.corpus.ontology.get(), env.pool.get(), engine.get());
  auto registry = FreshRegistry();

  obs::Tracer tracer(&engine->clock());
  obs::MetricsRegistry metrics;
  RunRequest request = MakeAnnotateRun(generator, *registry);
  request.obs.tracer = &tracer;
  request.obs.metrics = &metrics;
  auto result = SubmitRun(request);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->complete()) << result->run_status;

  // The run produced spans and the facade imported snapshot + trace.
  EXPECT_FALSE(tracer.spans().empty());
  obs::MetricsRegistry empty;
  EXPECT_NE(obs::WriteMetricsJson(metrics), obs::WriteMetricsJson(empty));
}

}  // namespace
}  // namespace dexa
