// Chaos suite: the daemon and its durable runs survive the disk and the
// network. Seed-driven FaultyIoEnv profiles inject ENOSPC, EIO, short
// writes, fsync failures and rename failures under concurrent tenants; the
// wire is fed oversized, dribbled and garbage input; daemons are killed and
// restarted mid-run. The invariant throughout: every run ends in a typed
// outcome (never UB, never a wedged daemon), and every faulted durable run
// resumes to results byte-identical to a fault-free baseline.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io_env.h"
#include "common/rng.h"
#include "core/run_api.h"
#include "durability/journal.h"
#include "serve/run_manager.h"
#include "serve/serve_env.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace dexa::serve {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_chaos" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<ServeEnv> MakeEnv(const std::string& journal_dir,
                                  size_t threads) {
  ServeEnvOptions options;
  options.journal_root = journal_dir;
  options.threads = threads;
  auto env = ServeEnv::Create(options);
  EXPECT_TRUE(env.ok()) << env.status();
  if (!env.ok()) std::abort();
  return std::move(env).value();
}

/// One environment shared by the suites that never restart a daemon.
ServeEnv& SharedEnv() {
  static ServeEnv* env =
      MakeEnv(FreshDir("shared_journal"), /*threads=*/4).release();
  return *env;
}

WireMessage Response(Server& server, const std::string& line) {
  auto parsed = ParseWire(server.HandleLine(line));
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? *parsed : WireMessage{};
}

// -- The I/O seam -----------------------------------------------------------

TEST(IoEnvTest, RealEnvRoundTripsAndMaps) {
  const std::string dir = FreshDir("real_env");
  const std::string path = dir + "/file.txt";
  const std::string content = "every byte through the seam\n";
  ASSERT_TRUE(WriteFileAtomic(IoEnv::Real(), path, content).ok());

  auto read = IoEnv::Real().ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, content);

  auto map = IoEnv::Real().MapReadOnly(path);
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(std::string(static_cast<const char*>(map->data()), map->size()),
            content);

  EXPECT_TRUE(IoEnv::Real().ReadFile(dir + "/missing").status().IsNotFound());
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(FaultyIoEnvTest, FaultSequenceIsDeterministic) {
  const std::string dir = FreshDir("deterministic");
  IoFaultProfile profile;
  profile.seed = 0xFA17;
  profile.write_fault_rate = 0.3;

  // The same profile over the same operation sequence injects the same
  // faults at the same offsets — chaos runs are reproducible by seed.
  std::vector<std::vector<int>> fates;
  for (int trial = 0; trial < 2; ++trial) {
    FaultyIoEnv env(profile);
    std::vector<int> trial_fates;
    auto file = env.NewWritableFile(dir + "/t" + std::to_string(trial));
    ASSERT_TRUE(file.ok()) << file.status();
    for (int i = 0; i < 40; ++i) {
      Status s = (*file)->Append(std::string(16 + (i % 7) * 9, 'x'));
      trial_fates.push_back(static_cast<int>(s.code()));
    }
    trial_fates.push_back(static_cast<int>(env.faults_injected()));
    trial_fates.push_back(static_cast<int>(env.bytes_accepted()));
    fates.push_back(std::move(trial_fates));
  }
  EXPECT_EQ(fates[0], fates[1]);
  // The Bernoulli axis actually fired at rate 0.3 over 40 writes.
  EXPECT_GT(fates[0].back(), 0);
}

TEST(FaultyIoEnvTest, EnospcIsTypedAndLandsAPrefix) {
  const std::string dir = FreshDir("enospc");
  IoFaultProfile profile;
  profile.enospc_after_bytes = 100;
  FaultyIoEnv env(profile);

  auto file = env.NewWritableFile(dir + "/data");
  ASSERT_TRUE(file.ok()) << file.status();
  const std::string first(60, 'a');
  const std::string second(60, 'b');
  ASSERT_TRUE((*file)->Append(first).ok());
  Status full = (*file)->Append(second);
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.IsResourceExhausted()) << full;
  EXPECT_LE(env.bytes_accepted(), 100u);
  EXPECT_GE(env.faults_injected(), 1u);

  // What reached the disk is a prefix of the logical stream, capped at the
  // injected disk size — exactly what a real ENOSPC leaves behind.
  (void)(*file)->Close();
  auto on_disk = IoEnv::Real().ReadFile(dir + "/data");
  ASSERT_TRUE(on_disk.ok()) << on_disk.status();
  EXPECT_LE(on_disk->size(), 100u);
  EXPECT_EQ(*on_disk, (first + second).substr(0, on_disk->size()));
}

TEST(FaultyIoEnvTest, EioAndFsyncFaultsAreTypedCorrupted) {
  const std::string dir = FreshDir("eio");
  {
    IoFaultProfile profile;
    profile.eio_write_at = 2;
    FaultyIoEnv env(profile);
    auto file = env.NewWritableFile(dir + "/w");
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append("first").ok());
    Status second = (*file)->Append("second");
    ASSERT_FALSE(second.ok());
    EXPECT_TRUE(second.IsCorrupted()) << second;
  }
  {
    IoFaultProfile profile;
    profile.fsync_fail_at = 1;
    FaultyIoEnv env(profile);
    auto file = env.NewWritableFile(dir + "/s");
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE((*file)->Append("payload").ok());
    Status synced = (*file)->Sync();
    ASSERT_FALSE(synced.ok());
    EXPECT_TRUE(synced.IsCorrupted()) << synced;
  }
}

TEST(FaultyIoEnvTest, AtomicWriteRenameFaultLeavesNoTornTarget) {
  const std::string dir = FreshDir("rename");
  const std::string path = dir + "/target";
  IoFaultProfile profile;
  profile.rename_fail_at = 1;
  FaultyIoEnv env(profile);

  Status written = WriteFileAtomic(env, path, "contents");
  ASSERT_FALSE(written.ok());
  EXPECT_TRUE(written.IsResourceExhausted()) << written;
  // Atomicity held: no target, and the temp file was cleaned up.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // The same env renames fine afterwards (the fault was the Kth, not all).
  EXPECT_TRUE(WriteFileAtomic(env, path, "contents").ok());
  auto read = IoEnv::Real().ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "contents");
}

// -- The journal under disk faults ------------------------------------------

TEST(JournalFaultTest, EnospcLeavesValidPrefixAndResumeIsByteIdentical) {
  const std::string dir = FreshDir("journal_enospc");
  auto payload = [](int i) {
    return "record-" + std::to_string(i) + std::string(24, 'p');
  };

  IoFaultProfile profile;
  profile.enospc_after_bytes = 400;
  FaultyIoEnv faulty(profile);
  auto journal = RunJournal::Create(dir, {}, nullptr, &faulty);
  ASSERT_TRUE(journal.ok()) << journal.status();

  std::vector<std::string> accepted;
  Status failure = Status::OK();
  for (int i = 0; i < 24; ++i) {
    Status appended = journal->Append(payload(i));
    if (!appended.ok()) {
      failure = appended;
      break;
    }
    accepted.push_back(payload(i));
  }
  ASSERT_FALSE(failure.ok()) << "the injected disk never filled";
  EXPECT_TRUE(failure.IsResourceExhausted()) << failure;
  ASSERT_FALSE(accepted.empty());
  // The journal latches after a fault: damage is never buried behind
  // later valid-looking frames.
  EXPECT_TRUE(journal->Append("more").IsUnavailable());

  // The disk holds a valid prefix: exactly the acknowledged records; the
  // torn frame of the failing append is discarded by the CRC scan.
  auto recovered = RecoverJournal(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->records, accepted);

  // "Free some space" (resume with the real env) and finish the run: the
  // final record sequence is byte-identical to a never-faulted journal.
  auto resumed = RunJournal::Resume(dir, *recovered);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  std::vector<std::string> expected = accepted;
  for (int i = static_cast<int>(accepted.size()); i < 24; ++i) {
    ASSERT_TRUE(resumed->Append(payload(i)).ok());
    expected.push_back(payload(i));
  }
  ASSERT_TRUE(resumed->Seal().ok());

  auto final_state = RecoverJournal(dir);
  ASSERT_TRUE(final_state.ok());
  EXPECT_FALSE(final_state->tail_discarded()) << final_state->tail_status;
  EXPECT_EQ(final_state->records, expected);

  const std::string clean_dir = FreshDir("journal_clean");
  auto clean = RunJournal::Create(clean_dir);
  ASSERT_TRUE(clean.ok());
  for (int i = 0; i < 24; ++i) ASSERT_TRUE(clean->Append(payload(i)).ok());
  ASSERT_TRUE(clean->Seal().ok());
  auto clean_state = RecoverJournal(clean_dir);
  ASSERT_TRUE(clean_state.ok());
  EXPECT_EQ(final_state->records, clean_state->records);
}

// -- Durable runs degrade typed and resume byte-identical -------------------

TEST(ChaosTest, DiskFaultDegradesTypedAndResumeIsByteIdentical) {
  const std::string root = FreshDir("degrade");

  // Fault-free baseline in a daemon of its own.
  std::string baseline_digest;
  {
    auto env = MakeEnv(root + "/baseline", 2);
    Server server(*env, {});
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate_durable\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    Response(server, "{\"op\":\"drain\"}");
    WireMessage result = Response(
        server, "{\"op\":\"result\",\"id\":\"" + submitted["id"] + "\"}");
    ASSERT_EQ(result["ok"], "1") << result["error"];
    baseline_digest = result["digest"];
    ASSERT_FALSE(baseline_digest.empty());
  }

  // The disk "fills" 4 KiB into the journal: the run fails typed, the
  // daemon survives, and the journal directory holds a valid prefix.
  std::string faulted_dir;
  {
    auto env = MakeEnv(root + "/live", 2);
    Server server(*env, {});
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate_durable\","
                "\"io_enospc_after\":\"4096\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    faulted_dir = submitted["journal"];
    Response(server, "{\"op\":\"drain\"}");
    WireMessage status = Response(
        server, "{\"op\":\"status\",\"id\":\"" + submitted["id"] + "\"}");
    EXPECT_EQ(status["state"], "failed");
    EXPECT_NE(status["outcome"].find("ResourceExhausted"), std::string::npos)
        << status["outcome"];
    EXPECT_FALSE(fs::exists(fs::path(faulted_dir) / "DONE"));

    // The daemon itself is healthy — it shed the run, not the process —
    // and the health probe reports the degraded disk.
    WireMessage health = Response(server, "{\"op\":\"health\"}");
    EXPECT_EQ(health["ok"], "1");
    EXPECT_EQ(health["state"], "serving");
    EXPECT_EQ(health["disk"], "degraded");
    EXPECT_EQ(health["failed_io"], "1");

    // The journal on disk is a valid prefix (possibly with one torn frame
    // the CRC scan discards).
    auto recovered = RecoverJournal(faulted_dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_GT(recovered->records.size(), 0u);
  }

  // Restart after "space was freed": the startup scan resumes the run and
  // completes it to the baseline bytes.
  {
    auto env = MakeEnv(root + "/live", 2);
    EXPECT_EQ(env->UnfinishedJournalDirs(),
              std::vector<std::string>{faulted_dir});
    Server server(*env, {});
    auto resumed = server.ResumeInFlightRuns();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ(*resumed, 1u);
    EXPECT_EQ(server.manager().Drain(), 1u);

    const std::vector<uint64_t>& order = server.manager().started_order();
    ASSERT_EQ(order.size(), 1u);
    auto result = server.manager().ResultOf(order[0]);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT((*result)->annotate.replayed, 0u);
    auto run = server.manager().RunOf(order[0]);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(std::to_string(env->AnnotationsDigest(*(*run)->registry)),
              baseline_digest);
    EXPECT_TRUE(fs::exists(fs::path(faulted_dir) / "DONE"));
    EXPECT_TRUE(env->UnfinishedJournalDirs().empty());
  }
}

/// The acceptance test of the chaos harness: 12 durable runs across four
/// tenants, most with a randomized injected disk fault, all driven through
/// the daemon. Every run ends in a typed outcome; restart daemons resume
/// the casualties until none remain; every digest — faulted-and-resumed or
/// untouched — is byte-identical to the fault-free baseline.
TEST(ChaosTest, ConcurrentTenantsUnderRandomFaultsConverge) {
  const std::string root = FreshDir("fleet");
  constexpr size_t kRuns = 12;

  // Fault-free baselines for both durable kinds.
  std::string annotate_baseline, enact_baseline;
  {
    auto env = MakeEnv(root + "/baseline", 2);
    Server server(*env, {});
    for (const char* kind : {"annotate_durable", "enact_durable"}) {
      WireMessage submitted = Response(
          server, std::string("{\"op\":\"submit\",\"kind\":\"") + kind +
                      "\",\"workflow\":\"0\"}");
      ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
      Response(server, "{\"op\":\"drain\"}");
      WireMessage result = Response(
          server, "{\"op\":\"result\",\"id\":\"" + submitted["id"] + "\"}");
      ASSERT_EQ(result["ok"], "1") << result["error"];
      (std::string(kind) == "annotate_durable" ? annotate_baseline
                                               : enact_baseline) =
          result["digest"];
    }
    ASSERT_FALSE(annotate_baseline.empty());
    ASSERT_FALSE(enact_baseline.empty());
  }

  // The live daemon: randomized fault profiles, four tenants, one batch.
  Rng rng(0xC4A05);
  size_t faulted = 0;
  {
    auto env = MakeEnv(root + "/live", 4);
    ServerOptions options;
    options.manager.capacity = kRuns;
    options.manager.execute_batch = 8;
    Server server(*env, options);

    std::vector<std::string> ids;
    std::vector<bool> is_annotate;
    for (size_t i = 0; i < kRuns; ++i) {
      const bool annotate = i % 3 == 0;
      std::string request = "{\"op\":\"submit\",\"kind\":\"";
      request += annotate ? "annotate_durable" : "enact_durable";
      if (!annotate) request += "\",\"workflow\":\"0";
      request += "\",\"tenant\":\"t" + std::to_string(i % 4) + "\"";
      request += ",\"io_seed\":\"" + std::to_string(1000 + i) + "\"";
      switch (i == kRuns - 1 ? 4u : rng.NextBelow(4)) {
        case 1:  // Disk fills mid-journal.
          request += ",\"io_enospc_after\":\"" +
                     std::to_string(2048 + rng.NextIndex(8192)) + "\"";
          ++faulted;
          break;
        case 2:  // Flaky device EIO on a later write.
          request += ",\"io_eio_write\":\"" +
                     std::to_string(3 + rng.NextIndex(40)) + "\"";
          ++faulted;
          break;
        case 3:  // fsync loses writeback.
          request += ",\"io_fsync_fail\":\"" +
                     std::to_string(3 + rng.NextIndex(10)) + "\"";
          ++faulted;
          break;
        case 4:  // DONE-marker rename fails: run completes, marker missing.
          request += ",\"io_rename_fail\":\"2\"";
          break;
        default:
          break;
      }
      request += "}";
      WireMessage submitted = Response(server, request);
      ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
      ids.push_back(submitted["id"]);
      is_annotate.push_back(annotate);
    }
    ASSERT_GE(faulted, 3u) << "seed produced too few faults to be a test";
    Response(server, "{\"op\":\"drain\"}");

    // Every run ended typed: done, or failed with a disk-fault status —
    // and the done ones already match the baseline.
    for (size_t i = 0; i < kRuns; ++i) {
      WireMessage status = Response(
          server, "{\"op\":\"status\",\"id\":\"" + ids[i] + "\"}");
      ASSERT_TRUE(status["state"] == "done" || status["state"] == "failed")
          << status["state"];
      if (status["state"] == "failed") {
        EXPECT_FALSE(status["outcome"].empty());
        EXPECT_TRUE(
            status["outcome"].find("ResourceExhausted") != std::string::npos ||
            status["outcome"].find("Corrupted") != std::string::npos)
            << status["outcome"];
      } else {
        WireMessage result = Response(
            server, "{\"op\":\"result\",\"id\":\"" + ids[i] + "\"}");
        ASSERT_EQ(result["ok"], "1") << result["error"];
        EXPECT_EQ(result["digest"],
                  is_annotate[i] ? annotate_baseline : enact_baseline)
            << "run " << i;
      }
    }
    WireMessage health = Response(server, "{\"op\":\"health\"}");
    EXPECT_EQ(health["disk"], "degraded");
    EXPECT_EQ(health["tenants"], "4");
  }

  // Kill the daemon; restart over the same journal root until every
  // casualty has been resumed. Real (un-faulted) I/O now — space freed,
  // device replaced — so each pass converges.
  bool converged = false;
  for (int restart = 0; restart < 5 && !converged; ++restart) {
    auto env = MakeEnv(root + "/live", 4);
    if (env->UnfinishedJournalDirs().empty()) {
      converged = true;
      break;
    }
    Server server(*env, {});
    auto resumed = server.ResumeInFlightRuns();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ASSERT_GT(*resumed, 0u);
    server.manager().Drain();

    for (uint64_t id : server.manager().started_order()) {
      auto view = server.manager().StatusOf(id);
      ASSERT_TRUE(view.ok()) << view.status();
      ASSERT_EQ(view->state, RunState::kDone) << view->outcome;
      auto run = server.manager().RunOf(id);
      auto result = server.manager().ResultOf(id);
      ASSERT_TRUE(run.ok() && result.ok());
      if (view->kind == RunKind::kAnnotateDurable) {
        EXPECT_EQ(std::to_string(env->AnnotationsDigest(*(*run)->registry)),
                  annotate_baseline);
      } else {
        ASSERT_EQ(view->kind, RunKind::kEnactDurable);
        EXPECT_EQ(std::to_string(ServeEnv::EnactDigest((*result)->enact)),
                  enact_baseline);
      }
    }
    converged = env->UnfinishedJournalDirs().empty();
  }
  EXPECT_TRUE(converged) << "faulted runs did not converge in 5 restarts";
}

TEST(ChaosTest, KillRestartLoopsConverge) {
  const std::string root = FreshDir("kill_restart");

  std::string baseline_digest;
  {
    auto env = MakeEnv(root + "/baseline", 2);
    Server server(*env, {});
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate_durable\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    Response(server, "{\"op\":\"drain\"}");
    WireMessage result = Response(
        server, "{\"op\":\"result\",\"id\":\"" + submitted["id"] + "\"}");
    ASSERT_EQ(result["ok"], "1") << result["error"];
    baseline_digest = result["digest"];
  }

  // Three generations of daemon: each resumes its predecessors' casualties
  // AND crashes a fresh durable run of its own (a different crash point
  // each time), so unfinished work persists across the whole loop.
  const char* crash_points[] = {"before", "after", "torn"};
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto env = MakeEnv(root + "/live", 2);
    Server server(*env, {});
    auto resumed = server.ResumeInFlightRuns();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ(*resumed, static_cast<size_t>(cycle > 0 ? 1 : 0));

    const std::string crash_key = env->corpus().available_ids[17 + cycle];
    WireMessage submitted = Response(
        server, std::string("{\"op\":\"submit\",\"kind\":\"annotate_durable\","
                            "\"crash\":\"") +
                    crash_points[cycle] + "\",\"crash_key\":\"" + crash_key +
                    "\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    Response(server, "{\"op\":\"drain\"}");

    // The resumed predecessor completed to baseline; the fresh run crashed.
    for (uint64_t id : server.manager().started_order()) {
      auto view = server.manager().StatusOf(id);
      ASSERT_TRUE(view.ok());
      if (view->state != RunState::kDone) continue;
      auto run = server.manager().RunOf(id);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(std::to_string(env->AnnotationsDigest(*(*run)->registry)),
                baseline_digest);
    }
    EXPECT_EQ(env->UnfinishedJournalDirs().size(), 1u);
  }

  // The final daemon mops up: everything converges to the baseline bytes.
  auto env = MakeEnv(root + "/live", 2);
  Server server(*env, {});
  auto resumed = server.ResumeInFlightRuns();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(*resumed, 1u);
  server.manager().Drain();
  for (uint64_t id : server.manager().started_order()) {
    auto view = server.manager().StatusOf(id);
    ASSERT_TRUE(view.ok());
    ASSERT_EQ(view->state, RunState::kDone) << view->outcome;
    auto run = server.manager().RunOf(id);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(std::to_string(env->AnnotationsDigest(*(*run)->registry)),
              baseline_digest);
  }
  EXPECT_TRUE(env->UnfinishedJournalDirs().empty());
}

// -- Quotas and deadlines ---------------------------------------------------

TEST(ChaosTest, QuotaBreachIsolatesTenants) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.manager.capacity = 16;
  options.manager.per_tenant_max_queued = 2;
  Server server(env, options);

  // A bursting tenant hits its quota typed; the daemon has room to spare.
  std::vector<std::string> greedy_ids;
  for (int i = 0; i < 4; ++i) {
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\","
                "\"tenant\":\"greedy\"}");
    if (i < 2) {
      ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
      greedy_ids.push_back(submitted["id"]);
    } else {
      EXPECT_EQ(submitted["ok"], "0");
      EXPECT_EQ(submitted["code"], "Overloaded");
      EXPECT_NE(submitted["error"].find("quota"), std::string::npos);
    }
  }

  // A modest tenant is untouched by the breach.
  WireMessage modest = Response(
      server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\","
              "\"tenant\":\"modest\"}");
  ASSERT_EQ(modest["ok"], "1") << modest["error"];

  WireMessage health = Response(server, "{\"op\":\"health\"}");
  EXPECT_EQ(health["rejected_quota"], "2");

  Response(server, "{\"op\":\"drain\"}");
  for (const std::string& id : {greedy_ids[0], greedy_ids[1], modest["id"]}) {
    WireMessage status =
        Response(server, "{\"op\":\"status\",\"id\":\"" + id + "\"}");
    EXPECT_EQ(status["state"], "done");
  }

  // The quota clears with the queue: the greedy tenant admits again.
  WireMessage retry = Response(
      server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\","
              "\"tenant\":\"greedy\"}");
  EXPECT_EQ(retry["ok"], "1") << retry["error"];
}

TEST(ChaosTest, DeadlineExpiresQueuedRunTyped) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.manager.execute_batch = 1;
  Server server(env, options);

  // Run 1 has no deadline; run 2's one-virtual-nanosecond deadline cannot
  // survive the first batch (each executed run charges run_cost_ns).
  WireMessage first = Response(
      server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\","
              "\"tenant\":\"a\"}");
  ASSERT_EQ(first["ok"], "1") << first["error"];
  WireMessage second = Response(
      server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\","
              "\"tenant\":\"b\",\"deadline_ns\":\"1\"}");
  ASSERT_EQ(second["ok"], "1") << second["error"];

  WireMessage drained = Response(server, "{\"op\":\"drain\"}");
  EXPECT_EQ(drained["executed"], "1");

  WireMessage done = Response(
      server, "{\"op\":\"status\",\"id\":\"" + first["id"] + "\"}");
  EXPECT_EQ(done["state"], "done");
  WireMessage expired = Response(
      server, "{\"op\":\"status\",\"id\":\"" + second["id"] + "\"}");
  EXPECT_EQ(expired["state"], "failed");
  EXPECT_NE(expired["outcome"].find("Timeout"), std::string::npos)
      << expired["outcome"];

  WireMessage health = Response(server, "{\"op\":\"health\"}");
  EXPECT_EQ(health["deadline_expired"], "1");
}

TEST(ChaosTest, HealthProbeReportsRunTableAndBreakerState) {
  ServeEnv& env = SharedEnv();
  Server server(env, {});
  WireMessage health = Response(server, "{\"op\":\"health\"}");
  EXPECT_EQ(health["ok"], "1");
  EXPECT_EQ(health["state"], "serving");
  EXPECT_EQ(health["disk"], "ok");
  EXPECT_EQ(health["queued"], "0");
  EXPECT_EQ(health["capacity"], "64");
  EXPECT_FALSE(health["breaker_trips"].empty());
  EXPECT_FALSE(health["breaker_short_circuits"].empty());
  EXPECT_FALSE(health["virtual_now_ns"].empty());
  EXPECT_FALSE(health["journal_root"].empty());
}

// -- The wire under abuse ---------------------------------------------------

int ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Pumps the server loop until `newlines` responses arrived on `fd` (or the
/// iteration budget runs out — the caller asserts on the result).
std::string PumpUntil(Server& server, int fd, int newlines) {
  std::string received;
  for (int i = 0;
       i < 300 &&
       std::count(received.begin(), received.end(), '\n') < newlines;
       ++i) {
    server.PollOnce();
    char buffer[4096];
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) received.append(buffer, static_cast<size_t>(n));
  }
  return received;
}

/// Satellite: an oversized request line gets a typed ResourceExhausted
/// response and the connection is closed — the read buffer never grows
/// without bound.
TEST(SocketChaosTest, OversizedLineRejectedTypedAndConnectionClosed) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.unix_path = FreshDir("oversized") + "/dexa.sock";
  options.idle_timeout_ms = 1;
  options.max_line_bytes = 128;
  Server server(env, options);
  ASSERT_TRUE(server.Listen().ok());

  // Case 1: a complete line over the cap.
  {
    int client = ConnectUnix(options.unix_path);
    std::string oversized(300, 'a');
    oversized += '\n';
    ASSERT_EQ(::write(client, oversized.data(), oversized.size()),
              static_cast<ssize_t>(oversized.size()));
    std::string received = PumpUntil(server, client, 1);
    auto response = ParseWire(received.substr(0, received.find('\n')));
    ASSERT_TRUE(response.ok()) << "received: " << received;
    EXPECT_EQ((*response)["ok"], "0");
    EXPECT_EQ((*response)["code"], "ResourceExhausted");

    // The server closed its end: the client sees EOF.
    bool eof = false;
    for (int i = 0; i < 50 && !eof; ++i) {
      server.PollOnce();
      char buffer[64];
      eof = ::read(client, buffer, sizeof(buffer)) == 0;
    }
    EXPECT_TRUE(eof);
    ::close(client);
  }

  // Case 2: an unterminated line that can never become valid.
  {
    int client = ConnectUnix(options.unix_path);
    std::string pending(200, 'b');  // No newline.
    ASSERT_EQ(::write(client, pending.data(), pending.size()),
              static_cast<ssize_t>(pending.size()));
    std::string received = PumpUntil(server, client, 1);
    auto response = ParseWire(received.substr(0, received.find('\n')));
    ASSERT_TRUE(response.ok()) << "received: " << received;
    EXPECT_EQ((*response)["code"], "ResourceExhausted");
    ::close(client);
  }

  // The daemon is unharmed: a fresh connection serves normally.
  {
    int client = ConnectUnix(options.unix_path);
    const std::string probe = "{\"op\":\"metrics\"}\n";
    ASSERT_EQ(::write(client, probe.data(), probe.size()),
              static_cast<ssize_t>(probe.size()));
    std::string received = PumpUntil(server, client, 1);
    auto response = ParseWire(received.substr(0, received.find('\n')));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ((*response)["ok"], "1");
    ::close(client);
  }
}

/// Satellite: a request dribbled one byte per PollOnce() iteration parses
/// and executes identically to the same request delivered in a single read.
TEST(SocketChaosTest, SlowClientOneBytePerPollParsesIdentically) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.unix_path = FreshDir("dribble") + "/dexa.sock";
  options.idle_timeout_ms = 1;
  Server server(env, options);
  ASSERT_TRUE(server.Listen().ok());

  const std::string request =
      "{\"op\":\"submit\",\"kind\":\"annotate\",\"offset\":\"4\","
      "\"count\":\"2\"}";

  // Fast client: the whole line in one write.
  int fast = ConnectUnix(options.unix_path);
  std::string line = request + "\n";
  ASSERT_EQ(::write(fast, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  std::string fast_received = PumpUntil(server, fast, 1);
  auto fast_response =
      ParseWire(fast_received.substr(0, fast_received.find('\n')));
  ASSERT_TRUE(fast_response.ok()) << "received: " << fast_received;
  ASSERT_EQ((*fast_response)["ok"], "1") << (*fast_response)["error"];

  // Slow client: one byte per PollOnce iteration.
  int slow = ConnectUnix(options.unix_path);
  for (char byte : line) {
    ASSERT_EQ(::write(slow, &byte, 1), 1);
    server.PollOnce();
  }
  std::string slow_received = PumpUntil(server, slow, 1);
  auto slow_response =
      ParseWire(slow_received.substr(0, slow_received.find('\n')));
  ASSERT_TRUE(slow_response.ok()) << "received: " << slow_received;
  ASSERT_EQ((*slow_response)["ok"], "1") << (*slow_response)["error"];

  // Identical execution: both runs drain to the same digest.
  Response(server, "{\"op\":\"drain\"}");
  WireMessage fast_result = Response(
      server, "{\"op\":\"result\",\"id\":\"" + (*fast_response)["id"] + "\"}");
  WireMessage slow_result = Response(
      server, "{\"op\":\"result\",\"id\":\"" + (*slow_response)["id"] + "\"}");
  ASSERT_EQ(fast_result["ok"], "1") << fast_result["error"];
  ASSERT_EQ(slow_result["ok"], "1") << slow_result["error"];
  EXPECT_EQ(fast_result["digest"], slow_result["digest"]);
  EXPECT_EQ(fast_result["annotated"], slow_result["annotated"]);
  ::close(fast);
  ::close(slow);
}

TEST(SocketChaosTest, GarbageAndDribbledGarbageNeverWedgeTheDaemon) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.unix_path = FreshDir("garbage") + "/dexa.sock";
  options.idle_timeout_ms = 1;
  Server server(env, options);
  ASSERT_TRUE(server.Listen().ok());

  Rng rng(0xBAD);
  for (int round = 0; round < 10; ++round) {
    int client = ConnectUnix(options.unix_path);
    std::string garbage(1 + rng.NextIndex(200), '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.NextBelow(256));
    }
    garbage += '\n';
    if (round % 2 == 0) {
      ASSERT_EQ(::write(client, garbage.data(), garbage.size()),
                static_cast<ssize_t>(garbage.size()));
      for (int i = 0; i < 10; ++i) server.PollOnce();
    } else {
      // Dribbled garbage: one byte per poll iteration.
      for (char byte : garbage) {
        (void)!::write(client, &byte, 1);
        server.PollOnce();
      }
    }
    ::close(client);
  }
  // Bounded loops by construction prove "no hang"; the daemon still
  // answering proves "no wedge".
  int client = ConnectUnix(options.unix_path);
  const std::string probe = "{\"op\":\"health\"}\n";
  ASSERT_EQ(::write(client, probe.data(), probe.size()),
            static_cast<ssize_t>(probe.size()));
  std::string received = PumpUntil(server, client, 1);
  auto response = ParseWire(received.substr(0, received.find('\n')));
  ASSERT_TRUE(response.ok()) << "received: " << received;
  EXPECT_EQ((*response)["ok"], "1");
  EXPECT_EQ((*response)["state"], "serving");
  ::close(client);
}

}  // namespace
}  // namespace dexa::serve
