// Tests for the invocation-engine layer: pool scheduling, the determinism
// contract (any thread count yields an identical example set), and the
// concept cache's agreement with the uncached ontology.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/example_generator.h"
#include "engine/concept_cache.h"
#include "engine/invocation_engine.h"
#include "engine/metrics.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

TEST(InvocationEngineTest, ForEachRunsEveryIndexExactlyOnce) {
  InvocationEngine engine(EngineOptions{.threads = 4});
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> runs(kTasks);
  engine.ForEach(kTasks, [&](size_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "index " << i;
  }
}

TEST(InvocationEngineTest, NestedForEachDoesNotDeadlock) {
  InvocationEngine engine(EngineOptions{.threads = 4});
  std::atomic<size_t> total{0};
  engine.ForEach(8, [&](size_t) {
    engine.ForEach(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(InvocationEngineTest, RngStreamsAreStablePerTask) {
  InvocationEngine a(EngineOptions{.threads = 1, .seed = 99});
  InvocationEngine b(EngineOptions{.threads = 8, .seed = 99});
  for (uint64_t task = 0; task < 16; ++task) {
    EXPECT_EQ(a.RngFor(task).Next(), b.RngFor(task).Next());
  }
  EXPECT_NE(a.RngFor(0).Next(), a.RngFor(1).Next());
}

TEST(InvocationEngineTest, InvokeBatchPreservesInputOrder) {
  const auto& env = testing_env::GetEnvironment();
  InvocationEngine engine(EngineOptions{.threads = 8});
  ModulePtr module = *env.corpus.registry->FindByName("NormalizeAccession");

  const DataExampleSet& examples =
      env.corpus.registry->DataExamplesOf(module->spec().id);
  ASSERT_FALSE(examples.empty());
  std::vector<std::vector<Value>> inputs;
  for (const DataExample& example : examples) inputs.push_back(example.inputs);

  auto results = engine.InvokeBatch(*module, inputs, EnginePhase::kOther);
  ASSERT_EQ(results.size(), inputs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    auto direct = module->Invoke(inputs[i]);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(results[i]->size(), direct->size());
    for (size_t v = 0; v < direct->size(); ++v) {
      EXPECT_TRUE((*results[i])[v].Equals((*direct)[v]));
    }
  }
  EXPECT_GE(engine.metrics().Snapshot().invocations, inputs.size());
}

/// Full-set equality including the generator's partition bookkeeping
/// (DataExample::operator== only compares values).
bool IdenticalSets(const DataExampleSet& a, const DataExampleSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
    if (a[i].input_partitions != b[i].input_partitions) return false;
  }
  return true;
}

TEST(InvocationEngineTest, GenerationIsDeterministicAcrossThreadCounts) {
  const auto& env = testing_env::GetEnvironment();
  InvocationEngine serial(EngineOptions{.threads = 1});
  InvocationEngine pooled(EngineOptions{.threads = 8});
  ExampleGenerator serial_generator(env.corpus.ontology.get(), env.pool.get(),
                                    GeneratorOptions{}, &serial);
  ExampleGenerator pooled_generator(env.corpus.ontology.get(), env.pool.get(),
                                    GeneratorOptions{}, &pooled);

  size_t modules_checked = 0;
  size_t examples_checked = 0;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    auto serial_outcome = serial_generator.Generate(*module);
    auto pooled_outcome = pooled_generator.Generate(*module);
    ASSERT_TRUE(serial_outcome.ok()) << id << ": " << serial_outcome.status();
    ASSERT_TRUE(pooled_outcome.ok()) << id << ": " << pooled_outcome.status();
    EXPECT_TRUE(
        IdenticalSets(serial_outcome->examples, pooled_outcome->examples))
        << "module " << id << " diverged between threads=1 and threads=8";
    EXPECT_EQ(serial_outcome->stats.combinations_tried,
              pooled_outcome->stats.combinations_tried);
    EXPECT_EQ(serial_outcome->stats.combinations_skipped,
              pooled_outcome->stats.combinations_skipped);
    EXPECT_EQ(serial_outcome->stats.invocation_errors,
              pooled_outcome->stats.invocation_errors);
    ++modules_checked;
    examples_checked += serial_outcome->examples.size();
  }
  EXPECT_EQ(modules_checked, env.corpus.available_ids.size());
  EXPECT_GT(examples_checked, 0u);
}

TEST(InvocationEngineTest, GeneratorRecordsSkippedCombinations) {
  const auto& env = testing_env::GetEnvironment();
  GeneratorOptions capped;
  capped.max_combinations = 1;
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get(),
                             capped);

  // CompareSequences is multi-input, so its cartesian product exceeds a cap
  // of one; everything past the cap must be accounted as skipped, never
  // silently dropped.
  ModulePtr module = *env.corpus.registry->FindByName("CompareSequences");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->stats.combinations_tried, 1u);
  EXPECT_GT(outcome->stats.combinations_skipped, 0u);

  // With the default cap nothing in the corpus is truncated.
  ExampleGenerator uncapped(env.corpus.ontology.get(), env.pool.get());
  auto full = uncapped.Generate(*module);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stats.combinations_skipped, 0u);
  EXPECT_EQ(full->stats.combinations_tried,
            outcome->stats.combinations_tried +
                outcome->stats.combinations_skipped);
}

TEST(ConceptCacheTest, AgreesWithOntologyOnRandomSample) {
  const auto& env = testing_env::GetEnvironment();
  const Ontology& ontology = *env.corpus.ontology;
  ConceptCache cache(&ontology);
  std::vector<ConceptId> concepts = ontology.AllConcepts();
  ASSERT_FALSE(concepts.empty());

  Rng rng(2026);
  // Two passes over the same sample: the first populates the cache, the
  // second must be served from it and still agree.
  for (int pass = 0; pass < 2; ++pass) {
    Rng pass_rng = rng.Fork(7);
    for (int i = 0; i < 500; ++i) {
      ConceptId a = concepts[pass_rng.NextIndex(concepts.size())];
      ConceptId b = concepts[pass_rng.NextIndex(concepts.size())];
      EXPECT_EQ(cache.IsSubsumedBy(a, b), ontology.IsSubsumedBy(a, b));
      EXPECT_EQ(cache.Comparable(a, b), ontology.Comparable(a, b));
      EXPECT_EQ(cache.LeastCommonSubsumer(a, b),
                ontology.LeastCommonSubsumer(a, b));
      EXPECT_EQ(cache.Descendants(a), ontology.Descendants(a));
      EXPECT_EQ(cache.Partitions(a), ontology.Partitions(a));
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(ConceptCacheTest, LcsKeyIsSymmetric) {
  const auto& env = testing_env::GetEnvironment();
  const Ontology& ontology = *env.corpus.ontology;
  ConceptCache cache(&ontology);
  std::vector<ConceptId> concepts = ontology.AllConcepts();
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    ConceptId a = concepts[rng.NextIndex(concepts.size())];
    ConceptId b = concepts[rng.NextIndex(concepts.size())];
    EXPECT_EQ(cache.LeastCommonSubsumer(a, b),
              cache.LeastCommonSubsumer(b, a));
  }
}

TEST(ConceptCacheTest, ConcurrentLookupsAgree) {
  const auto& env = testing_env::GetEnvironment();
  const Ontology& ontology = *env.corpus.ontology;
  ConceptCache cache(&ontology);
  std::vector<ConceptId> concepts = ontology.AllConcepts();

  InvocationEngine engine(EngineOptions{.threads = 8});
  std::atomic<size_t> mismatches{0};
  engine.ForEach(256, [&](size_t i) {
    Rng rng = engine.RngFor(i);
    for (int k = 0; k < 50; ++k) {
      ConceptId a = concepts[rng.NextIndex(concepts.size())];
      ConceptId b = concepts[rng.NextIndex(concepts.size())];
      if (cache.IsSubsumedBy(a, b) != ontology.IsSubsumedBy(a, b) ||
          cache.Descendants(a) != ontology.Descendants(a)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(EngineMetricsTest, SnapshotAggregatesCounters) {
  EngineMetrics metrics;
  metrics.RecordInvocation(true);
  metrics.RecordInvocation(false);
  metrics.RecordBatch();
  metrics.RecordCacheHit();
  metrics.RecordCacheMiss();
  metrics.AddPhaseNanos(EnginePhase::kGenerate, 1000);

  EngineMetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.invocations, 2u);
  EXPECT_EQ(snapshot.invocation_errors, 1u);
  EXPECT_EQ(snapshot.batches, 1u);
  EXPECT_EQ(snapshot.cache_hits, 1u);
  EXPECT_EQ(snapshot.cache_misses, 1u);
  EXPECT_EQ(snapshot.TotalPhaseNanos(), 1000u);

  metrics.Reset();
  EXPECT_EQ(metrics.Snapshot().invocations, 0u);
}

}  // namespace
}  // namespace dexa
