// Unit tests of the core generator machinery (partitioner, classifier,
// generator, coverage, metrics) against the shared evaluation environment.

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "core/example_generator.h"
#include "core/instance_classifier.h"
#include "core/metrics.h"
#include "core/partitioner.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

TEST(PartitionerTest, ModulePartitionCounts) {
  const auto& env = GetEnvironment();
  DomainPartitioner partitioner(env.corpus.ontology.get());
  ModulePtr normalize = *env.corpus.registry->FindByName("NormalizeAccession");
  ModulePartitions partitions = partitioner.PartitionModule(normalize->spec());
  EXPECT_EQ(partitions.InputCount(), 10u);   // Accession.
  EXPECT_EQ(partitions.OutputCount(), 10u);  // Accession.
  EXPECT_EQ(partitions.TotalCount(), 20u);

  ModulePtr identify = *env.corpus.registry->FindByName("Identify");
  partitions = partitioner.PartitionModule(identify->spec());
  EXPECT_EQ(partitions.InputCount(), 2u);  // PeptideMassList + ErrorTolerance.
}

TEST(ClassifierTest, ClassifiesPooledValues) {
  const auto& env = GetEnvironment();
  InstanceClassifier classifier(env.corpus.ontology.get());
  const Ontology& onto = *env.corpus.ontology;
  const KnowledgeBase& kb = *env.corpus.kb;

  auto classify = [&](const Value& value, const char* declared) {
    ConceptId c = classifier.Classify(value, onto.Find(declared));
    return c == kInvalidConcept ? std::string("<none>") : onto.NameOf(c);
  };
  EXPECT_EQ(classify(Value::Str(kb.proteins()[0].accession), "Accession"),
            "UniprotAccession");
  EXPECT_EQ(classify(Value::Str(kb.genes()[0].gene_id), "Accession"),
            "KEGGGeneId");
  EXPECT_EQ(classify(Value::Str(kb.genes()[0].dna_sequence),
                     "BiologicalSequence"),
            "DNASequence");
  EXPECT_EQ(classify(Value::Str(kb.proteins()[0].sequence),
                     "BiologicalSequence"),
            "ProteinSequence");
  EXPECT_EQ(classify(Value::Str("GO:0001000 ! protein folding"),
                     "OntologyTerm"),
            "GOTerm");
  EXPECT_EQ(classify(Value::Real(5.0), "ErrorTolerance"), "ErrorTolerance");
  EXPECT_EQ(classify(Value::Str("completely unstructured"), "Accession"),
            "<none>");
}

TEST(GeneratorTest, SingleInputLeafModule) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  ModulePtr module = *env.corpus.registry->FindByName("EBI_GetUniprotRecord");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->examples.size(), 1u);  // One leaf partition.
  EXPECT_EQ(outcome->stats.input_partitions, 1u);
  EXPECT_EQ(outcome->stats.coverable_input_partitions, 1u);
  EXPECT_EQ(outcome->stats.invocation_errors, 0u);
  const DataExample& example = outcome->examples[0];
  ASSERT_EQ(example.inputs.size(), 1u);
  ASSERT_EQ(example.outputs.size(), 1u);
  EXPECT_EQ(example.input_partitions[0],
            env.corpus.ontology->Find("UniprotAccession"));
}

TEST(GeneratorTest, MultiPartitionInputYieldsOneExamplePerPartition) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  ModulePtr module = *env.corpus.registry->FindByName("NormalizeAccession");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->examples.size(), 10u);
}

TEST(GeneratorTest, DiscardsAbnormalCombinations) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  // CompareSequences: 2x2 combinations, DNA/RNA mixes terminate abnormally.
  ModulePtr module = *env.corpus.registry->FindByName("CompareSequences");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.combinations_tried, 4u);
  EXPECT_EQ(outcome->stats.invocation_errors, 2u);
  EXPECT_EQ(outcome->examples.size(), 2u);
}

TEST(GeneratorTest, OptionalInputGetsNullCandidate) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  ModulePtr module = *env.corpus.registry->FindByName("Identify");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok());
  // PeptideMassList x (ErrorTolerance, null).
  EXPECT_EQ(outcome->examples.size(), 2u);
  bool saw_null = false;
  for (const DataExample& example : outcome->examples) {
    if (example.inputs[1].is_null()) saw_null = true;
  }
  EXPECT_TRUE(saw_null);
}

TEST(GeneratorTest, PinnedStrategyReducesCombinations) {
  const auto& env = GetEnvironment();
  GeneratorOptions options;
  options.full_cartesian = false;
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get(),
                             options);
  ModulePtr module = *env.corpus.registry->FindByName("CompareSequences");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.combinations_tried, 2u);  // Second input pinned.
}

TEST(GeneratorTest, ReplayInputsRunsReferenceExamples) {
  const auto& env = GetEnvironment();
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get());
  ModulePtr reference = *env.corpus.registry->FindByName("EBI_GetUniprotRecord");
  ModulePtr twin = *env.corpus.registry->FindByName("DDBJ_GetUniprotRecord");
  auto outcome = generator.Generate(*reference);
  ASSERT_TRUE(outcome.ok());
  auto replayed = generator.ReplayInputs(*twin, outcome->examples);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), outcome->examples.size());
  EXPECT_EQ((*replayed)[0].outputs[0], outcome->examples[0].outputs[0]);
}

TEST(MetricsTest, CompletenessAndConcisenessDefinitions) {
  const auto& env = GetEnvironment();
  // GetSequenceLength: 3 partitions, one class -> 2 redundant examples.
  ModulePtr module = *env.corpus.registry->FindByName("GetSequenceLength");
  const DataExampleSet& examples =
      env.corpus.registry->DataExamplesOf(module->spec().id);
  ASSERT_EQ(examples.size(), 3u);
  auto metrics = EvaluateBehaviorMetrics(*module, examples);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->num_classes, 1);
  EXPECT_EQ(metrics->classes_covered, 1);
  EXPECT_EQ(metrics->redundant_examples, 2);
  EXPECT_DOUBLE_EQ(metrics->completeness(), 1.0);
  EXPECT_NEAR(metrics->conciseness(), 1.0 / 3.0, 1e-12);

  // ComputeMolecularWeight: 4 documented classes, 3 reachable.
  module = *env.corpus.registry->FindByName("ComputeMolecularWeight");
  metrics = EvaluateBehaviorMetrics(
      *module, env.corpus.registry->DataExamplesOf(module->spec().id));
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->num_classes, 4);
  EXPECT_EQ(metrics->classes_covered, 3);
  EXPECT_DOUBLE_EQ(metrics->completeness(), 0.75);
  EXPECT_DOUBLE_EQ(metrics->conciseness(), 1.0);
}

TEST(MetricsTest, RequiresGroundTruth) {
  class Opaque : public Module {
   public:
    Opaque() : Module(ModuleSpec{"x", "Opaque", ModuleKind::kDataAnalysis,
                                 {}, {}, 0.0}) {}

   protected:
    Result<std::vector<Value>> InvokeImpl(
        const std::vector<Value>&) const override {
      return std::vector<Value>{};
    }
  };
  Opaque module;
  EXPECT_TRUE(
      EvaluateBehaviorMetrics(module, {}).status().IsInvalidArgument());
}

TEST(CoverageTest, OutputExceptionHasUncoveredPartitions) {
  const auto& env = GetEnvironment();
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  ModulePtr module = *env.corpus.registry->FindByName("EBI_GetBiologicalSequence");
  CoverageReport report = analyzer.Analyze(
      module->spec(), env.corpus.registry->DataExamplesOf(module->spec().id));
  EXPECT_TRUE(report.inputs_fully_covered());
  EXPECT_FALSE(report.outputs_fully_covered());
  EXPECT_EQ(report.output_partitions, 3u);
  EXPECT_EQ(report.covered_output_partitions, 2u);
  ASSERT_EQ(report.uncovered_outputs.size(), 1u);
  EXPECT_EQ(env.corpus.ontology->NameOf(report.uncovered_outputs[0]),
            "RNASequence");
  EXPECT_NEAR(report.coverage(), 6.0 / 7.0, 1e-12);
}

TEST(CoverageTest, FullyCoveredModule) {
  const auto& env = GetEnvironment();
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  ModulePtr module = *env.corpus.registry->FindByName("EBI_GetUniprotRecord");
  CoverageReport report = analyzer.Analyze(
      module->spec(), env.corpus.registry->DataExamplesOf(module->spec().id));
  EXPECT_TRUE(report.inputs_fully_covered());
  EXPECT_TRUE(report.outputs_fully_covered());
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
}

TEST(GeneratorTest, RealizationAblationStillCoversLeaves) {
  const auto& env = GetEnvironment();
  GeneratorOptions options;
  options.use_realization = false;
  ExampleGenerator generator(env.corpus.ontology.get(), env.pool.get(),
                             options);
  ModulePtr module = *env.corpus.registry->FindByName("NormalizeAccession");
  auto outcome = generator.Generate(*module);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->examples.size(), 10u);
}

}  // namespace
}  // namespace dexa
