// Serve-layer suite: wire codec round-trips, multi-tenant fair scheduling,
// admission control (typed kOverloaded backpressure), concurrent runs
// byte-identical to the one-shot facade path, graceful drain, the line
// protocol (in-process and over a unix socket), and crash-resume of
// durable runs across a daemon restart.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/run_api.h"
#include "serve/run_manager.h"
#include "serve/serve_env.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace dexa::serve {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "dexa_serve" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<ServeEnv> MakeEnv(const std::string& journal_dir,
                                  size_t threads) {
  ServeEnvOptions options;
  options.journal_root = journal_dir;
  options.threads = threads;
  auto env = ServeEnv::Create(options);
  EXPECT_TRUE(env.ok()) << env.status();
  if (!env.ok()) std::abort();
  return std::move(env).value();
}

/// One environment shared by the suites that don't restart the daemon
/// (building the corpus + workflow corpus is the expensive part).
ServeEnv& SharedEnv() {
  static ServeEnv* env =
      MakeEnv(FreshDir("shared_journal"), /*threads=*/4).release();
  return *env;
}

// -- Wire codec -------------------------------------------------------------

TEST(WireTest, EncodeIsSortedAndDeterministic) {
  WireMessage message;
  message["op"] = "submit";
  message["kind"] = "annotate";
  message["count"] = "8";
  EXPECT_EQ(EncodeWire(message),
            "{\"count\":\"8\",\"kind\":\"annotate\",\"op\":\"submit\"}");
}

TEST(WireTest, RoundTripsEscapesAndScalars) {
  WireMessage message;
  message["text"] = "line\nbreak \"quoted\" back\\slash\ttab";
  message["tiny"] = std::string(1, '\x01');
  auto parsed = ParseWire(EncodeWire(message));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, message);

  // Bare integers and booleans normalize to their string spellings.
  auto bare = ParseWire("{\"n\": 42, \"flag\": true, \"s\":\"x\"}");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_EQ(bare->at("n"), "42");
  EXPECT_EQ(bare->at("flag"), "true");
  EXPECT_EQ(bare->at("s"), "x");
}

TEST(WireTest, RejectsMalformedLines) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "{\"a\":\"b\"", "{\"a\":[1]}",
        "{\"a\":{\"b\":1}}", "{\"a\":1.5}", "{\"a\":\"b\"} trailing",
        "{\"a\" \"b\"}", "{\"a\":\"\\x\"}"}) {
    auto parsed = ParseWire(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
  }
}

TEST(WireTest, WireUintParsesAndRejects) {
  WireMessage message;
  message["id"] = "17";
  message["name"] = "x";
  auto id = WireUint(message, "id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 17u);
  EXPECT_FALSE(WireUint(message, "name").ok());
  EXPECT_FALSE(WireUint(message, "missing").ok());
  EXPECT_EQ(WireGet(message, "missing", "fallback"), "fallback");
}

// -- RunManager -------------------------------------------------------------

TEST(RunManagerTest, FairSchedulingInterleavesTenants) {
  ServeEnv& env = SharedEnv();
  RunManagerOptions options;
  options.execute_batch = 8;
  RunManager manager(env.engine(), options);

  // Tenant a bursts four runs; b and c submit one each afterwards. Fair
  // scheduling still runs b's and c's first runs right after a's first.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    auto run = env.PrepareAnnotate(static_cast<size_t>(i) * 2, 2, false);
    ASSERT_TRUE(run.ok()) << run.status();
    auto id = manager.Submit("a", std::move(*run));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  for (const char* tenant : {"b", "c"}) {
    auto run = env.PrepareAnnotate(8, 2, false);
    ASSERT_TRUE(run.ok()) << run.status();
    auto id = manager.Submit(tenant, std::move(*run));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  EXPECT_EQ(manager.Drain(), 6u);

  // Fairness keys: a gets (0..3, seq), b (0, seq), c (0, seq) — so the
  // schedule is a's first, b's, c's, then the rest of a's burst.
  const std::vector<uint64_t> expected = {ids[0], ids[4], ids[5],
                                          ids[1], ids[2], ids[3]};
  EXPECT_EQ(manager.started_order(), expected);
  EXPECT_EQ(manager.counters().completed, 6u);
}

TEST(RunManagerTest, SubmitShedsLoadWithTypedOverloaded) {
  ServeEnv& env = SharedEnv();
  RunManagerOptions options;
  options.capacity = 3;
  RunManager manager(env.engine(), options);

  for (int i = 0; i < 3; ++i) {
    auto run = env.PrepareAnnotate(0, 1, false);
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(manager.Submit("t", std::move(*run)).ok());
  }
  auto rejected_run = env.PrepareAnnotate(0, 1, false);
  ASSERT_TRUE(rejected_run.ok()) << rejected_run.status();
  auto rejected = manager.Submit("t", std::move(*rejected_run));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  EXPECT_TRUE(rejected.status().IsOverloaded());
  EXPECT_EQ(manager.counters().rejected_overloaded, 1u);

  // Backpressure clears once the queue drains: same submit now admits.
  EXPECT_EQ(manager.Drain(), 3u);
  auto retry_run = env.PrepareAnnotate(0, 1, false);
  ASSERT_TRUE(retry_run.ok()) << retry_run.status();
  EXPECT_TRUE(manager.Submit("t", std::move(*retry_run)).ok());
}

TEST(RunManagerTest, CancelsQueuedRunsOnly) {
  ServeEnv& env = SharedEnv();
  RunManager manager(env.engine(), {});
  auto first = env.PrepareAnnotate(0, 1, false);
  auto second = env.PrepareAnnotate(1, 1, false);
  ASSERT_TRUE(first.ok() && second.ok());
  auto keep = manager.Submit("t", std::move(*first));
  auto cancel = manager.Submit("t", std::move(*second));
  ASSERT_TRUE(keep.ok() && cancel.ok());

  ASSERT_TRUE(manager.Cancel(*cancel).ok());
  EXPECT_EQ(manager.Drain(), 1u);

  auto cancelled_view = manager.StatusOf(*cancel);
  ASSERT_TRUE(cancelled_view.ok());
  EXPECT_EQ(cancelled_view->state, RunState::kCancelled);
  EXPECT_EQ(manager.ResultOf(*cancel).status().code(), StatusCode::kCancelled);

  auto done_view = manager.StatusOf(*keep);
  ASSERT_TRUE(done_view.ok());
  EXPECT_EQ(done_view->state, RunState::kDone);
  // A finished run cannot be cancelled.
  EXPECT_FALSE(manager.Cancel(*keep).ok());
  EXPECT_FALSE(manager.StatusOf(999).ok());
}

TEST(RunManagerTest, EvictsOldestRetainedResults) {
  ServeEnv& env = SharedEnv();
  RunManagerOptions options;
  options.retain_results = 2;
  RunManager manager(env.engine(), options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    auto run = env.PrepareAnnotate(static_cast<size_t>(i), 1, false);
    ASSERT_TRUE(run.ok());
    auto id = manager.Submit("t", std::move(*run));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ(manager.Drain(), 4u);
  // The two oldest finished runs were evicted; the two newest remain.
  EXPECT_FALSE(manager.StatusOf(ids[0]).ok());
  EXPECT_FALSE(manager.StatusOf(ids[1]).ok());
  EXPECT_TRUE(manager.StatusOf(ids[2]).ok());
  EXPECT_TRUE(manager.StatusOf(ids[3]).ok());
}

/// The headline acceptance test: >= 32 concurrent annotate runs from four
/// tenants, executed in concurrent batches over the shared engine, each
/// byte-identical to submitting the same request one-shot through the
/// facade with no manager involved.
TEST(RunManagerTest, ThirtyTwoConcurrentRunsMatchOneShotFacade) {
  ServeEnv& env = SharedEnv();
  constexpr size_t kRuns = 32;
  constexpr size_t kChunk = 8;

  RunManagerOptions options;
  options.capacity = kRuns;
  options.execute_batch = 8;
  RunManager manager(env.engine(), options);

  const char* tenants[] = {"alice", "bob", "carol", "dave"};
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kRuns; ++i) {
    auto run = env.PrepareAnnotate(i * kChunk, kChunk, false);
    ASSERT_TRUE(run.ok()) << run.status();
    auto id = manager.Submit(tenants[i % 4], std::move(*run));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  EXPECT_EQ(manager.Drain(), kRuns);
  EXPECT_EQ(manager.counters().completed, kRuns);

  for (size_t i = 0; i < kRuns; ++i) {
    auto managed = manager.RunOf(ids[i]);
    ASSERT_TRUE(managed.ok()) << managed.status();
    auto managed_result = manager.ResultOf(ids[i]);
    ASSERT_TRUE(managed_result.ok()) << managed_result.status();

    // One-shot path: same request, straight through the facade.
    auto oneshot = env.PrepareAnnotate(i * kChunk, kChunk, false);
    ASSERT_TRUE(oneshot.ok()) << oneshot.status();
    auto oneshot_result = SubmitRun(oneshot->request);
    ASSERT_TRUE(oneshot_result.ok()) << oneshot_result.status();
    ASSERT_TRUE(oneshot_result->complete()) << oneshot_result->run_status;

    EXPECT_EQ(env.AnnotationsDigest(*(*managed)->registry),
              env.AnnotationsDigest(*oneshot->registry))
        << "run " << i << " diverged from the one-shot path";
    EXPECT_EQ((*managed_result)->annotate.examples,
              oneshot_result->annotate.examples);
  }
}

/// The schedule and every per-run digest are a pure function of the submit
/// sequence: two daemons with different engine thread counts produce the
/// same started_order and the same annotations.
TEST(RunManagerTest, ScheduleAndResultsIdenticalAcrossThreadCounts) {
  std::vector<std::vector<uint64_t>> orders;
  std::vector<std::vector<uint64_t>> digests;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto env = MakeEnv(FreshDir("threads" + std::to_string(threads)), threads);
    RunManagerOptions options;
    options.execute_batch = 4;
    RunManager manager(env->engine(), options);
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < 8; ++i) {
      auto run = env->PrepareAnnotate(i * 4, 4, false);
      ASSERT_TRUE(run.ok()) << run.status();
      auto id = manager.Submit(i % 2 == 0 ? "even" : "odd", std::move(*run));
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
    }
    EXPECT_EQ(manager.Drain(), 8u);
    orders.push_back(manager.started_order());
    std::vector<uint64_t> run_digests;
    for (uint64_t id : ids) {
      auto run = manager.RunOf(id);
      ASSERT_TRUE(run.ok()) << run.status();
      run_digests.push_back(env->AnnotationsDigest(*(*run)->registry));
    }
    digests.push_back(std::move(run_digests));
  }
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(digests[0], digests[1]);
}

// -- Server protocol --------------------------------------------------------

WireMessage Response(Server& server, const std::string& line) {
  auto parsed = ParseWire(server.HandleLine(line));
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? *parsed : WireMessage{};
}

TEST(ServerTest, ProtocolSubmitStatusDrainResult) {
  ServeEnv& env = SharedEnv();
  Server server(env, {});

  WireMessage submitted = Response(
      server,
      "{\"op\":\"submit\",\"kind\":\"annotate\",\"offset\":\"0\","
      "\"count\":\"3\",\"tenant\":\"alice\"}");
  ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
  const std::string id = submitted["id"];
  EXPECT_EQ(submitted["state"], "queued");

  WireMessage queued =
      Response(server, "{\"op\":\"status\",\"id\":\"" + id + "\"}");
  EXPECT_EQ(queued["state"], "queued");
  EXPECT_EQ(queued["tenant"], "alice");
  EXPECT_EQ(queued["kind"], "annotate");
  EXPECT_EQ(queued["label"], "annotate[0,3)");

  // Result before execution: typed Unavailable, not a hang or a crash.
  WireMessage early =
      Response(server, "{\"op\":\"result\",\"id\":\"" + id + "\"}");
  EXPECT_EQ(early["ok"], "0");
  EXPECT_EQ(early["code"], "Unavailable");

  WireMessage drained = Response(server, "{\"op\":\"drain\"}");
  EXPECT_EQ(drained["executed"], "1");

  WireMessage done =
      Response(server, "{\"op\":\"status\",\"id\":\"" + id + "\"}");
  EXPECT_EQ(done["state"], "done");

  WireMessage result =
      Response(server, "{\"op\":\"result\",\"id\":\"" + id + "\"}");
  EXPECT_EQ(result["ok"], "1");
  EXPECT_EQ(result["annotated"], "3");
  EXPECT_FALSE(result["digest"].empty());

  WireMessage metrics = Response(server, "{\"op\":\"metrics\"}");
  EXPECT_EQ(metrics["submitted"], "1");
  EXPECT_EQ(metrics["completed"], "1");

  // Malformed line and unknown op come back as typed protocol errors.
  WireMessage bad = Response(server, "not json");
  EXPECT_EQ(bad["ok"], "0");
  EXPECT_EQ(bad["code"], "ParseError");
  WireMessage unknown = Response(server, "{\"op\":\"nope\"}");
  EXPECT_EQ(unknown["ok"], "0");
  EXPECT_EQ(unknown["code"], "InvalidArgument");
}

TEST(ServerTest, ProtocolEnactRun) {
  ServeEnv& env = SharedEnv();
  ASSERT_GT(env.workflow_count(), 0u);
  Server server(env, {});
  WireMessage submitted = Response(
      server, "{\"op\":\"submit\",\"kind\":\"enact\",\"workflow\":\"0\"}");
  ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
  Response(server, "{\"op\":\"drain\"}");
  WireMessage result = Response(
      server, "{\"op\":\"result\",\"id\":\"" + submitted["id"] + "\"}");
  EXPECT_EQ(result["ok"], "1") << result["error"];
  EXPECT_EQ(result["kind"], "enact");
  EXPECT_FALSE(result["digest"].empty());
}

TEST(ServerTest, ProtocolShedsLoadWithOverloadedCode) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.manager.capacity = 2;
  Server server(env, options);
  for (int i = 0; i < 2; ++i) {
    WireMessage ok = Response(
        server,
        "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\"}");
    ASSERT_EQ(ok["ok"], "1");
  }
  WireMessage shed = Response(
      server, "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"1\"}");
  EXPECT_EQ(shed["ok"], "0");
  EXPECT_EQ(shed["code"], "Overloaded");

  WireMessage metrics = Response(server, "{\"op\":\"metrics\"}");
  EXPECT_EQ(metrics["rejected_overloaded"], "1");

  // Graceful shutdown drains the admitted runs.
  WireMessage shutdown = Response(server, "{\"op\":\"shutdown\"}");
  EXPECT_EQ(shutdown["executed"], "2");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(ServerTest, ServesOverUnixSocket) {
  ServeEnv& env = SharedEnv();
  ServerOptions options;
  options.unix_path = FreshDir("socket") + "/dexa.sock";
  options.idle_timeout_ms = 1;
  Server server(env, options);
  ASSERT_TRUE(server.Listen().ok());

  int client = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "{\"op\":\"submit\",\"kind\":\"annotate\",\"count\":\"2\"}\n"
      "{\"op\":\"drain\"}\n";
  ASSERT_EQ(::write(client, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  int flags = ::fcntl(client, F_GETFL, 0);
  ::fcntl(client, F_SETFL, flags | O_NONBLOCK);

  // Single-threaded everywhere: pump the server loop until both responses
  // arrive on the client socket.
  std::string received;
  for (int i = 0; i < 100 && std::count(received.begin(), received.end(),
                                        '\n') < 2; ++i) {
    server.PollOnce();
    char buffer[4096];
    ssize_t n = ::read(client, buffer, sizeof(buffer));
    if (n > 0) received.append(buffer, static_cast<size_t>(n));
  }
  ::close(client);
  ASSERT_EQ(std::count(received.begin(), received.end(), '\n'), 2)
      << "received: " << received;
  size_t newline = received.find('\n');
  auto first = ParseWire(received.substr(0, newline));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)["ok"], "1");
  auto second = ParseWire(
      received.substr(newline + 1, received.size() - newline - 2));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ((*second)["executed"], "1");
}

// -- Crash-resume across a daemon restart -----------------------------------

TEST(ServerTest, ResumesInFlightDurableRunsAfterRestart) {
  const std::string journal_root = FreshDir("restart");

  // Baseline: an uninterrupted durable run in a daemon of its own.
  uint64_t baseline_digest = 0;
  {
    auto env = MakeEnv(journal_root + "/baseline", 2);
    Server server(*env, {});
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate_durable\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    Response(server, "{\"op\":\"drain\"}");
    WireMessage result = Response(
        server, "{\"op\":\"result\",\"id\":\"" + submitted["id"] + "\"}");
    ASSERT_EQ(result["ok"], "1") << result["error"];
    baseline_digest = std::stoull(result["digest"]);
    // The finished run's journal dir carries the DONE marker.
    EXPECT_TRUE(fs::exists(fs::path(submitted["journal"]) / "DONE"));
  }

  // First daemon: durable run crashes mid-way (injected, before-commit).
  std::string crashed_dir;
  {
    auto env = MakeEnv(journal_root + "/live", 2);
    const std::string crash_key = env->corpus().available_ids[7];
    Server server(*env, {});
    WireMessage submitted = Response(
        server, "{\"op\":\"submit\",\"kind\":\"annotate_durable\","
                "\"crash\":\"before\",\"crash_key\":\"" + crash_key + "\"}");
    ASSERT_EQ(submitted["ok"], "1") << submitted["error"];
    crashed_dir = submitted["journal"];
    Response(server, "{\"op\":\"drain\"}");
    WireMessage status = Response(
        server, "{\"op\":\"status\",\"id\":\"" + submitted["id"] + "\"}");
    EXPECT_EQ(status["state"], "failed");
    EXPECT_FALSE(fs::exists(fs::path(crashed_dir) / "DONE"));
  }

  // Second daemon over the same journal root: startup scan finds the
  // unfinished run, resumes it, and completes it to the baseline bytes.
  {
    auto env = MakeEnv(journal_root + "/live", 2);
    EXPECT_EQ(env->UnfinishedJournalDirs(),
              std::vector<std::string>{crashed_dir});
    Server server(*env, {});
    auto resumed = server.ResumeInFlightRuns();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ(*resumed, 1u);
    EXPECT_EQ(server.manager().Drain(), 1u);

    const std::vector<uint64_t>& order = server.manager().started_order();
    ASSERT_EQ(order.size(), 1u);
    auto result = server.manager().ResultOf(order[0]);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT((*result)->annotate.replayed, 0u);
    auto run = server.manager().RunOf(order[0]);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(env->AnnotationsDigest(*(*run)->registry), baseline_digest);

    // The resumed run is now finished: DONE written, nothing left to scan.
    EXPECT_TRUE(fs::exists(fs::path(crashed_dir) / "DONE"));
    EXPECT_TRUE(env->UnfinishedJournalDirs().empty());
  }
}

}  // namespace
}  // namespace dexa::serve
