// Tests of the record-linkage redundancy detector (the paper's Section 8
// future work, implemented here).

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/redundancy.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class RedundancyTest : public ::testing::Test {
 protected:
  RedundancyTest()
      : env_(GetEnvironment()), detector_(env_.corpus.ontology.get()) {}

  ModulePtr Find(const std::string& name) {
    return *env_.corpus.registry->FindByName(name);
  }
  const DataExampleSet& ExamplesOf(const ModulePtr& module) {
    return env_.corpus.registry->DataExamplesOf(module->spec().id);
  }

  const testing_env::Environment& env_;
  RedundancyDetector detector_;
};

TEST_F(RedundancyTest, DetectsNucleotideStatRedundancy) {
  // DNA and RNA examples of a uniform statistic produce the same numeric
  // shape: one predicted cluster, one redundant example (matches truth).
  ModulePtr module = Find("EBI_ComputeGcContent");
  const DataExampleSet& examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 2u);
  RedundancyReport report = detector_.Detect(module->spec(), examples);
  EXPECT_EQ(report.clusters.size(), 1u);
  EXPECT_EQ(report.predicted_redundant(examples.size()), 1u);
  EXPECT_TRUE(report.SameCluster(0, 1));
}

TEST_F(RedundancyTest, KeepsDistinctBehaviorsApart) {
  // GetBiologicalSequence: protein-path and DNA-path outputs have
  // different alphabets -> separate clusters (matches ground truth).
  ModulePtr module = Find("EBI_GetBiologicalSequence");
  const DataExampleSet& examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 4u);
  RedundancyReport report = detector_.Detect(module->spec(), examples);
  EXPECT_EQ(report.clusters.size(), 2u);
  auto quality = EvaluateRedundancyDetection(*module, examples, report);
  ASSERT_TRUE(quality.ok());
  EXPECT_DOUBLE_EQ(quality->precision(), 1.0);
  EXPECT_DOUBLE_EQ(quality->recall(), 1.0);
}

TEST_F(RedundancyTest, RelationFeaturesBeatShapeFeatures) {
  // ReverseSequence has one behavior class over three alphabets; the
  // permutation relation collapses all three into one cluster.
  ModulePtr module = Find("ReverseSequence");
  const DataExampleSet& examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 3u);
  RedundancyReport report = detector_.Detect(module->spec(), examples);
  EXPECT_EQ(report.clusters.size(), 1u);
  std::string fingerprint =
      detector_.Fingerprint(module->spec(), examples[0]);
  EXPECT_NE(fingerprint.find("rel:perm"), std::string::npos);
}

TEST_F(RedundancyTest, IdentityModulesCollapseFully) {
  ModulePtr module = Find("NormalizeAccession");
  const DataExampleSet& examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 10u);
  RedundancyReport report = detector_.Detect(module->spec(), examples);
  EXPECT_EQ(report.clusters.size(), 1u);
  EXPECT_EQ(report.predicted_redundant(10), 9u);  // Truth: 9 redundant.
}

TEST_F(RedundancyTest, NullPatternSeparatesInvocationModes) {
  // Identify's two examples differ only in the optional tolerance being
  // absent; the null-pattern feature keeps them apart (truth: 2 classes).
  ModulePtr module = Find("Identify");
  const DataExampleSet& examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 2u);
  RedundancyReport report = detector_.Detect(module->spec(), examples);
  EXPECT_EQ(report.clusters.size(), 2u);
}

TEST_F(RedundancyTest, QualityCountsPairsCorrectly) {
  // Hand-built scenario: 3 examples, truth classes {0, 0, 1}, prediction
  // clusters {{0}, {1}, {2}} -> one false-negative pair, nothing else.
  ModulePtr module = Find("EBI_ComputeGcContent");
  DataExampleSet examples = ExamplesOf(module);
  ASSERT_EQ(examples.size(), 2u);
  RedundancyReport report;
  report.clusters = {{0}, {1}};
  auto quality = EvaluateRedundancyDetection(*module, examples, report);
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->true_positive_pairs, 0u);
  EXPECT_EQ(quality->false_positive_pairs, 0u);
  EXPECT_EQ(quality->false_negative_pairs, 1u);
  EXPECT_DOUBLE_EQ(quality->precision(), 1.0);  // Vacuous but defined.
  EXPECT_DOUBLE_EQ(quality->recall(), 0.0);
}

struct CorpusQuality {
  double precision;
  double recall;
};

CorpusQuality MeasureCorpusQuality(const testing_env::Environment& env,
                                   const RedundancyOptions& options) {
  RedundancyDetector detector(env.corpus.ontology.get(), options);
  size_t tp = 0, fp = 0, fn = 0;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    const DataExampleSet& examples = env.corpus.registry->DataExamplesOf(id);
    RedundancyReport report = detector.Detect(module->spec(), examples);
    auto quality = EvaluateRedundancyDetection(*module, examples, report);
    EXPECT_TRUE(quality.ok()) << module->spec().name;
    if (!quality.ok()) continue;
    tp += quality->true_positive_pairs;
    fp += quality->false_positive_pairs;
    fn += quality->false_negative_pairs;
  }
  CorpusQuality out;
  out.precision = tp + fp == 0 ? 1.0
                               : static_cast<double>(tp) /
                                     static_cast<double>(tp + fp);
  out.recall = tp + fn == 0 ? 1.0
                            : static_cast<double>(tp) /
                                  static_cast<double>(tp + fn);
  return out;
}

TEST_F(RedundancyTest, FeatureSetsTradeRecallForPrecision) {
  // Recall-oriented feature set: relations only.
  RedundancyOptions loose;
  loose.use_magnitude = false;
  loose.qualify_contained = false;
  CorpusQuality loose_quality = MeasureCorpusQuality(env_, loose);
  EXPECT_GT(loose_quality.recall, 0.85);

  // Precision-oriented feature set (the default).
  CorpusQuality strict_quality = MeasureCorpusQuality(env_, {});
  EXPECT_GT(strict_quality.precision, 0.65);
  EXPECT_GT(strict_quality.precision, loose_quality.precision);
  EXPECT_GT(loose_quality.recall, strict_quality.recall);
}

TEST_F(RedundancyTest, SameClusterHandlesUnknownIndices) {
  RedundancyReport report;
  report.clusters = {{0, 1}};
  EXPECT_TRUE(report.SameCluster(0, 1));
  EXPECT_FALSE(report.SameCluster(0, 5));
}

}  // namespace
}  // namespace dexa
