// Cross-module integration checks: the full Figure 3 architecture exercised
// end to end on the shared environment.

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "core/matcher.h"
#include "engine/invocation_engine.h"
#include "repair/repair.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

TEST(IntegrationTest, EveryAvailableModuleIsAnnotated) {
  const auto& env = GetEnvironment();
  for (const std::string& id : env.corpus.available_ids) {
    EXPECT_TRUE(env.corpus.registry->HasDataExamples(id))
        << (*env.corpus.registry->Find(id))->spec().name;
  }
}

TEST(IntegrationTest, ExamplesReplayDeterministically) {
  // Every stored data example must reproduce exactly when the module is
  // re-invoked on its inputs — the registry stores real behavior.
  const auto& env = GetEnvironment();
  for (size_t i = 0; i < env.corpus.available_ids.size(); i += 7) {
    const std::string& id = env.corpus.available_ids[i];
    ModulePtr module = *env.corpus.registry->Find(id);
    for (const DataExample& example :
         env.corpus.registry->DataExamplesOf(id)) {
      auto outputs =
          InvocationEngine::Serial().Invoke(*module, example.inputs);
      ASSERT_TRUE(outputs.ok()) << module->spec().name;
      ASSERT_EQ(outputs->size(), example.outputs.size());
      for (size_t o = 0; o < outputs->size(); ++o) {
        EXPECT_EQ((*outputs)[o], example.outputs[o]) << module->spec().name;
      }
    }
  }
}

TEST(IntegrationTest, GenerationIsDeterministicAcrossRebuilds) {
  // Rebuild the whole pipeline from the same seed: the annotation of a
  // sample module must be identical.
  const auto& env = GetEnvironment();
  auto corpus = BuildCorpus();
  ASSERT_TRUE(corpus.ok());
  auto workflows = GenerateWorkflowCorpus(*corpus);
  ASSERT_TRUE(workflows.ok());
  auto provenance = BuildProvenanceCorpus(*corpus, *workflows);
  ASSERT_TRUE(provenance.ok());
  AnnotatedInstancePool pool =
      HarvestPool(*provenance, *corpus->registry, *corpus->ontology);
  ExampleGenerator generator(corpus->ontology.get(), &pool);

  for (const char* name : {"EBI_GetUniprotRecord", "NormalizeAccession",
                           "CompareSequences", "GetConcept"}) {
    ModulePtr fresh = *corpus->registry->FindByName(name);
    auto outcome = generator.Generate(*fresh);
    ASSERT_TRUE(outcome.ok()) << name;
    ModulePtr original = *env.corpus.registry->FindByName(name);
    const DataExampleSet& reference =
        env.corpus.registry->DataExamplesOf(original->spec().id);
    ASSERT_EQ(outcome->examples.size(), reference.size()) << name;
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(outcome->examples[i] == reference[i]) << name;
    }
  }
}

TEST(IntegrationTest, Figure1ProteinIdentificationPipeline) {
  // The paper's running example rebuilt against the library: identify a
  // protein from peptide masses, fetch its record, run a homology search.
  const auto& env = GetEnvironment();
  const KnowledgeBase& kb = *env.corpus.kb;
  const ModuleRegistry& registry = *env.corpus.registry;

  std::vector<Value> masses;
  for (double mass : kb.proteins()[5].peptide_masses) {
    masses.push_back(Value::Real(mass));
  }
  auto identify = *registry.FindByName("Identify");
  auto report = identify->Invoke({Value::ListOf(masses), Value::Real(5.0)});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE((*report)[0].AsString().find(kb.proteins()[5].accession),
            std::string::npos);

  auto get_record = *registry.FindByName("EBI_GetUniprotRecord");
  auto record =
      get_record->Invoke({Value::Str(kb.proteins()[5].accession)});
  ASSERT_TRUE(record.ok());

  auto search = *registry.FindByName("EBI_SearchSimple");
  auto alignment = search->Invoke(
      {(*record)[0], Value::Str("blastp"), Value::Str("uniprot")});
  ASSERT_TRUE(alignment.ok()) << alignment.status();
  EXPECT_NE((*alignment)[0].AsString().find("PROGRAM  blastp"),
            std::string::npos);
}

TEST(IntegrationTest, RetiredModulesKeepSpecsButRejectInvocation) {
  const auto& env = GetEnvironment();
  for (const std::string& id : env.corpus.retired_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    EXPECT_FALSE(module->available());
    EXPECT_FALSE(module->spec().name.empty());
  }
}

TEST(IntegrationTest, BrokenWorkflowsFailBeforeRepairAndRunAfter) {
  const auto& env = GetEnvironment();
  // Find an equivalent-only workflow, check it fails, repair it by hand.
  const GeneratedWorkflow* broken = nullptr;
  for (const GeneratedWorkflow& item : env.workflows.items) {
    if (item.category == WorkflowCategory::kEquivalentOnly) {
      broken = &item;
      break;
    }
  }
  ASSERT_NE(broken, nullptr);
  auto failed = Enact(broken->workflow, *env.corpus.registry, broken->seeds);
  EXPECT_TRUE(failed.status().IsDecayed());

  auto matching = MatchRetiredModules(env.corpus, env.provenance);
  ASSERT_TRUE(matching.ok());
  Workflow repaired = broken->workflow;
  for (Processor& processor : repaired.processors) {
    auto module = *env.corpus.registry->Find(processor.module_id);
    if (module->available()) continue;
    const auto& best = matching->best.at(processor.module_id);
    ASSERT_FALSE(best.candidate_id.empty());
    processor.module_id = best.candidate_id;
  }
  auto fixed = Enact(repaired, *env.corpus.registry, broken->seeds);
  EXPECT_TRUE(fixed.ok()) << fixed.status();
}

TEST(IntegrationTest, CoverageSummaryOverWholeCorpus) {
  const auto& env = GetEnvironment();
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  size_t fully_covered_outputs = 0;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    CoverageReport report = analyzer.Analyze(
        module->spec(), env.corpus.registry->DataExamplesOf(id));
    if (report.outputs_fully_covered()) ++fully_covered_outputs;
  }
  EXPECT_EQ(fully_covered_outputs, 233u);  // 252 - 19 exceptions.
}

}  // namespace
}  // namespace dexa
