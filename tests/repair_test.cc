// Reproduces the Section 6 experiment (Figure 8): matching the 72 decayed
// modules and repairing the decayed workflow corpus.

#include <gtest/gtest.h>

#include "repair/repair.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

class RepairFixture : public ::testing::Test {
 protected:
  static const MatchingReport& Matching() {
    static const MatchingReport* report = [] {
      const auto& env = GetEnvironment();
      auto matched = MatchRetiredModules(env.corpus, env.provenance);
      EXPECT_TRUE(matched.ok()) << matched.status();
      return new MatchingReport(std::move(matched).value());
    }();
    return *report;
  }

  static const RepairOutcome& Outcome() {
    static const RepairOutcome* outcome = [] {
      const auto& env = GetEnvironment();
      auto repaired = RepairWorkflows(env.corpus, env.workflows,
                                      env.provenance, Matching());
      EXPECT_TRUE(repaired.ok()) << repaired.status();
      return new RepairOutcome(std::move(repaired).value());
    }();
    return *outcome;
  }
};

TEST_F(RepairFixture, ExamplesFromProvenanceAreDeduplicated) {
  const auto& env = GetEnvironment();
  const std::string& retired = env.corpus.retired_ids[0];
  DataExampleSet examples = ExamplesFromProvenance(env.provenance, retired);
  EXPECT_FALSE(examples.empty());
  for (size_t i = 0; i < examples.size(); ++i) {
    for (size_t j = i + 1; j < examples.size(); ++j) {
      EXPECT_FALSE(examples[i] == examples[j]);
    }
  }
}

TEST_F(RepairFixture, Figure8MatchingCounts) {
  const MatchingReport& report = Matching();
  EXPECT_EQ(report.retired_total, 72u);
  EXPECT_EQ(report.with_equivalent, 16u);
  EXPECT_EQ(report.with_overlapping, 23u);
  EXPECT_EQ(report.with_none, 33u);
}

TEST_F(RepairFixture, SoapTwinsMatchEquivalently) {
  const auto& env = GetEnvironment();
  const MatchingReport& report = Matching();
  auto module = env.corpus.registry->FindByName("soap_get_genes_by_pathway");
  ASSERT_TRUE(module.ok());
  const auto& best = report.best.at((*module)->spec().id);
  EXPECT_EQ(best.relation, BehaviorRelation::kEquivalent);
  EXPECT_EQ((*env.corpus.registry->Find(best.candidate_id))->spec().name,
            "get_genes_by_pathway");
}

TEST_F(RepairFixture, Figure7ContextualSubstituteReportsOverlap) {
  const auto& env = GetEnvironment();
  const MatchingReport& report = Matching();
  auto module = env.corpus.registry->FindByName("GetGeneSequence");
  ASSERT_TRUE(module.ok());
  const auto& best = report.best.at((*module)->spec().id);
  EXPECT_EQ(best.relation, BehaviorRelation::kOverlapping);
  EXPECT_TRUE(best.mapping.contextual);
  std::string candidate_name =
      (*env.corpus.registry->Find(best.candidate_id))->spec().name;
  EXPECT_NE(candidate_name.find("GetBiologicalSequence"), std::string::npos);
}

TEST_F(RepairFixture, LegacyModulesHaveNoSubstitute) {
  const auto& env = GetEnvironment();
  const MatchingReport& report = Matching();
  auto module = env.corpus.registry->FindByName("legacy_text_sentiment");
  ASSERT_TRUE(module.ok());
  const auto& best = report.best.at((*module)->spec().id);
  EXPECT_TRUE(best.candidate_id.empty());
}


TEST_F(RepairFixture, ContextualAblationLosesTheFigure7Match) {
  // With contextual (super-concept) mappings disabled, GetGeneSequence has
  // no candidate left: Figure 7's mechanism is what finds it a substitute.
  const auto& env = GetEnvironment();
  auto strict = MatchRetiredModules(env.corpus, env.provenance,
                                    /*allow_contextual=*/false);
  ASSERT_TRUE(strict.ok()) << strict.status();
  EXPECT_EQ(strict->with_equivalent, 16u);
  EXPECT_EQ(strict->with_overlapping, 22u);  // 23 minus GetGeneSequence.
  EXPECT_EQ(strict->with_none, 34u);
  auto module = env.corpus.registry->FindByName("GetGeneSequence");
  ASSERT_TRUE(module.ok());
  EXPECT_TRUE(strict->best.at((*module)->spec().id).candidate_id.empty());
}

TEST_F(RepairFixture, Section6RepairCounts) {
  const RepairOutcome& outcome = Outcome();
  EXPECT_EQ(outcome.total_workflows, 3000u);
  EXPECT_EQ(outcome.broken_workflows, 1500u);
  EXPECT_EQ(outcome.repaired_via_equivalent, 321u);
  EXPECT_EQ(outcome.repaired_via_overlapping, 13u);
  EXPECT_EQ(outcome.repaired_total, 334u);
  EXPECT_EQ(outcome.repaired_partly, 73u);
  EXPECT_EQ(outcome.repaired_fully, 261u);
}

}  // namespace
}  // namespace dexa
