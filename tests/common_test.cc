#include <set>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"

namespace dexa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status = Status::NotFound("no such thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: no such thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::InvalidArgument("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(result.ValueOr(7), 7);
}

Result<int> Doubled(Result<int> in) {
  DEXA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::NotFound("x")).status().IsNotFound());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(5);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  EXPECT_NE(fork1.Next(), fork2.Next());
  // Forking is stable: same tag twice yields the same stream.
  Rng fork1_again = base.Fork(1);
  Rng fork1_b = Rng(5).Fork(1);
  EXPECT_EQ(fork1_again.Next(), fork1_b.Next());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  rng.Shuffle(v);
  std::set<int> elements(v.begin(), v.end());
  EXPECT_EQ(elements.size(), 8u);
}

TEST(RngTest, StableHashIsStable) {
  EXPECT_EQ(StableHash64("abc"), StableHash64("abc"));
  EXPECT_NE(StableHash64("abc"), StableHash64("abd"));
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitLinesHandlesCrLf) {
  EXPECT_EQ(SplitLines("a\nb\r\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitLines("x\n"), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinAndTrim) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(Contains("hello", "ell"));
  EXPECT_FALSE(Contains("hello", "xyz"));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpper("AcGt"), "ACGT");
  EXPECT_EQ(ToLower("AcGt"), "acgt");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "yy"), "ayybyyc");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringsTest, ZeroPad) {
  EXPECT_EQ(ZeroPad(42, 5), "00042");
  EXPECT_EQ(ZeroPad(123456, 3), "123456");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringsTest, WrapFixed) {
  EXPECT_EQ(WrapFixed("abcdef", 4),
            (std::vector<std::string>{"abcd", "ef"}));
  EXPECT_EQ(WrapFixed("", 4), (std::vector<std::string>{""}));
}

TEST(StringsTest, ParseNumbers) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("  -42 ", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("12x", &i));
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5e3", &d));
  EXPECT_DOUBLE_EQ(d, 2500.0);
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(TableTest, RendersAlignedTable) {
  TablePrinter table({"name", "count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string rendered = table.ToString("Title");
  EXPECT_NE(rendered.find("Title"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(0.4666, 2), "0.47");
  EXPECT_EQ(FormatFixed(93.651, 2), "93.65");
}

TEST(TableTest, Bar) {
  EXPECT_EQ(Bar(0, 10, 10), "");
  EXPECT_EQ(Bar(10, 10, 10).size(), 10u);
  EXPECT_GE(Bar(1, 10, 10).size(), 1u);
}

}  // namespace
}  // namespace dexa
