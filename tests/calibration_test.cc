// End-to-end calibration: running the paper's pipeline over the corpus must
// reproduce the Section 4.3 results — full input-partition coverage, 19
// output-coverage exceptions, and the completeness/conciseness histograms
// of Tables 1 and 2.

#include <map>

#include <gtest/gtest.h>

#include "common/table.h"
#include "core/coverage.h"
#include "core/metrics.h"
#include "tests/test_util.h"

namespace dexa {
namespace {

using testing_env::GetEnvironment;

TEST(CalibrationTest, Table3KindCensus) {
  const auto& env = GetEnvironment();
  std::map<ModuleKind, int> census;
  for (const std::string& id : env.corpus.available_ids) {
    census[(*env.corpus.registry->Find(id))->spec().kind]++;
  }
  EXPECT_EQ(census[ModuleKind::kFormatTransformation], 53);
  EXPECT_EQ(census[ModuleKind::kDataRetrieval], 51);
  EXPECT_EQ(census[ModuleKind::kMappingIdentifiers], 62);
  EXPECT_EQ(census[ModuleKind::kFiltering], 27);
  EXPECT_EQ(census[ModuleKind::kDataAnalysis], 59);
}

TEST(CalibrationTest, AllInputPartitionsCovered) {
  const auto& env = GetEnvironment();
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    CoverageReport report = analyzer.Analyze(
        module->spec(), env.corpus.registry->DataExamplesOf(id));
    EXPECT_TRUE(report.inputs_fully_covered())
        << module->spec().name << ": " << report.covered_input_partitions
        << "/" << report.input_partitions << " input partitions covered";
  }
}

TEST(CalibrationTest, Exactly19OutputCoverageExceptions) {
  const auto& env = GetEnvironment();
  CoverageAnalyzer analyzer(env.corpus.ontology.get());
  std::vector<std::string> exceptions;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    CoverageReport report = analyzer.Analyze(
        module->spec(), env.corpus.registry->DataExamplesOf(id));
    if (!report.outputs_fully_covered()) {
      exceptions.push_back(module->spec().name);
    }
  }
  EXPECT_EQ(exceptions.size(), 19u);
  // The paper names get_genes_by_enzyme, link and binfo among them.
  auto contains = [&](const std::string& name) {
    for (const std::string& exception : exceptions) {
      if (exception == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("get_genes_by_enzyme"));
  EXPECT_TRUE(contains("link"));
  EXPECT_TRUE(contains("binfo"));
}

TEST(CalibrationTest, Table1CompletenessHistogram) {
  const auto& env = GetEnvironment();
  std::map<std::string, int> histogram;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    auto metrics = EvaluateBehaviorMetrics(
        *module, env.corpus.registry->DataExamplesOf(id));
    ASSERT_TRUE(metrics.ok()) << module->spec().name;
    histogram[FormatFixed(metrics->completeness(), 3)]++;
  }
  EXPECT_EQ(histogram["1.000"], 234) << "fully characterized modules";
  EXPECT_EQ(histogram["0.750"], 8);
  EXPECT_EQ(histogram["0.625"], 4);
  EXPECT_EQ(histogram["0.600"], 4);
  EXPECT_EQ(histogram["0.500"], 2);
}

TEST(CalibrationTest, Table2ConcisenessHistogram) {
  const auto& env = GetEnvironment();
  std::map<std::string, int> histogram;
  for (const std::string& id : env.corpus.available_ids) {
    ModulePtr module = *env.corpus.registry->Find(id);
    auto metrics = EvaluateBehaviorMetrics(
        *module, env.corpus.registry->DataExamplesOf(id));
    ASSERT_TRUE(metrics.ok()) << module->spec().name;
    histogram[FormatFixed(metrics->conciseness(), 2)]++;
  }
  EXPECT_EQ(histogram["1.00"], 192);
  EXPECT_EQ(histogram["0.50"], 32);
  EXPECT_EQ(histogram["0.47"], 7);
  EXPECT_EQ(histogram["0.40"], 4);
  EXPECT_EQ(histogram["0.33"], 4);
  EXPECT_EQ(histogram["0.20"], 8);
  EXPECT_EQ(histogram["0.17"], 4);
  EXPECT_EQ(histogram["0.10"], 1);
}

}  // namespace
}  // namespace dexa
