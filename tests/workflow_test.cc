#include <gtest/gtest.h>

#include "corpus/synthetic_module.h"
#include "ontology/mygrid.h"
#include "workflow/enactor.h"
#include "workflow/workflow.h"

namespace dexa {
namespace {

/// Minimal test harness: Upper (doc -> doc), Exclaim (doc -> doc),
/// Concat (doc, doc -> doc), Fail (doc -> doc, always InvalidArgument).
class WorkflowFixture : public ::testing::Test {
 protected:
  WorkflowFixture() : onto_(BuildMyGridOntology()) {
    Register("up", "Upper", [](const std::vector<Value>& in) {
      std::string s = in[0].AsString();
      for (char& c : s) c = static_cast<char>(std::toupper(c));
      return Result<std::vector<Value>>(std::vector<Value>{Value::Str(s)});
    });
    Register("ex", "Exclaim", [](const std::vector<Value>& in) {
      return Result<std::vector<Value>>(
          std::vector<Value>{Value::Str(in[0].AsString() + "!")});
    });
    Register("fail", "Fail",
             [](const std::vector<Value>&) -> Result<std::vector<Value>> {
               return Status::InvalidArgument("always fails");
             });
    // Concat has two inputs.
    ModuleSpec spec;
    spec.id = "cat";
    spec.name = "Concat";
    spec.inputs = {Doc("a"), Doc("b")};
    spec.outputs = {Doc("out")};
    EXPECT_TRUE(registry_
                    .Register(std::make_shared<SyntheticModule>(
                        spec,
                        [](const std::vector<Value>& in)
                            -> Result<std::vector<Value>> {
                          return std::vector<Value>{Value::Str(
                              in[0].AsString() + in[1].AsString())};
                        }))
                    .ok());
  }

  Parameter Doc(const std::string& name) {
    Parameter param;
    param.name = name;
    param.structural_type = StructuralType::String();
    param.semantic_type = onto_.Find("TextDocument");
    return param;
  }

  void Register(const std::string& id, const std::string& name,
                SyntheticModule::Behavior behavior) {
    ModuleSpec spec;
    spec.id = id;
    spec.name = name;
    spec.inputs = {Doc("in")};
    spec.outputs = {Doc("out")};
    ASSERT_TRUE(registry_
                    .Register(std::make_shared<SyntheticModule>(
                        spec, std::move(behavior)))
                    .ok());
  }

  /// in -> Upper -> Exclaim -> out
  Workflow Chain() {
    Workflow wf;
    wf.id = "w1";
    wf.name = "chain";
    wf.inputs = {Doc("seed")};
    Processor upper;
    upper.name = "step1";
    upper.module_id = "up";
    upper.input_sources = {{PortSource::kWorkflowInputSource, 0}};
    Processor exclaim;
    exclaim.name = "step2";
    exclaim.module_id = "ex";
    exclaim.input_sources = {{0, 0}};
    wf.processors = {upper, exclaim};
    wf.outputs = {{"result", {1, 0}}};
    return wf;
  }

  Ontology onto_;
  ModuleRegistry registry_;
};

TEST_F(WorkflowFixture, ValidatesCleanWorkflow) {
  Workflow wf = Chain();
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).ok());
  EXPECT_EQ(wf.ReferencedModuleIds(),
            (std::vector<std::string>{"up", "ex"}));
}

TEST_F(WorkflowFixture, RejectsUnknownModule) {
  Workflow wf = Chain();
  wf.processors[0].module_id = "ghost";
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).IsNotFound());
}

TEST_F(WorkflowFixture, RejectsArityMismatch) {
  Workflow wf = Chain();
  wf.processors[0].input_sources.push_back(
      {PortSource::kWorkflowInputSource, 0});
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).IsInvalidArgument());
}

TEST_F(WorkflowFixture, RejectsBadPortReferences) {
  Workflow wf = Chain();
  wf.processors[1].input_sources[0].port = 5;
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).IsInvalidArgument());
  wf = Chain();
  wf.outputs[0].source.processor = 9;
  EXPECT_FALSE(ValidateWorkflow(wf, registry_, onto_).ok());
}

TEST_F(WorkflowFixture, RejectsCycles) {
  Workflow wf = Chain();
  wf.processors[0].input_sources[0] = {1, 0};  // step1 <- step2 <- step1.
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).IsInvalidArgument());
  EXPECT_FALSE(TopologicalOrder(wf).ok());
}

TEST_F(WorkflowFixture, RejectsSemanticMismatch) {
  Workflow wf = Chain();
  wf.inputs[0].semantic_type = onto_.Find("UniprotAccession");
  // TextDocument input fed with a UniprotAccession source: the source must
  // be subsumed by the destination, and these are incomparable.
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).IsInvalidArgument());
}

TEST_F(WorkflowFixture, SubsumedSourceIsAccepted) {
  Workflow wf = Chain();
  // Destination generalized to the root concept: any source fits.
  // (Simulates GetBiologicalSequence-style wiring of Figure 7.)
  wf.inputs[0].semantic_type = onto_.Find("TextDocument");
  EXPECT_TRUE(ValidateWorkflow(wf, registry_, onto_).ok());
}

TEST_F(WorkflowFixture, EnactsChain) {
  auto result = Enact(Chain(), registry_, {Value::Str("abc")});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outputs.size(), 1u);
  EXPECT_EQ(result->outputs[0].AsString(), "ABC!");
  ASSERT_EQ(result->invocations.size(), 2u);
  EXPECT_EQ(result->invocations[0].processor_name, "step1");
  EXPECT_EQ(result->invocations[0].outputs[0].AsString(), "ABC");
  EXPECT_EQ(result->invocations[1].module_id, "ex");
}

TEST_F(WorkflowFixture, EnactChecksInputArity) {
  EXPECT_TRUE(Enact(Chain(), registry_, {}).status().IsInvalidArgument());
}

TEST_F(WorkflowFixture, EnactPropagatesModuleErrors) {
  Workflow wf = Chain();
  wf.processors[1].module_id = "fail";
  auto result = Enact(wf, registry_, {Value::Str("abc")});
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("step2"), std::string::npos);
}

TEST_F(WorkflowFixture, EnactFailsOnRetiredModule) {
  (*registry_.Find("ex"))->Retire();
  auto result = Enact(Chain(), registry_, {Value::Str("abc")});
  EXPECT_TRUE(result.status().IsDecayed());
  EXPECT_FALSE(IsEnactable(Chain(), registry_));
  EXPECT_EQ(UnavailableModules(Chain(), registry_),
            (std::vector<std::string>{"ex"}));
}

TEST_F(WorkflowFixture, DiamondDataflow) {
  // seed -> Upper -> Concat(upper, exclaim(seed)) : diamond shape.
  Workflow wf;
  wf.id = "w2";
  wf.name = "diamond";
  wf.inputs = {Doc("seed")};
  Processor upper;
  upper.name = "u";
  upper.module_id = "up";
  upper.input_sources = {{PortSource::kWorkflowInputSource, 0}};
  Processor exclaim;
  exclaim.name = "e";
  exclaim.module_id = "ex";
  exclaim.input_sources = {{PortSource::kWorkflowInputSource, 0}};
  Processor concat;
  concat.name = "c";
  concat.module_id = "cat";
  concat.input_sources = {{0, 0}, {1, 0}};
  wf.processors = {upper, exclaim, concat};
  wf.outputs = {{"result", {2, 0}}};
  ASSERT_TRUE(ValidateWorkflow(wf, registry_, onto_).ok());
  auto result = Enact(wf, registry_, {Value::Str("ab")});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outputs[0].AsString(), "ABab!");
}

TEST_F(WorkflowFixture, ExtractSubWorkflow) {
  Workflow wf = Chain();
  // Extract only step2: its dangling input becomes a workflow input.
  auto sub = ExtractSubWorkflow(wf, registry_, {1});
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->processors.size(), 1u);
  ASSERT_EQ(sub->inputs.size(), 1u);
  EXPECT_EQ(sub->inputs[0].name, "step1.out");
  ASSERT_EQ(sub->outputs.size(), 1u);
  auto result = Enact(*sub, registry_, {Value::Str("X")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outputs[0].AsString(), "X!");
}

TEST_F(WorkflowFixture, ExtractSubWorkflowKeepsInternalLinks) {
  Workflow wf = Chain();
  auto sub = ExtractSubWorkflow(wf, registry_, {0, 1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->processors.size(), 2u);
  EXPECT_EQ(sub->inputs.size(), 1u);  // Only the original seed.
  auto result = Enact(*sub, registry_, {Value::Str("x")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outputs[0].AsString(), "X!");
}

}  // namespace
}  // namespace dexa
